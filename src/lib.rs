//! Umbrella crate for the TLM performance-estimation workspace.
//!
//! Re-exports the member crates so integration tests and examples can use a
//! single dependency. See the individual crates for the real APIs:
//! [`tlm_core`] (estimation engine), [`tlm_platform`] (TLM assembly),
//! [`tlm_pcam`] (cycle-accurate golden model).

pub use tlm_apps as apps;
pub use tlm_cdfg as cdfg;
pub use tlm_core as core;
pub use tlm_desim as desim;
pub use tlm_iss as iss;
pub use tlm_minic as minic;
pub use tlm_pcam as pcam;
pub use tlm_pipeline as pipeline;
pub use tlm_platform as platform;
