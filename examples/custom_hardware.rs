//! Retargetability by data: describe a brand-new custom-hardware PE as a
//! PUM (the paper's Fig. 4, a DCT datapath), estimate a kernel on it, and
//! compare against the soft-core — without writing any new estimator code.
//!
//! ```text
//! cargo run --release --example custom_hardware
//! ```

use std::collections::BTreeMap;

use tlm_apps::kernels;
use tlm_core::library;
use tlm_core::pum::{
    Datapath, ExecutionModel, FuMode, FuncUnit, MemoryModel, MemoryPath, OpBinding, OpClassKey,
    Pipeline, Pum, SchedulingPolicy, Stage, StageUsage,
};

/// Builds the paper's Fig. 4-style DCT hardware unit from scratch: a
/// non-pipelined datapath (one-stage equivalent pipeline), two MACs, one
/// ALU, dual-ported block RAM, hardwired control.
fn dct_pum() -> Pum {
    let usage = |fu: usize, mode: usize| vec![StageUsage { stage: 0, fu, mode }];
    let bind = |usage: Vec<StageUsage>| OpBinding {
        demand_stage: 0,
        commit_stage: 0,
        usage,
        transparent: false,
    };
    let mut op_map = BTreeMap::new();
    op_map.insert(OpClassKey::Alu, bind(usage(0, 0)));
    op_map.insert(OpClassKey::Shift, bind(usage(0, 0)));
    op_map.insert(OpClassKey::Mul, bind(usage(1, 0)));
    op_map.insert(OpClassKey::Div, bind(usage(1, 1)));
    op_map.insert(OpClassKey::Load, bind(usage(2, 0)));
    op_map.insert(OpClassKey::Store, bind(usage(2, 0)));
    op_map.insert(OpClassKey::Control, bind(usage(0, 0)));
    op_map.insert(
        OpClassKey::Move,
        OpBinding { demand_stage: 0, commit_stage: 0, usage: vec![], transparent: true },
    );
    Pum {
        name: "dct-hw".into(),
        clock_period_ps: 10_000,
        execution: ExecutionModel { policy: SchedulingPolicy::List, op_map },
        datapath: Datapath {
            units: vec![
                FuncUnit {
                    name: "alu".into(),
                    quantity: 1,
                    modes: vec![FuMode { name: "int".into(), delay: 1 }],
                },
                FuncUnit {
                    name: "mac".into(),
                    quantity: 2,
                    modes: vec![
                        FuMode { name: "mul".into(), delay: 2 },
                        FuMode { name: "div".into(), delay: 8 },
                    ],
                },
                FuncUnit {
                    name: "bram".into(),
                    quantity: 2,
                    modes: vec![FuMode { name: "word".into(), delay: 1 }],
                },
            ],
            pipelines: vec![Pipeline {
                name: "datapath".into(),
                stages: vec![Stage { name: "exec".into(), width: 64 }],
            }],
        },
        branch: None,
        memory: MemoryModel {
            ifetch: MemoryPath::Hardwired,
            data: MemoryPath::Hardwired,
            external_latency: 24,
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = dct_pum();
    hw.validate()?;

    // PUMs are data: the same model round-trips through JSON, which is how
    // a user would retarget the tool to their own PE.
    let json = hw.to_json();
    let reloaded = Pum::from_json(&json)?;
    assert_eq!(hw, reloaded);
    println!("PUM `{}` ({} bytes of JSON) validates and round-trips\n", hw.name, json.len());

    let cpu = library::microblaze_like(8 * 1024, 4 * 1024);
    let kernel = kernels::dct8x8();
    // `tlm_core::pum::Pipeline` (the datapath description above) shadows
    // the artifact pipeline's name, so qualify the latter in full.
    let estimator = tlm_pipeline::Pipeline::global();
    let artifact = estimator.frontend_with(&kernel, false)?;
    let module = artifact.module();

    let on_hw = estimator.annotated(&artifact, &hw)?;
    let on_cpu = estimator.annotated(&artifact, &cpu)?;
    let total = |t: &tlm_core::TimedModule| -> u64 {
        module
            .functions_iter()
            .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
            .map(|(fid, bid)| t.cycles(fid, bid))
            .sum()
    };
    let hw_cycles = total(&on_hw);
    let cpu_cycles = total(&on_cpu);
    println!("dct8x8 kernel, summed per-block estimates:");
    println!("  {:<24} {hw_cycles:>6} cycles", on_hw.pum_name());
    println!("  {:<24} {cpu_cycles:>6} cycles", on_cpu.pum_name());
    println!(
        "  estimated speedup of the custom datapath: {:.2}x",
        cpu_cycles as f64 / hw_cycles as f64
    );
    assert!(hw_cycles < cpu_cycles);
    Ok(())
}
