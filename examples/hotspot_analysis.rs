//! Profile-guided partitioning: the analysis step *before* the paper's
//! SW+1/SW+2/SW+4 designs exist. Profile the decode on the CPU model,
//! attribute estimated cycles to functions, and the offload candidates
//! fall out — FilterCore and IMDCT, exactly the kernels the paper moves to
//! custom hardware.
//!
//! ```text
//! cargo run --release --example hotspot_analysis
//! ```

use tlm_apps::mp3;
use tlm_cdfg::interp::{Exec, Machine};
use tlm_cdfg::profile::{BlockProfile, ProfileHook};
use tlm_core::library;
use tlm_core::report::{function_shares, hotspots};
use tlm_pipeline::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profile the two heavy processes, feeding them one granule of data the
    // way the frontend would.
    let pum = library::microblaze_like(8 << 10, 4 << 10);
    println!("attributing estimated cycles on `{}`\n", pum.name);

    for (label, src, in_chan, out_chan) in [
        ("imdct", mp3::imdct_source(0, 1), 0u32, 1u32),
        ("filtercore", mp3::filter_source(0, 1), 0, 1),
    ] {
        let artifact = Pipeline::global().frontend_with(&src, false)?;
        let module = artifact.module();
        let timed = Pipeline::global().annotated(&artifact, &pum)?;
        let main = module.function_id("main").expect("main exists");
        let mut machine = Machine::new(module, main, &[1]);
        let mut profile = BlockProfile::new(module);
        let mut fed = 0i64;
        loop {
            let exec = {
                let mut hook = ProfileHook::new(&mut profile);
                machine.run(&mut hook)
            };
            match exec {
                Exec::RecvPending(ch) => {
                    assert_eq!(ch.0, in_chan);
                    machine.complete_recv((fed * 31) % 1994 - 997);
                    fed += 1;
                }
                Exec::SendPending(ch, _) => {
                    assert_eq!(ch.0, out_chan);
                    machine.complete_send();
                }
                Exec::Done => break,
                other => panic!("unexpected: {other:?}"),
            }
        }

        println!("process `{label}` — function shares of the estimate:");
        for (func, share) in function_shares(&timed, &profile) {
            println!("  {func:<12} {:5.1}%", share * 100.0);
        }
        let top = &hotspots(&timed, &profile)[0];
        println!(
            "  hottest block: {}/{} — {} entries x {} cycles = {} total\n",
            top.func_name, top.block, top.entries, top.cycles_each, top.cycles_total
        );
    }
    println!("conclusion: the per-granule compute lives in the transform kernels —");
    println!("the blocks the paper's SW+1/SW+2/SW+4 designs move to custom hardware");
    Ok(())
}
