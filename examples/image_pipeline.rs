//! A second application on the same tool chain: a JPEG-style image
//! compressor (camera → DCT+quant → zigzag/RLE → store), evaluated with
//! and without a custom DCT accelerator, on both the timed TLM and the
//! cycle-accurate board model.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use tlm_apps::imagepipe::{build_image_platform, ImageParams};
use tlm_bench::{apply_characterization, characterize_cpu_with};
use tlm_desim::SimTime;
use tlm_pcam::{run_board, BoardConfig};
use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

fn cycles(end: SimTime) -> u64 {
    end.cycles(SimTime::from_ns(10))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ImageParams { seed: 0x00ab_cdef, blocks: 32 };
    println!("compressing {} blocks of 8x8 sensor data\n", params.blocks);

    // Characterize the CPU's statistical PUM parameters on a *training*
    // image (different seed), as the flow prescribes.
    let training = ImageParams { seed: 0x7e57_0001, blocks: 16 };
    let chr = characterize_cpu_with(
        |ic, dc| build_image_platform(false, training, ic, dc).expect("platform builds"),
        &[2 << 10, 4 << 10, 8 << 10, 16 << 10],
    );
    println!(
        "characterized on training image: mispredict {:.3}, fetch expansion {:.3}\n",
        chr.mispredict_rate, chr.fetch_expansion
    );

    for accelerated in [false, true] {
        let mut platform = build_image_platform(accelerated, params, 8 << 10, 4 << 10)?;
        apply_characterization(&mut platform, &chr);
        let tlm = run_tlm(&platform, TlmMode::Timed, &TlmConfig::default())?;
        let board = run_board(&platform, &BoardConfig::default())?;
        assert_eq!(tlm.outputs["store"], board.outputs["store"], "models agree");

        let est = cycles(tlm.end_time);
        let meas = cycles(board.end_time);
        let err = (est as f64 - meas as f64) / meas as f64 * 100.0;
        let outs = &tlm.outputs["store"];
        println!("{}:", if accelerated { "with DCT accelerator" } else { "software only" });
        println!("  compressed words {} (checksum {:#x})", outs[0], outs[1]);
        println!("  TLM estimate  {est:>9} cycles");
        println!("  board measure {meas:>9} cycles  (estimate off by {err:+.2}%)");
    }
    println!("\nsame source, same estimator, different platform — retargeting is data");
    Ok(())
}
