//! Quickstart: estimate a C process on a PE model and run the timed TLM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper's Fig. 2: parse C → CDFG → per-basic-block
//! delay estimation against a Processing Unit Model → annotated ("timed")
//! code → executable timed TLM.

use std::sync::Arc;

use tlm_core::{emit, library};
use tlm_pipeline::Pipeline;
use tlm_platform::desc::PlatformBuilder;
use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

const PRODUCER: &str = r#"
// A tiny DSP-ish producer: generate samples, lowpass them, ship them out.
int hist[4];
void main() {
    int state = 12345;
    for (int i = 0; i < 64; i++) {
        state = state * 1103515245 + 12345;
        int sample = ((state >> 16) & 255) - 128;
        hist[3] = hist[2]; hist[2] = hist[1]; hist[1] = hist[0];
        hist[0] = sample;
        int smooth = (hist[0] + 2 * hist[1] + 2 * hist[2] + hist[3]) >> 2;
        ch_send(0, smooth);
    }
}
"#;

const CONSUMER: &str = r#"
void main() {
    int energy = 0;
    for (int i = 0; i < 64; i++) {
        int v = ch_recv(0);
        if (v < 0) { v = -v; }
        energy += v;
    }
    out(energy);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Front end: C source → CDFG, through the shared artifact pipeline.
    //    Parse and lower run once per distinct source; repeated demands
    //    (sweeps, servers, other examples in this process) hit the store.
    let pipeline = Pipeline::global();
    let producer = pipeline.frontend_with(PRODUCER, false)?;
    let consumer = pipeline.frontend_with(CONSUMER, false)?;

    // 2. Pick a PE model and annotate every basic block with its estimated
    //    delay (Algorithms 1 and 2 of the paper).
    let pum = library::microblaze_like(8 * 1024, 4 * 1024);
    let timed = pipeline.annotated(&producer, &pum)?;
    println!(
        "annotated {} basic blocks for `{}` in {:?}\n",
        timed.total_annotated_blocks(),
        pum.name,
        timed.report().elapsed
    );

    // 3. The paper's artifact: C code with wait() calls per basic block.
    println!("--- timed C (excerpt) ---");
    for line in emit::emit_timed_c(&timed).lines().take(24) {
        println!("{line}");
    }
    println!("--- end excerpt ---\n");

    // 4. Assemble and run the timed TLM: producer on the CPU, consumer on a
    //    small custom-HW PE, channel 0 on the (implicit) system bus.
    let mut builder = PlatformBuilder::new("quickstart");
    let cpu = builder.add_pe("cpu", pum);
    let hw = builder.add_pe("hw", library::custom_hw("accumulator", 1, 1));
    builder.add_process_arc("producer", Arc::clone(producer.module()), "main", &[], cpu)?;
    builder.add_process_arc("consumer", Arc::clone(consumer.module()), "main", &[], hw)?;
    let platform = builder.build()?;

    let report = run_tlm(&platform, TlmMode::Timed, &TlmConfig::default())?;
    println!("consumer output: {:?}", report.outputs["consumer"]);
    println!("simulated end time: {}", report.end_time);
    for (pe, cycles) in &report.pe_busy {
        println!("  {pe}: {cycles} busy cycles");
    }
    Ok(())
}
