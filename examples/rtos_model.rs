//! The RTOS timing extension (the paper's future work, §6): several
//! processes sharing one processor under an executive, with context-switch
//! overhead charged whenever the PE's occupant changes.
//!
//! ```text
//! cargo run --release --example rtos_model
//! ```

use std::sync::Arc;

use tlm_core::library;
use tlm_pipeline::Pipeline;
use tlm_platform::desc::PlatformBuilder;
use tlm_platform::rtos::RtosModel;
use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

const PING: &str = r#"
void main() {
    for (int i = 0; i < 200; i++) {
        int v = i * 3 + 1;
        ch_send(0, v);
        int echoed = ch_recv(1);
        if (echoed != v + 1) { out(-1); }
    }
    out(200);
}
"#;

const PONG: &str = r#"
void main() {
    for (int i = 0; i < 200; i++) {
        int v = ch_recv(0);
        ch_send(1, v + 1);
    }
}
"#;

fn run(
    rtos: Option<RtosModel>,
) -> Result<tlm_platform::tlm::TlmReport, Box<dyn std::error::Error>> {
    let ping = Pipeline::global().frontend_with(PING, false)?;
    let pong = Pipeline::global().frontend_with(PONG, false)?;
    let mut builder = PlatformBuilder::new("rtos-demo");
    let cpu = builder.add_pe("cpu", library::microblaze_like(8 * 1024, 4 * 1024));
    if let Some(model) = rtos {
        builder.set_rtos(cpu, model)?;
    }
    builder.add_process_arc("ping", Arc::clone(ping.module()), "main", &[], cpu)?;
    builder.add_process_arc("pong", Arc::clone(pong.module()), "main", &[], cpu)?;
    let platform = builder.build()?;
    Ok(run_tlm(&platform, TlmMode::Timed, &TlmConfig::default())?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two chatty processes on one CPU: every transaction forces a context
    // switch, so the RTOS overhead is maximally visible.
    let bare = run(None)?;
    let light = run(Some(RtosModel { context_switch_cycles: 120 }))?;
    let heavy = run(Some(RtosModel { context_switch_cycles: 1200 }))?;

    assert_eq!(bare.outputs["ping"], vec![200], "protocol completed");
    assert_eq!(bare.outputs, light.outputs, "RTOS model changes time, not behaviour");

    println!("ping-pong, 200 round trips on one shared CPU:");
    for (label, report) in
        [("no RTOS model", &bare), ("120-cycle switches", &light), ("1200-cycle switches", &heavy)]
    {
        println!(
            "  {label:<20} end time {:>12}  cpu busy {:>9} cycles",
            report.end_time.to_string(),
            report.pe_cycles("cpu").expect("cpu exists"),
        );
    }
    assert!(light.end_time > bare.end_time);
    assert!(heavy.end_time > light.end_time);
    println!("\ncontext-switch overhead is visible in the estimate, as expected");
    Ok(())
}
