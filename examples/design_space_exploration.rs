//! Design-space exploration — the use case motivating the paper: because
//! timed TLMs are generated automatically and simulate fast, a designer can
//! sweep platforms × cache configurations and pick the cheapest design that
//! meets a performance constraint, in minutes instead of weeks.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use tlm_apps::designs::CACHE_SWEEP;
use tlm_apps::{build_mp3_platform, Mp3Design, Mp3Params};
use tlm_desim::SimTime;
use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Mp3Params { seed: 0x00c0_ffee, frames: 2 };
    // Performance constraint: decode the workload in under 0.25 s of
    // simulated time (arbitrary but illustrative).
    let deadline = SimTime::from_us(250_000);

    // Rough cost weights: bigger caches and more HW cost area.
    let area = |design: Mp3Design, ic: u32, dc: u32| -> u32 {
        design.hw_count() as u32 * 40 + (ic + dc) / 1024
    };

    println!("design      caches    decode-time   area  meets-deadline");
    let mut best: Option<(Mp3Design, &str, u32)> = None;
    let started = std::time::Instant::now();
    for design in Mp3Design::ALL {
        for (label, ic, dc) in CACHE_SWEEP {
            let platform = build_mp3_platform(design, params, ic, dc)?;
            let report = run_tlm(&platform, TlmMode::Timed, &TlmConfig::default())?;
            assert!(report.all_finished());
            let meets = report.end_time <= deadline;
            let cost = area(design, ic, dc);
            println!(
                "{design:<10} {label:>8}  {:>12}  {cost:>5}  {}",
                report.end_time.to_string(),
                if meets { "yes" } else { "no" },
            );
            if meets && best.is_none_or(|(_, _, c)| cost < c) {
                best = Some((design, label, cost));
            }
        }
    }
    println!(
        "\nexplored {} design points in {:?} (all via generated timed TLMs)",
        Mp3Design::ALL.len() * CACHE_SWEEP.len(),
        started.elapsed()
    );
    match best {
        Some((design, caches, cost)) => {
            println!("cheapest design meeting the deadline: {design} with {caches} (area {cost})");
        }
        None => println!("no design point meets the deadline"),
    }
    Ok(())
}
