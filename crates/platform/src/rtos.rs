//! RTOS timing parameters — the paper's stated future-work extension.
//!
//! When several application processes map to one processor they share it
//! under a cooperative executive. The base model serializes them for free;
//! attaching an [`RtosModel`] to a PE charges a context-switch overhead
//! every time the PE's occupant changes, which is the dominant first-order
//! RTOS cost for transaction-level estimation (the follow-up paper,
//! "Automatic Generation of Cycle-Approximate TLMs with Timed RTOS Model
//! Support", refines this further).

use serde::{Deserialize, Serialize};

/// RTOS timing parameters for one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtosModel {
    /// PE cycles charged whenever the running process changes.
    pub context_switch_cycles: u64,
}

impl Default for RtosModel {
    fn default() -> Self {
        // A lightweight embedded executive: save/restore registers plus
        // scheduler bookkeeping.
        RtosModel { context_switch_cycles: 120 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nonzero_and_serializable() {
        let model = RtosModel::default();
        assert!(model.context_switch_cycles > 0);
        let json = serde_json::to_string(&model).expect("serializes");
        let back: RtosModel = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(model, back);
    }
}
