//! RTOS timing parameters — the paper's stated future-work extension.
//!
//! When several application processes map to one processor they share it
//! under a cooperative executive. The base model serializes them for free;
//! attaching an [`RtosModel`] to a PE charges a context-switch overhead
//! every time the PE's occupant changes, which is the dominant first-order
//! RTOS cost for transaction-level estimation (the follow-up paper,
//! "Automatic Generation of Cycle-Approximate TLMs with Timed RTOS Model
//! Support", refines this further).

use tlm_json::{JsonError, ObjectBuilder, Value};

/// RTOS timing parameters for one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtosModel {
    /// PE cycles charged whenever the running process changes.
    pub context_switch_cycles: u64,
}

impl Default for RtosModel {
    fn default() -> Self {
        // A lightweight embedded executive: save/restore registers plus
        // scheduler bookkeeping.
        RtosModel { context_switch_cycles: 120 }
    }
}

impl RtosModel {
    /// Serializes to a JSON value.
    pub fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("context_switch_cycles", Value::Number(self.context_switch_cycles as f64))
            .build()
    }

    /// Deserializes from a JSON value.
    ///
    /// # Errors
    ///
    /// Fails on a missing or non-numeric `context_switch_cycles` field.
    pub fn from_value(value: &Value) -> Result<RtosModel, JsonError> {
        let cycles = value
            .get("context_switch_cycles")
            .and_then(Value::as_u64)
            .ok_or_else(|| JsonError::shape("RtosModel.context_switch_cycles: u64 expected"))?;
        Ok(RtosModel { context_switch_cycles: cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nonzero_and_serializable() {
        let model = RtosModel::default();
        assert!(model.context_switch_cycles > 0);
        let json = model.to_value().to_compact();
        let back =
            RtosModel::from_value(&tlm_json::parse(&json).expect("parses")).expect("deserializes");
        assert_eq!(model, back);
    }

    #[test]
    fn shape_errors_are_reported() {
        let value = tlm_json::parse("{\"context_switch_cycles\": \"many\"}").expect("parses");
        assert!(RtosModel::from_value(&value).is_err());
    }
}
