//! Platform modelling and TLM assembly.
//!
//! This crate is the "SystemC wrapper" side of the paper (§4.3): it takes a
//! platform description (PEs, buses, process-to-PE mapping, channel-to-bus
//! binding) plus application processes, and produces an executable
//! transaction-level model on the `tlm-desim` kernel:
//!
//! - a **functional TLM** executes processes and channels with no timing;
//! - a **timed TLM** additionally accumulates each process's annotated
//!   basic-block delays ([`tlm_core::TimedModule`]) and applies them to
//!   simulated time at inter-process transaction boundaries — the paper's
//!   `wait()`/`sc_wait()` mechanism, with user-controllable granularity.
//!
//! Processes mapped to the same PE serialize on a shared [`clock::PeClock`]
//! (cooperative scheduling; the optional [`rtos`] model adds
//! context-switch overhead, the paper's future-work extension). Channel
//! transfers reserve their bus for `sync + words × per_word` cycles,
//! following the abstract bus channel model the paper builds on (its
//! reference \[16\]).
//!
//! # Example
//!
//! ```
//! use tlm_platform::desc::PlatformBuilder;
//! use tlm_platform::tlm::{TlmConfig, TlmMode};
//!
//! let producer = tlm_cdfg::lower::lower(&tlm_minic::parse(
//!     "void main() { for (int i = 0; i < 4; i++) { ch_send(0, i * i); } }",
//! )?)?;
//! let consumer = tlm_cdfg::lower::lower(&tlm_minic::parse(
//!     "void main() { for (int i = 0; i < 4; i++) { out(ch_recv(0)); } }",
//! )?)?;
//!
//! let mut builder = PlatformBuilder::new("demo");
//! let cpu = builder.add_pe("cpu", tlm_core::library::microblaze_like(8192, 4096));
//! let hw = builder.add_pe("hw", tlm_core::library::custom_hw("hw", 2, 1));
//! builder.add_process("producer", &producer, "main", &[], cpu)?;
//! builder.add_process("consumer", &consumer, "main", &[], hw)?;
//! let platform = builder.build()?;
//!
//! let report = tlm_platform::tlm::run_tlm(&platform, TlmMode::Timed, &TlmConfig::default())?;
//! assert_eq!(report.outputs["consumer"], vec![0, 1, 4, 9]);
//! assert!(report.end_time > tlm_desim::SimTime::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod desc;
pub mod json;
pub mod rtos;
pub mod tlm;

pub use desc::{Platform, PlatformBuilder};
pub use tlm::{run_tlm, TlmConfig, TlmMode, TlmReport};
