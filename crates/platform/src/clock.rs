//! Shared clocks: PE occupancy and bus arbitration at transaction grain.

use std::cell::RefCell;
use std::rc::Rc;

use tlm_desim::SimTime;

use crate::rtos::RtosModel;

/// Tracks when a processing element is next free, serializing the processes
/// mapped to it. All times are simulated time.
#[derive(Debug)]
pub struct PeClock {
    /// Clock period of the PE.
    pub period: SimTime,
    free_at: SimTime,
    busy: SimTime,
    /// Optional RTOS overhead model.
    rtos: Option<RtosModel>,
    /// Index of the process that last occupied the PE.
    last_occupant: Option<usize>,
    /// Context switches that occurred.
    switches: u64,
}

/// A shared handle to a [`PeClock`].
pub type SharedPe = Rc<RefCell<PeClock>>;

impl PeClock {
    /// Creates a clock for a PE with the given period.
    pub fn new(period: SimTime, rtos: Option<RtosModel>) -> SharedPe {
        Rc::new(RefCell::new(PeClock {
            period,
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            rtos,
            last_occupant: None,
            switches: 0,
        }))
    }

    /// Reserves the PE for `cycles` of computation by process `proc`,
    /// starting no earlier than `now`. Returns the completion time.
    pub fn reserve(&mut self, now: SimTime, proc: usize, cycles: u64) -> SimTime {
        let mut start = if self.free_at > now { self.free_at } else { now };
        if let (Some(rtos), Some(last)) = (&self.rtos, self.last_occupant) {
            if last != proc {
                let overhead = SimTime::from_cycles(rtos.context_switch_cycles, self.period);
                start += overhead;
                self.busy += overhead;
                self.switches += 1;
            }
        }
        let span = SimTime::from_cycles(cycles, self.period);
        let end = start + span;
        self.free_at = end;
        self.busy += span;
        self.last_occupant = Some(proc);
        end
    }

    /// Total busy time accumulated on this PE.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Busy time expressed in PE cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy.cycles(self.period)
    }

    /// Context switches charged by the RTOS model.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }
}

/// Tracks bus occupancy: a transfer reserves the bus for
/// `sync_overhead + words × cycles_per_word` bus cycles.
#[derive(Debug)]
pub struct BusClock {
    /// Bus clock period.
    pub period: SimTime,
    /// Arbitration/synchronisation overhead per transaction, in bus cycles.
    pub sync_overhead: u64,
    /// Transfer cost per 32-bit word, in bus cycles.
    pub cycles_per_word: u64,
    free_at: SimTime,
    busy: SimTime,
    transfers: u64,
}

/// A shared handle to a [`BusClock`].
pub type SharedBus = Rc<RefCell<BusClock>>;

impl BusClock {
    /// Creates a bus clock.
    pub fn new(period: SimTime, sync_overhead: u64, cycles_per_word: u64) -> SharedBus {
        Rc::new(RefCell::new(BusClock {
            period,
            sync_overhead,
            cycles_per_word,
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            transfers: 0,
        }))
    }

    /// Reserves the bus for a transfer of `words` starting no earlier than
    /// `now`; returns the completion time.
    pub fn reserve(&mut self, now: SimTime, words: u64) -> SimTime {
        let start = if self.free_at > now { self.free_at } else { now };
        let cycles = self.sync_overhead + words * self.cycles_per_word;
        let end = start + SimTime::from_cycles(cycles, self.period);
        self.free_at = end;
        self.busy += SimTime::from_cycles(cycles, self.period);
        self.transfers += 1;
        end
    }

    /// Total bus-busy time.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Number of transfers arbitrated.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_reservations_serialize() {
        let pe = PeClock::new(SimTime::from_ns(10), None);
        let end1 = pe.borrow_mut().reserve(SimTime::ZERO, 0, 10);
        assert_eq!(end1, SimTime::from_ns(100));
        // Second process asks at time 0 but must queue behind the first.
        let end2 = pe.borrow_mut().reserve(SimTime::ZERO, 1, 5);
        assert_eq!(end2, SimTime::from_ns(150));
        assert_eq!(pe.borrow().busy_cycles(), 15);
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let pe = PeClock::new(SimTime::from_ns(10), None);
        pe.borrow_mut().reserve(SimTime::ZERO, 0, 1);
        pe.borrow_mut().reserve(SimTime::from_us(1), 0, 1);
        assert_eq!(pe.borrow().busy_cycles(), 2);
    }

    #[test]
    fn rtos_context_switch_overhead() {
        let rtos = RtosModel { context_switch_cycles: 50 };
        let pe = PeClock::new(SimTime::from_ns(10), Some(rtos));
        pe.borrow_mut().reserve(SimTime::ZERO, 0, 10);
        // Same process again: no switch.
        pe.borrow_mut().reserve(SimTime::ZERO, 0, 10);
        assert_eq!(pe.borrow().context_switches(), 0);
        // Different process: one switch of 50 cycles.
        let end = pe.borrow_mut().reserve(SimTime::ZERO, 1, 10);
        assert_eq!(pe.borrow().context_switches(), 1);
        assert_eq!(end, SimTime::from_cycles(10 + 10 + 50 + 10, SimTime::from_ns(10)));
    }

    #[test]
    fn bus_transfer_cost_and_contention() {
        let bus = BusClock::new(SimTime::from_ns(10), 4, 2);
        let end1 = bus.borrow_mut().reserve(SimTime::ZERO, 8);
        assert_eq!(end1, SimTime::from_cycles(4 + 16, SimTime::from_ns(10)));
        let end2 = bus.borrow_mut().reserve(SimTime::ZERO, 1);
        assert_eq!(
            end2,
            end1 + SimTime::from_cycles(6, SimTime::from_ns(10)),
            "second transfer queues"
        );
        assert_eq!(bus.borrow().transfers(), 2);
    }
}
