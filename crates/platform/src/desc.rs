//! Platform description: PEs, buses, processes and channel bindings.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use tlm_cdfg::ir::Module;
use tlm_cdfg::{ChanId, FuncId};
use tlm_core::Pum;
use tlm_desim::SimTime;

use crate::rtos::RtosModel;

/// Identifies a PE within a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub usize);

/// Identifies a bus within a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BusId(pub usize);

/// One processing element.
#[derive(Debug, Clone)]
pub struct Pe {
    /// PE name.
    pub name: String,
    /// The processing unit model (used by the timed TLM and by PCAM to
    /// decide whether the PE is a processor or custom hardware).
    pub pum: Pum,
    /// Optional RTOS overhead model for shared PEs.
    pub rtos: Option<RtosModel>,
}

/// One system bus.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Bus name.
    pub name: String,
    /// Bus clock period.
    pub period: SimTime,
    /// Arbitration/synchronisation cycles per transaction.
    pub sync_overhead: u64,
    /// Bus cycles per transferred 32-bit word.
    pub cycles_per_word: u64,
}

/// One application process: a module, its entry function and its mapping.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Process name (unique).
    pub name: String,
    /// The process's CDFG.
    pub module: Arc<Module>,
    /// Entry function.
    pub entry: FuncId,
    /// Arguments passed to the entry function.
    pub args: Vec<i64>,
    /// The PE the process is mapped to.
    pub pe: PeId,
}

/// How a logical channel is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelBinding {
    /// Bus carrying the channel; `None` for PE-local channels (both
    /// endpoints on the same PE), which cost [`Platform::LOCAL_SYNC_CYCLES`]
    /// on the PE instead of a bus transfer.
    pub bus: Option<BusId>,
    /// FIFO capacity in words.
    pub capacity: usize,
}

/// A complete platform: the input to TLM generation and to the PCAM board
/// model.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Platform name.
    pub name: String,
    /// Processing elements.
    pub pes: Vec<Pe>,
    /// Buses.
    pub buses: Vec<Bus>,
    /// Application processes.
    pub processes: Vec<ProcessSpec>,
    /// Channel bindings (every channel used by any process appears here).
    pub channels: BTreeMap<ChanId, ChannelBinding>,
}

impl Platform {
    /// PE cycles charged for a same-PE (memory-copy) transaction.
    pub const LOCAL_SYNC_CYCLES: u64 = 4;

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Looks a process up by name.
    pub fn process(&self, name: &str) -> Option<&ProcessSpec> {
        self.processes.iter().find(|p| p.name == name)
    }
}

/// Errors from platform construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformError {
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid platform: {}", self.message)
    }
}

impl Error for PlatformError {}

/// Builder for [`Platform`].
///
/// Channels used by processes but never explicitly bound are auto-bound at
/// [`PlatformBuilder::build`]: same-PE channels become local, cross-PE
/// channels ride the first bus (which is created implicitly if absent).
#[derive(Debug)]
pub struct PlatformBuilder {
    name: String,
    pes: Vec<Pe>,
    buses: Vec<Bus>,
    processes: Vec<ProcessSpec>,
    explicit: BTreeMap<ChanId, ChannelBinding>,
}

impl PlatformBuilder {
    /// Starts a platform description.
    pub fn new(name: impl Into<String>) -> Self {
        PlatformBuilder {
            name: name.into(),
            pes: Vec::new(),
            buses: Vec::new(),
            processes: Vec::new(),
            explicit: BTreeMap::new(),
        }
    }

    /// Adds a PE described by a PUM.
    pub fn add_pe(&mut self, name: impl Into<String>, pum: Pum) -> PeId {
        self.pes.push(Pe { name: name.into(), pum, rtos: None });
        PeId(self.pes.len() - 1)
    }

    /// Attaches an RTOS model to a PE.
    ///
    /// # Errors
    ///
    /// Fails if `pe` was not created by this builder. PE ids can come from
    /// untrusted platform descriptions (the serving request path), so this
    /// is a structured error, not a panic.
    pub fn set_rtos(&mut self, pe: PeId, rtos: RtosModel) -> Result<(), PlatformError> {
        let Some(entry) = self.pes.get_mut(pe.0) else {
            return Err(PlatformError { message: format!("RTOS model for unknown PE {}", pe.0) });
        };
        entry.rtos = Some(rtos);
        Ok(())
    }

    /// Adds a bus.
    pub fn add_bus(
        &mut self,
        name: impl Into<String>,
        period: SimTime,
        sync_overhead: u64,
        cycles_per_word: u64,
    ) -> BusId {
        self.buses.push(Bus { name: name.into(), period, sync_overhead, cycles_per_word });
        BusId(self.buses.len() - 1)
    }

    /// Adds an application process mapped to `pe`.
    ///
    /// # Errors
    ///
    /// Fails if the entry function does not exist, the argument count
    /// mismatches, the name is duplicated, or the PE id is unknown.
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        module: &Module,
        entry: &str,
        args: &[i64],
        pe: PeId,
    ) -> Result<(), PlatformError> {
        self.add_process_arc(name, Arc::new(module.clone()), entry, args, pe)
    }

    /// [`PlatformBuilder::add_process`] taking the module by `Arc`, so a
    /// shared (e.g. pipeline-cached) module is referenced rather than
    /// deep-cloned — the artifact store and the platform then hold the
    /// same allocation.
    ///
    /// # Errors
    ///
    /// Same as [`PlatformBuilder::add_process`].
    pub fn add_process_arc(
        &mut self,
        name: impl Into<String>,
        module: Arc<Module>,
        entry: &str,
        args: &[i64],
        pe: PeId,
    ) -> Result<(), PlatformError> {
        let name = name.into();
        if self.processes.iter().any(|p| p.name == name) {
            return Err(PlatformError { message: format!("duplicate process `{name}`") });
        }
        if pe.0 >= self.pes.len() {
            return Err(PlatformError { message: format!("unknown PE for `{name}`") });
        }
        let Some(entry_id) = module.function_id(entry) else {
            return Err(PlatformError {
                message: format!("process `{name}` entry `{entry}` not found"),
            });
        };
        let params = module.function(entry_id).params.len();
        if params != args.len() {
            return Err(PlatformError {
                message: format!("process `{name}` entry takes {params} args, got {}", args.len()),
            });
        }
        self.processes.push(ProcessSpec { name, module, entry: entry_id, args: args.to_vec(), pe });
        Ok(())
    }

    /// Explicitly binds a channel to a bus with a FIFO capacity.
    pub fn bind_channel(&mut self, chan: ChanId, bus: Option<BusId>, capacity: usize) {
        self.explicit.insert(chan, ChannelBinding { bus, capacity });
    }

    /// Finalizes the platform, auto-binding unbound channels.
    ///
    /// # Errors
    ///
    /// Fails if there are no processes, if an explicit binding references an
    /// unknown bus, or if a channel has only one side (no sender or no
    /// receiver anywhere).
    pub fn build(mut self) -> Result<Platform, PlatformError> {
        if self.processes.is_empty() {
            return Err(PlatformError { message: "platform has no processes".into() });
        }
        for (chan, binding) in &self.explicit {
            if let Some(bus) = binding.bus {
                if bus.0 >= self.buses.len() {
                    return Err(PlatformError {
                        message: format!("channel {chan} bound to unknown bus"),
                    });
                }
            }
        }

        // Which PEs touch each channel, and in which direction.
        let mut senders: BTreeMap<ChanId, Vec<PeId>> = BTreeMap::new();
        let mut receivers: BTreeMap<ChanId, Vec<PeId>> = BTreeMap::new();
        for proc in &self.processes {
            for func in &proc.module.functions {
                for block in &func.blocks {
                    for op in &block.ops {
                        match op.kind {
                            tlm_cdfg::ir::OpKind::ChanSend { chan } => {
                                senders.entry(chan).or_default().push(proc.pe);
                            }
                            tlm_cdfg::ir::OpKind::ChanRecv { chan } => {
                                receivers.entry(chan).or_default().push(proc.pe);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        let used: Vec<ChanId> = senders
            .keys()
            .chain(receivers.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();

        let mut channels = BTreeMap::new();
        for chan in used {
            let (Some(s), Some(r)) = (senders.get(&chan), receivers.get(&chan)) else {
                return Err(PlatformError {
                    message: format!("channel {chan} has a sender or receiver missing"),
                });
            };
            if let Some(binding) = self.explicit.get(&chan) {
                channels.insert(chan, *binding);
                continue;
            }
            let local = s.iter().chain(r.iter()).all(|pe| *pe == s[0]);
            let bus = if local {
                None
            } else {
                if self.buses.is_empty() {
                    // Implicit default bus: 100 MHz, 4-cycle arbitration,
                    // 2 cycles per word.
                    self.buses.push(Bus {
                        name: "bus0".into(),
                        period: SimTime::from_ns(10),
                        sync_overhead: 4,
                        cycles_per_word: 2,
                    });
                }
                Some(BusId(0))
            };
            channels.insert(chan, ChannelBinding { bus, capacity: 64 });
        }

        Ok(Platform {
            name: self.name,
            pes: self.pes,
            buses: self.buses,
            processes: self.processes,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_core::library;

    fn module(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    #[test]
    fn auto_binding_distinguishes_local_and_bus_channels() {
        let producer = module("void main() { ch_send(0, 1); ch_send(1, 2); }");
        let consumer_same_pe = module("void main() { out(ch_recv(0)); }");
        let consumer_other_pe = module("void main() { out(ch_recv(1)); }");
        let mut b = PlatformBuilder::new("p");
        let cpu = b.add_pe("cpu", library::microblaze_like(8192, 4096));
        let hw = b.add_pe("hw", library::custom_hw("hw", 1, 1));
        b.add_process("prod", &producer, "main", &[], cpu).expect("ok");
        b.add_process("cons0", &consumer_same_pe, "main", &[], cpu).expect("ok");
        b.add_process("cons1", &consumer_other_pe, "main", &[], hw).expect("ok");
        let p = b.build().expect("builds");
        assert_eq!(p.channels[&ChanId(0)].bus, None, "same-PE channel is local");
        assert_eq!(p.channels[&ChanId(1)].bus, Some(BusId(0)), "cross-PE channel on bus");
        assert_eq!(p.buses.len(), 1, "default bus created implicitly");
    }

    #[test]
    fn dangling_channel_is_rejected() {
        let orphan = module("void main() { ch_send(7, 1); }");
        let mut b = PlatformBuilder::new("p");
        let cpu = b.add_pe("cpu", library::microblaze_like(0, 0));
        b.add_process("orphan", &orphan, "main", &[], cpu).expect("ok");
        let err = b.build().expect_err("no receiver for ch7");
        assert!(err.message.contains("ch7"));
    }

    #[test]
    fn duplicate_process_names_rejected() {
        let m = module("void main() { out(1); }");
        let mut b = PlatformBuilder::new("p");
        let cpu = b.add_pe("cpu", library::microblaze_like(0, 0));
        b.add_process("a", &m, "main", &[], cpu).expect("ok");
        let err = b.add_process("a", &m, "main", &[], cpu).expect_err("dup");
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn entry_validation() {
        let m = module("void main() { out(1); } int f(int x) { return x; }");
        let mut b = PlatformBuilder::new("p");
        let cpu = b.add_pe("cpu", library::microblaze_like(0, 0));
        assert!(b.add_process("bad", &m, "nope", &[], cpu).is_err());
        assert!(b.add_process("bad2", &m, "f", &[], cpu).is_err(), "arity mismatch");
        assert!(b.add_process("good", &m, "f", &[3], cpu).is_ok());
    }

    #[test]
    fn explicit_binding_wins() {
        let producer = module("void main() { ch_send(0, 1); }");
        let consumer = module("void main() { out(ch_recv(0)); }");
        let mut b = PlatformBuilder::new("p");
        let cpu = b.add_pe("cpu", library::microblaze_like(0, 0));
        let bus = b.add_bus("fast", SimTime::from_ns(5), 2, 1);
        b.add_process("prod", &producer, "main", &[], cpu).expect("ok");
        b.add_process("cons", &consumer, "main", &[], cpu).expect("ok");
        b.bind_channel(ChanId(0), Some(bus), 8);
        let p = b.build().expect("builds");
        assert_eq!(p.channels[&ChanId(0)], ChannelBinding { bus: Some(bus), capacity: 8 });
    }
}
