//! JSON decode of complete platform descriptions — the serving request
//! format.
//!
//! `tlm-serve` accepts design requests over the network; this module turns
//! the platform half of such a request into a [`Platform`]. The format
//! mirrors [`PlatformBuilder`]:
//!
//! ```json
//! {
//!   "name": "my-design",
//!   "pes": [
//!     {"name": "cpu", "pum": "microblaze", "rtos": {"context_switch_cycles": 120}},
//!     {"name": "hw",  "pum": { /* full PUM interchange object */ }}
//!   ],
//!   "buses": [
//!     {"name": "bus0", "period_ps": 10000, "sync_overhead": 4, "cycles_per_word": 2}
//!   ],
//!   "processes": [
//!     {"name": "p0", "pe": "cpu", "source": "void main() { out(1); }",
//!      "entry": "main", "args": []}
//!   ],
//!   "channels": [
//!     {"chan": 0, "bus": "bus0", "capacity": 64}
//!   ],
//!   "optimize": true
//! }
//! ```
//!
//! `pum` is either a full PUM interchange object ([`Pum::from_value`]) or
//! a library preset name (`"microblaze"`, `"generic_risc"`,
//! `"superscalar2"`, `"vliw4"`). `pe`/`bus` references may be indices or
//! names. `buses` and `channels` are optional — unbound channels get the
//! same auto-binding as [`PlatformBuilder::build`]. `optimize` (default
//! `true`) runs the scalar cleanup passes, matching how the built-in
//! designs are lowered.
//!
//! Every failure — malformed JSON shape, an unparsable MiniC source, a PUM
//! that fails validation, a dangling reference — comes back as a
//! [`PlatformError`] with a message naming the offending element, which
//! the server maps to an HTTP 400. Nothing in this path panics on
//! untrusted input.

use std::sync::Arc;

use tlm_cdfg::ir::Module;
use tlm_cdfg::ChanId;
use tlm_core::{library, Pum};
use tlm_desim::SimTime;
use tlm_json::Value;

use crate::desc::{BusId, PeId, Platform, PlatformBuilder, PlatformError};
use crate::rtos::RtosModel;

fn err(message: impl Into<String>) -> PlatformError {
    PlatformError { message: message.into() }
}

fn obj_field<'a>(value: &'a Value, key: &str, what: &str) -> Result<&'a Value, PlatformError> {
    value.get(key).ok_or_else(|| err(format!("{what}: missing field `{key}`")))
}

fn str_field<'a>(value: &'a Value, key: &str, what: &str) -> Result<&'a str, PlatformError> {
    obj_field(value, key, what)?
        .as_str()
        .ok_or_else(|| err(format!("{what}: field `{key}` must be a string")))
}

fn u64_field(value: &Value, key: &str, what: &str) -> Result<u64, PlatformError> {
    obj_field(value, key, what)?
        .as_u64()
        .ok_or_else(|| err(format!("{what}: field `{key}` must be a non-negative integer")))
}

/// Decodes a PUM that is either a library preset name or a full
/// interchange object; validated either way.
fn pum_of(value: &Value, what: &str) -> Result<Pum, PlatformError> {
    let pum = match value {
        Value::String(preset) => match preset.as_str() {
            "microblaze" => library::microblaze_like(8 << 10, 4 << 10),
            "generic_risc" => library::generic_risc(),
            "superscalar2" => library::superscalar2(),
            "vliw4" => library::vliw4(),
            other => {
                return Err(err(format!(
                    "{what}: unknown PUM preset `{other}` \
                     (expected microblaze, generic_risc, superscalar2 or vliw4, \
                     or a full PUM object)"
                )))
            }
        },
        Value::Object(_) => {
            Pum::from_value(value).map_err(|e| err(format!("{what}: bad PUM object: {e}")))?
        }
        _ => return Err(err(format!("{what}: `pum` must be a preset name or an object"))),
    };
    pum.validate().map_err(|e| err(format!("{what}: {e}")))?;
    Ok(pum)
}

/// Resolves a PE reference that is an index or a name.
fn pe_ref(value: &Value, names: &[String], what: &str) -> Result<PeId, PlatformError> {
    if let Some(idx) = value.as_usize() {
        if idx < names.len() {
            return Ok(PeId(idx));
        }
        return Err(err(format!("{what}: PE index {idx} out of range ({} PEs)", names.len())));
    }
    if let Some(name) = value.as_str() {
        if let Some(idx) = names.iter().position(|n| n == name) {
            return Ok(PeId(idx));
        }
        return Err(err(format!("{what}: unknown PE `{name}`")));
    }
    Err(err(format!("{what}: PE reference must be an index or a name")))
}

/// Resolves a bus reference (index or name); `null` means a PE-local
/// channel.
fn bus_ref(value: &Value, names: &[String], what: &str) -> Result<Option<BusId>, PlatformError> {
    match value {
        Value::Null => Ok(None),
        _ => {
            if let Some(idx) = value.as_usize() {
                if idx < names.len() {
                    return Ok(Some(BusId(idx)));
                }
                return Err(err(format!(
                    "{what}: bus index {idx} out of range ({} buses)",
                    names.len()
                )));
            }
            if let Some(name) = value.as_str() {
                if let Some(idx) = names.iter().position(|n| n == name) {
                    return Ok(Some(BusId(idx)));
                }
                return Err(err(format!("{what}: unknown bus `{name}`")));
            }
            Err(err(format!("{what}: bus reference must be null, an index or a name")))
        }
    }
}

/// Parses and lowers one MiniC process source.
fn module_of(source: &str, what: &str, optimize: bool) -> Result<Module, PlatformError> {
    let program =
        tlm_minic::parse(source).map_err(|e| err(format!("{what}: source does not parse: {e}")))?;
    let mut module = tlm_cdfg::lower::lower(&program)
        .map_err(|e| err(format!("{what}: source does not lower: {e}")))?;
    if optimize {
        tlm_cdfg::passes::optimize(&mut module);
    }
    Ok(module)
}

/// Decodes a platform description from JSON text.
///
/// # Errors
///
/// Returns [`PlatformError`] on malformed JSON or any shape/semantic
/// problem; see [`platform_from_value`].
pub fn platform_from_json(text: &str) -> Result<Platform, PlatformError> {
    let value = tlm_json::parse(text).map_err(|e| err(format!("platform JSON: {e}")))?;
    platform_from_value(&value)
}

/// Decodes a platform description from a parsed JSON value.
///
/// # Errors
///
/// Returns [`PlatformError`] naming the offending element when the shape
/// is wrong, a PUM fails validation, a MiniC source does not compile, or a
/// PE/bus/entry reference dangles.
pub fn platform_from_value(value: &Value) -> Result<Platform, PlatformError> {
    platform_from_value_with(value, &mut |source, what, optimize| {
        module_of(source, what, optimize).map(Arc::new)
    })
}

/// A caller-supplied MiniC front-end for [`platform_from_value_with`]: maps
/// `(source, what, optimize)` — the process source, a description of the
/// offending element for error messages, and the platform's `optimize`
/// flag — to the lowered module.
pub type FrontendFn<'a> = &'a mut dyn FnMut(&str, &str, bool) -> Result<Arc<Module>, PlatformError>;

/// [`platform_from_value`] with a caller-supplied MiniC front-end.
///
/// Artifact stores plug their cached front-end in here so repeated
/// requests for the same source share one module.
///
/// # Errors
///
/// Same as [`platform_from_value`]; front-end failures are whatever the
/// callback returns.
pub fn platform_from_value_with(
    value: &Value,
    frontend: FrontendFn<'_>,
) -> Result<Platform, PlatformError> {
    if value.as_object().is_none() {
        return Err(err("platform: expected a JSON object"));
    }
    let name = str_field(value, "name", "platform")?;
    let optimize = value.get("optimize").and_then(Value::as_bool).unwrap_or(true);
    let mut builder = PlatformBuilder::new(name);

    // PEs.
    let pes = obj_field(value, "pes", "platform")?
        .as_array()
        .ok_or_else(|| err("platform: `pes` must be an array"))?;
    if pes.is_empty() {
        return Err(err("platform: needs at least one PE"));
    }
    let mut pe_names: Vec<String> = Vec::with_capacity(pes.len());
    for (i, pe) in pes.iter().enumerate() {
        let what = format!("pes[{i}]");
        let pe_name = str_field(pe, "name", &what)?;
        if pe_names.iter().any(|n| n == pe_name) {
            return Err(err(format!("{what}: duplicate PE name `{pe_name}`")));
        }
        let pum = pum_of(obj_field(pe, "pum", &what)?, &what)?;
        let id = builder.add_pe(pe_name, pum);
        if let Some(rtos) = pe.get("rtos") {
            let model = RtosModel::from_value(rtos)
                .map_err(|e| err(format!("{what}: bad RTOS model: {e}")))?;
            builder.set_rtos(id, model)?;
        }
        pe_names.push(pe_name.to_string());
    }

    // Buses (optional).
    let mut bus_names: Vec<String> = Vec::new();
    if let Some(buses) = value.get("buses") {
        let buses = buses.as_array().ok_or_else(|| err("platform: `buses` must be an array"))?;
        for (i, bus) in buses.iter().enumerate() {
            let what = format!("buses[{i}]");
            let bus_name = str_field(bus, "name", &what)?;
            if bus_names.iter().any(|n| n == bus_name) {
                return Err(err(format!("{what}: duplicate bus name `{bus_name}`")));
            }
            let period_ps = u64_field(bus, "period_ps", &what)?;
            if period_ps == 0 {
                return Err(err(format!("{what}: `period_ps` must be non-zero")));
            }
            builder.add_bus(
                bus_name,
                SimTime::from_ps(period_ps),
                u64_field(bus, "sync_overhead", &what)?,
                u64_field(bus, "cycles_per_word", &what)?,
            );
            bus_names.push(bus_name.to_string());
        }
    }

    // Processes.
    let processes = obj_field(value, "processes", "platform")?
        .as_array()
        .ok_or_else(|| err("platform: `processes` must be an array"))?;
    for (i, proc) in processes.iter().enumerate() {
        let what = format!("processes[{i}]");
        let proc_name = str_field(proc, "name", &what)?;
        let pe = pe_ref(obj_field(proc, "pe", &what)?, &pe_names, &what)?;
        let source = str_field(proc, "source", &what)?;
        let entry = proc.get("entry").map_or(Ok("main"), |v| {
            v.as_str().ok_or_else(|| err(format!("{what}: `entry` must be a string")))
        })?;
        let args: Vec<i64> = match proc.get("args") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(j, v)| {
                    v.as_i64().ok_or_else(|| err(format!("{what}: args[{j}] must be an integer")))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(err(format!("{what}: `args` must be an array of integers"))),
        };
        let module = frontend(source, &format!("{what} (`{proc_name}`)"), optimize)?;
        builder.add_process_arc(proc_name, module, entry, &args, pe)?;
    }

    // Explicit channel bindings (optional).
    if let Some(channels) = value.get("channels") {
        let channels =
            channels.as_array().ok_or_else(|| err("platform: `channels` must be an array"))?;
        for (i, chan) in channels.iter().enumerate() {
            let what = format!("channels[{i}]");
            let id = u64_field(chan, "chan", &what)?;
            let id = u32::try_from(id)
                .map_err(|_| err(format!("{what}: channel id {id} does not fit u32")))?;
            let bus = match chan.get("bus") {
                None => None,
                Some(v) => bus_ref(v, &bus_names, &what)?,
            };
            let capacity = match chan.get("capacity") {
                None => 64,
                Some(v) => v
                    .as_usize()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| err(format!("{what}: `capacity` must be a positive integer")))?,
            };
            builder.bind_channel(ChanId(id), bus, capacity);
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_PE: &str = r#"{
        "name": "demo",
        "pes": [
            {"name": "cpu", "pum": "microblaze"},
            {"name": "risc", "pum": "generic_risc"}
        ],
        "buses": [{"name": "bus0", "period_ps": 10000, "sync_overhead": 4, "cycles_per_word": 2}],
        "processes": [
            {"name": "prod", "pe": "cpu", "source": "void main() { ch_send(0, 7); }"},
            {"name": "cons", "pe": 1, "source": "void main() { out(ch_recv(0)); }",
             "entry": "main", "args": []}
        ],
        "channels": [{"chan": 0, "bus": "bus0", "capacity": 8}]
    }"#;

    #[test]
    fn full_description_decodes() {
        let p = platform_from_json(TWO_PE).expect("decodes");
        assert_eq!(p.name, "demo");
        assert_eq!(p.pes.len(), 2);
        assert_eq!(p.processes.len(), 2);
        assert_eq!(p.channels[&ChanId(0)].capacity, 8);
        assert_eq!(p.channels[&ChanId(0)].bus, Some(BusId(0)));
    }

    #[test]
    fn inline_pum_object_decodes_and_validates() {
        let pum = library::custom_hw("dct", 2, 2).to_value().to_compact();
        let text = format!(
            r#"{{"name": "hw", "pes": [{{"name": "hw", "pum": {pum}}}],
                "processes": [{{"name": "p", "pe": 0, "source": "void main() {{ out(1); }}"}}]}}"#
        );
        let p = platform_from_json(&text).expect("decodes");
        assert_eq!(p.pes[0].pum.name, "dct");
    }

    #[test]
    fn errors_name_the_offending_element() {
        let cases: &[(&str, &str)] = &[
            ("{", "platform JSON"),
            (r#"{"name": "x", "pes": [], "processes": []}"#, "at least one PE"),
            (
                r#"{"name": "x", "pes": [{"name": "a", "pum": "nope"}], "processes": []}"#,
                "unknown PUM preset",
            ),
            (
                r#"{"name": "x", "pes": [{"name": "a", "pum": "microblaze"}],
                   "processes": [{"name": "p", "pe": "ghost", "source": "void main() {}"}]}"#,
                "unknown PE `ghost`",
            ),
            (
                r#"{"name": "x", "pes": [{"name": "a", "pum": "microblaze"}],
                   "processes": [{"name": "p", "pe": 0, "source": "int main( {}"}]}"#,
                "does not parse",
            ),
            (
                r#"{"name": "x", "pes": [{"name": "a", "pum": "microblaze"}],
                   "processes": [{"name": "p", "pe": 0, "source": "void main() {}",
                                  "args": [1.5]}]}"#,
                "args[0]",
            ),
            (
                r#"{"name": "x", "pes": [{"name": "a", "pum": "microblaze"},
                                          {"name": "a", "pum": "microblaze"}],
                   "processes": []}"#,
                "duplicate PE name",
            ),
        ];
        for (text, needle) in cases {
            let e = platform_from_json(text).expect_err(needle);
            assert!(e.message.contains(needle), "`{}` not in `{}`", needle, e.message);
        }
    }

    #[test]
    fn invalid_inline_pum_is_rejected() {
        // Structurally fine, semantically invalid: zero clock period.
        let mut pum = library::generic_risc();
        pum.clock_period_ps = 0;
        let text = format!(
            r#"{{"name": "x", "pes": [{{"name": "a", "pum": {}}}],
                "processes": [{{"name": "p", "pe": 0, "source": "void main() {{}}"}}]}}"#,
            pum.to_value().to_compact()
        );
        let e = platform_from_json(&text).expect_err("invalid PUM");
        assert!(e.message.contains("clock period"), "{}", e.message);
    }

    #[test]
    fn rtos_attachment_decodes() {
        let text = r#"{
            "name": "x",
            "pes": [{"name": "cpu", "pum": "microblaze",
                     "rtos": {"context_switch_cycles": 99}}],
            "processes": [{"name": "p", "pe": 0, "source": "void main() { out(1); }"}]
        }"#;
        let p = platform_from_json(text).expect("decodes");
        assert_eq!(p.pes[0].rtos, Some(RtosModel { context_switch_cycles: 99 }));
    }
}
