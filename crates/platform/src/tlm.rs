//! Executable transaction-level models.
//!
//! [`run_tlm`] turns a [`Platform`] into a running simulation on the
//! `tlm-desim` kernel. Every application process becomes a kernel process
//! wrapping a resumable CDFG interpreter; channels become FIFOs; PEs and
//! buses become shared clocks.
//!
//! In [`TlmMode::Timed`], each process accumulates the annotated delay of
//! every basic block it executes (the generated `wait()` calls of the
//! paper) and applies the accumulated total to simulated time at
//! inter-process transaction boundaries via the PE clock — `sc_wait` is too
//! expensive to call per block, so the paper applies it per transaction,
//! with user-controllable granularity ([`TlmConfig::granularity`]).
//! Channel transfers additionally reserve their bus (or charge the PE-local
//! copy cost).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tlm_cdfg::interp::{Exec, ExecHook, ExecStats, Machine};
use tlm_cdfg::{BlockId, ChanId, FuncId};
use tlm_core::annotate::{annotate_arc, AnnotationReport, TimedModule};
use tlm_core::EstimateError;
use tlm_desim::{Ctx, Fifo, Kernel, Process, Resume, RunReport, SimTime};

use crate::clock::{BusClock, PeClock, SharedBus, SharedPe};
use crate::desc::Platform;

/// Functional (untimed) or timed TLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlmMode {
    /// No timing: transactions synchronize in zero simulated time.
    Functional,
    /// Basic-block delays annotated per PE model are applied at
    /// transaction boundaries.
    Timed,
}

/// TLM execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlmConfig {
    /// Accumulated compute delay is applied to simulated time every
    /// `granularity`-th transaction boundary (§4.3; 1 = every boundary).
    pub granularity: u32,
    /// Simulated-time limit; `None` runs to completion.
    pub time_limit: Option<SimTime>,
    /// Interpreter operations executed per kernel resumption (a process
    /// yields between slices so runaway loops cannot wedge the kernel).
    pub fuel_slice: u64,
    /// When set, the kernel permutes same-timestamp process wakeups from
    /// this splitmix64 seed ([`Kernel::set_order_seed`]). Deterministic:
    /// the same seed yields the identical event order. `None` keeps the
    /// default FIFO/heap order.
    pub order_seed: Option<u64>,
}

impl Default for TlmConfig {
    fn default() -> Self {
        TlmConfig { granularity: 1, time_limit: None, fuel_slice: 16_000_000, order_seed: None }
    }
}

/// Per-process outcome.
#[derive(Debug, Clone, Default)]
pub struct ProcessReport {
    /// Values the process emitted with `out()`.
    pub outputs: Vec<i64>,
    /// Total annotated cycles applied for this process.
    pub computed_cycles: u64,
    /// Interpreter counters.
    pub stats: ExecStats,
    /// Whether the process ran to completion.
    pub finished: bool,
    /// Trap message, if the process died.
    pub trap: Option<String>,
}

/// Result of one TLM run.
#[derive(Debug, Clone)]
pub struct TlmReport {
    /// The mode that ran.
    pub mode: TlmMode,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Kernel statistics.
    pub sim: RunReport,
    /// Outputs per process name.
    pub outputs: BTreeMap<String, Vec<i64>>,
    /// Per-process details.
    pub processes: BTreeMap<String, ProcessReport>,
    /// Per-PE `(name, busy_cycles)`.
    pub pe_busy: Vec<(String, u64)>,
    /// Per-bus `(name, transfers)`.
    pub bus_transfers: Vec<(String, u64)>,
    /// Wall-clock time of the simulation itself.
    pub wall: Duration,
}

impl TlmReport {
    /// The busy cycles of the PE a named process ran on, a proxy for the
    /// paper's per-design cycle counts.
    pub fn pe_cycles(&self, pe_name: &str) -> Option<u64> {
        self.pe_busy.iter().find(|(n, _)| n == pe_name).map(|&(_, c)| c)
    }

    /// Whether every process finished.
    pub fn all_finished(&self) -> bool {
        self.processes.values().all(|p| p.finished)
    }
}

/// The annotation phase of timed-TLM generation, kept separate so its cost
/// can be reported like the paper's Table 1 does.
#[derive(Debug, Clone)]
pub struct AnnotatedPlatform {
    timed: Vec<Arc<TimedModule>>,
    /// Wall-clock cost of annotation.
    pub annotation_time: Duration,
    /// Per-process annotation statistics.
    pub reports: Vec<AnnotationReport>,
}

impl AnnotatedPlatform {
    /// Assembles an annotated platform from externally produced
    /// [`TimedModule`]s (one per process, in process order). This is the
    /// hook for artifact stores that annotate through their own cache
    /// rather than [`annotate_platform`]'s global one.
    pub fn from_timed(
        timed: Vec<Arc<TimedModule>>,
        annotation_time: Duration,
    ) -> AnnotatedPlatform {
        let reports = timed.iter().map(|t| *t.report()).collect();
        AnnotatedPlatform { timed, annotation_time, reports }
    }
}

/// Annotates every process of the platform with its PE's PUM.
///
/// # Errors
///
/// Propagates [`EstimateError`] from the estimation engine.
pub fn annotate_platform(platform: &Platform) -> Result<AnnotatedPlatform, EstimateError> {
    let start = Instant::now();
    let mut timed = Vec::with_capacity(platform.processes.len());
    let mut reports = Vec::new();
    for proc in &platform.processes {
        let pum = &platform.pes[proc.pe.0].pum;
        let tm = annotate_arc(proc.module.clone(), pum)?;
        reports.push(*tm.report());
        timed.push(Arc::new(tm));
    }
    Ok(AnnotatedPlatform { timed, annotation_time: start.elapsed(), reports })
}

/// Builds and runs a TLM in one call.
///
/// # Errors
///
/// Propagates annotation failures in timed mode.
pub fn run_tlm(
    platform: &Platform,
    mode: TlmMode,
    config: &TlmConfig,
) -> Result<TlmReport, EstimateError> {
    let annotated = match mode {
        TlmMode::Functional => None,
        TlmMode::Timed => Some(annotate_platform(platform)?),
    };
    Ok(run_annotated(platform, annotated.as_ref(), config))
}

/// Runs a TLM given a pre-annotated platform (`None` = functional).
pub fn run_annotated(
    platform: &Platform,
    annotated: Option<&AnnotatedPlatform>,
    config: &TlmConfig,
) -> TlmReport {
    let mode = if annotated.is_some() { TlmMode::Timed } else { TlmMode::Functional };
    let mut kernel = Kernel::new();
    if let Some(seed) = config.order_seed {
        kernel.set_order_seed(seed);
    }

    let pe_clocks: Vec<SharedPe> = platform
        .pes
        .iter()
        .map(|pe| PeClock::new(SimTime::from_ps(pe.pum.clock_period_ps), pe.rtos))
        .collect();
    let bus_clocks: Vec<SharedBus> = platform
        .buses
        .iter()
        .map(|bus| BusClock::new(bus.period, bus.sync_overhead, bus.cycles_per_word))
        .collect();

    let mut fifos: HashMap<ChanId, Fifo<i64>> = HashMap::new();
    for (&chan, binding) in &platform.channels {
        fifos.insert(chan, Fifo::new(&mut kernel, format!("{chan}"), Some(binding.capacity)));
    }

    let mut outcomes: Vec<Rc<RefCell<ProcessReport>>> = Vec::new();
    for (index, proc) in platform.processes.iter().enumerate() {
        let outcome = Rc::new(RefCell::new(ProcessReport::default()));
        outcomes.push(outcome.clone());
        let delays = annotated.map(|a| a.timed[index].clone());
        let machine = Machine::from_arc(proc.module.clone(), proc.entry, &proc.args);
        let chans: HashMap<u32, ChanHandle> = platform
            .channels
            .iter()
            .map(|(&chan, binding)| {
                (
                    chan.0,
                    ChanHandle {
                        fifo: fifos[&chan].clone(),
                        bus: binding.bus.map(|b| bus_clocks[b.0].clone()),
                    },
                )
            })
            .collect();
        let body = TlmProcess {
            index,
            machine,
            delays,
            acc: 0,
            pe: pe_clocks[proc.pe.0].clone(),
            chans,
            granularity: config.granularity.max(1),
            boundaries: 0,
            fuel_slice: config.fuel_slice.max(1),
            phase: Phase::Run,
            outcome,
        };
        kernel.spawn(proc.name.clone(), body);
    }

    let wall_start = Instant::now();
    let sim = match config.time_limit {
        Some(limit) => kernel.run_until(limit),
        None => kernel.run(),
    };
    let wall = wall_start.elapsed();

    let mut outputs = BTreeMap::new();
    let mut processes = BTreeMap::new();
    for (proc, outcome) in platform.processes.iter().zip(&outcomes) {
        let report = outcome.borrow().clone();
        outputs.insert(proc.name.clone(), report.outputs.clone());
        processes.insert(proc.name.clone(), report);
    }
    let pe_busy = platform
        .pes
        .iter()
        .zip(&pe_clocks)
        .map(|(pe, clock)| (pe.name.clone(), clock.borrow().busy_cycles()))
        .collect();
    let bus_transfers = platform
        .buses
        .iter()
        .zip(&bus_clocks)
        .map(|(bus, clock)| (bus.name.clone(), clock.borrow().transfers()))
        .collect();

    TlmReport {
        mode,
        end_time: kernel.time(),
        sim,
        outputs,
        processes,
        pe_busy,
        bus_transfers,
        wall,
    }
}

struct ChanHandle {
    fifo: Fifo<i64>,
    bus: Option<SharedBus>,
}

/// What to do once a wait elapses.
#[derive(Debug, Clone, Copy)]
enum After {
    Recv(u32),
    Send(u32, i64),
    Finish,
}

enum Phase {
    Run,
    Wait { until: SimTime, after: After },
    BlockedRecv(u32),
    BlockedSend(u32, i64),
    Done,
}

struct TlmProcess {
    index: usize,
    machine: Machine,
    delays: Option<Arc<TimedModule>>,
    /// Accumulated, not-yet-applied cycles (the paper's `wait()` counter).
    acc: u64,
    pe: SharedPe,
    chans: HashMap<u32, ChanHandle>,
    granularity: u32,
    boundaries: u32,
    fuel_slice: u64,
    phase: Phase,
    outcome: Rc<RefCell<ProcessReport>>,
}

/// Accumulates annotated block delays while the interpreter runs.
struct AccHook<'a> {
    timed: &'a TimedModule,
    acc: &'a mut u64,
}

impl ExecHook for AccHook<'_> {
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        *self.acc += self.timed.cycles(func, block);
    }
}

struct NoHook;
impl ExecHook for NoHook {}

impl TlmProcess {
    /// Applies the accumulated compute delay (honouring granularity) and
    /// any transfer cost, returning the simulated time the transaction may
    /// proceed at.
    fn boundary(&mut self, now: SimTime, transfer: Option<u32>, last: bool) -> SimTime {
        self.boundaries += 1;
        let mut at = now;
        let apply =
            self.delays.is_some() && (last || self.boundaries.is_multiple_of(self.granularity));
        if apply && self.acc > 0 {
            at = self.pe.borrow_mut().reserve(at, self.index, self.acc);
            self.outcome.borrow_mut().computed_cycles += self.acc;
            self.acc = 0;
        }
        if self.delays.is_some() {
            if let Some(chan) = transfer {
                let handle = &self.chans[&chan];
                at = match &handle.bus {
                    Some(bus) => bus.borrow_mut().reserve(at, 1),
                    None => {
                        self.pe.borrow_mut().reserve(at, self.index, Platform::LOCAL_SYNC_CYCLES)
                    }
                };
            }
        }
        at
    }

    fn finish(&mut self, trap: Option<String>) {
        let mut outcome = self.outcome.borrow_mut();
        outcome.outputs = self.machine.outputs().to_vec();
        outcome.stats = *self.machine.stats();
        outcome.finished = trap.is_none();
        outcome.trap = trap;
        self.phase = Phase::Done;
    }
}

impl Process for TlmProcess {
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Resume {
        loop {
            match self.phase {
                Phase::Done => return Resume::Finish,
                Phase::Wait { until, after } => {
                    let now = ctx.time();
                    if now < until {
                        return Resume::WaitTime(until - now);
                    }
                    self.phase = match after {
                        After::Recv(ch) => Phase::BlockedRecv(ch),
                        After::Send(ch, v) => Phase::BlockedSend(ch, v),
                        After::Finish => {
                            self.finish(None);
                            continue;
                        }
                    };
                }
                Phase::BlockedRecv(ch) => {
                    let fifo = self.chans[&ch].fifo.clone();
                    match fifo.try_recv(ctx) {
                        Some(v) => {
                            self.machine.complete_recv(v);
                            self.phase = Phase::Run;
                        }
                        None => return Resume::WaitEvent(fifo.readable_event()),
                    }
                }
                Phase::BlockedSend(ch, v) => {
                    let fifo = self.chans[&ch].fifo.clone();
                    match fifo.try_send(ctx, v) {
                        Ok(()) => {
                            self.machine.complete_send();
                            self.phase = Phase::Run;
                        }
                        Err(_) => return Resume::WaitEvent(fifo.writable_event()),
                    }
                }
                Phase::Run => {
                    let exec = match &self.delays {
                        Some(timed) => {
                            let timed = timed.clone();
                            let mut hook = AccHook { timed: &timed, acc: &mut self.acc };
                            self.machine.run_fuel(&mut hook, self.fuel_slice)
                        }
                        None => self.machine.run_fuel(&mut NoHook, self.fuel_slice),
                    };
                    let now = ctx.time();
                    match exec {
                        Exec::Done => {
                            let until = self.boundary(now, None, true);
                            if until > now {
                                self.phase = Phase::Wait { until, after: After::Finish };
                            } else {
                                self.finish(None);
                            }
                        }
                        Exec::RecvPending(chan) => {
                            let until = self.boundary(now, None, false);
                            self.phase = if until > now {
                                Phase::Wait { until, after: After::Recv(chan.0) }
                            } else {
                                Phase::BlockedRecv(chan.0)
                            };
                        }
                        Exec::SendPending(chan, value) => {
                            let until = self.boundary(now, Some(chan.0), false);
                            self.phase = if until > now {
                                Phase::Wait { until, after: After::Send(chan.0, value) }
                            } else {
                                Phase::BlockedSend(chan.0, value)
                            };
                        }
                        Exec::Trap(trap) => {
                            self.finish(Some(trap.to_string()));
                        }
                        Exec::OutOfFuel => {
                            // Yield a delta so other processes make progress.
                            return Resume::WaitTime(SimTime::ZERO);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::PlatformBuilder;
    use tlm_core::library;
    use tlm_desim::StopReason;

    fn module(src: &str) -> tlm_cdfg::ir::Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    /// producer → worker → consumer across two PEs.
    fn pipeline_platform() -> Platform {
        let producer = module("void main() { for (int i = 0; i < 16; i++) { ch_send(0, i); } }");
        let worker = module(
            "void main() {
                for (int i = 0; i < 16; i++) {
                    int v = ch_recv(0);
                    ch_send(1, v * v + 1);
                }
             }",
        );
        let consumer = module(
            "void main() {
                int s = 0;
                for (int i = 0; i < 16; i++) { s += ch_recv(1); }
                out(s);
             }",
        );
        let mut b = PlatformBuilder::new("pipeline");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        let hw = b.add_pe("hw", library::custom_hw("hw", 2, 1));
        b.add_process("producer", &producer, "main", &[], cpu).expect("ok");
        b.add_process("worker", &worker, "main", &[], hw).expect("ok");
        b.add_process("consumer", &consumer, "main", &[], cpu).expect("ok");
        b.build().expect("builds")
    }

    fn expected_sum() -> i64 {
        (0..16).map(|i: i64| i * i + 1).sum()
    }

    #[test]
    fn functional_tlm_computes_correctly_in_zero_time() {
        let p = pipeline_platform();
        let r = run_tlm(&p, TlmMode::Functional, &TlmConfig::default()).expect("runs");
        assert_eq!(r.outputs["consumer"], vec![expected_sum()]);
        assert_eq!(r.end_time, SimTime::ZERO);
        assert!(r.all_finished());
        assert_eq!(r.sim.stop, StopReason::Completed);
    }

    #[test]
    fn timed_tlm_is_functionally_identical_and_advances_time() {
        let p = pipeline_platform();
        let r = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        assert_eq!(r.outputs["consumer"], vec![expected_sum()]);
        assert!(r.end_time > SimTime::ZERO);
        assert!(r.pe_cycles("cpu").expect("cpu exists") > 0);
        assert!(r.pe_cycles("hw").expect("hw exists") > 0);
        // Cross-PE channels rode the implicit bus: 32 transfers.
        assert_eq!(r.bus_transfers[0].1, 32);
    }

    #[test]
    fn timed_runs_are_deterministic() {
        let p = pipeline_platform();
        let a = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        let b = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.pe_busy, b.pe_busy);
    }

    #[test]
    fn order_seed_is_deterministic_and_functionally_invariant() {
        let p = pipeline_platform();
        let base = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        for seed in [1u64, 7, 42] {
            let cfg = TlmConfig { order_seed: Some(seed), ..TlmConfig::default() };
            let a = run_tlm(&p, TlmMode::Timed, &cfg).expect("runs");
            let b = run_tlm(&p, TlmMode::Timed, &cfg).expect("runs");
            // Same seed → identical run, down to the timed results.
            assert_eq!(a.end_time, b.end_time, "seed {seed}");
            assert_eq!(a.pe_busy, b.pe_busy, "seed {seed}");
            // Any seed → identical functional outputs and per-process
            // computed cycles (the estimation semantics are
            // order-invariant; only interleaving may differ).
            assert_eq!(a.outputs, base.outputs, "seed {seed}");
            for (name, pr) in &base.processes {
                assert_eq!(
                    a.processes[name].computed_cycles, pr.computed_cycles,
                    "{name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn granularity_preserves_total_computed_cycles() {
        let p = pipeline_platform();
        let fine =
            run_tlm(&p, TlmMode::Timed, &TlmConfig { granularity: 1, ..TlmConfig::default() })
                .expect("runs");
        let coarse =
            run_tlm(&p, TlmMode::Timed, &TlmConfig { granularity: 8, ..TlmConfig::default() })
                .expect("runs");
        // The accumulated-delay invariant: total applied compute cycles per
        // process are identical regardless of when they are applied.
        for name in ["producer", "worker", "consumer"] {
            assert_eq!(
                fine.processes[name].computed_cycles, coarse.processes[name].computed_cycles,
                "{name}"
            );
        }
        assert_eq!(fine.outputs, coarse.outputs);
    }

    #[test]
    fn same_pe_processes_serialize() {
        // Producer and consumer both on the CPU: busy cycles add up.
        let producer = module("void main() { for (int i = 0; i < 8; i++) { ch_send(0, i); } }");
        let consumer = module("void main() { for (int i = 0; i < 8; i++) { out(ch_recv(0)); } }");
        let mut b = PlatformBuilder::new("shared");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        b.add_process("producer", &producer, "main", &[], cpu).expect("ok");
        b.add_process("consumer", &consumer, "main", &[], cpu).expect("ok");
        let p = b.build().expect("builds");
        let r = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        assert_eq!(r.outputs["consumer"], (0..8).collect::<Vec<i64>>());
        // End time covers both processes' compute (they share the PE).
        let total: u64 = r.pe_busy.iter().map(|&(_, c)| c).sum();
        let period = SimTime::from_ps(p.pes[0].pum.clock_period_ps);
        assert!(r.end_time >= SimTime::from_cycles(total, period));
    }

    #[test]
    fn trapping_process_is_reported_not_hung() {
        let bad = module("void main() { int t[2]; out(t[5]); ch_send(0, 1); }");
        let reader = module("void main() { out(ch_recv(0)); }");
        let mut b = PlatformBuilder::new("trap");
        let cpu = b.add_pe("cpu", library::microblaze_like(0, 0));
        b.add_process("bad", &bad, "main", &[], cpu).expect("ok");
        b.add_process("reader", &reader, "main", &[], cpu).expect("ok");
        let p = b.build().expect("builds");
        let r = run_tlm(&p, TlmMode::Functional, &TlmConfig::default()).expect("runs");
        assert!(!r.processes["bad"].finished);
        assert!(r.processes["bad"].trap.as_deref().is_some_and(|t| t.contains("bounds")));
        // The reader starves (its producer died) and the kernel reports it.
        assert!(matches!(r.sim.stop, StopReason::Starved(_)));
    }

    #[test]
    fn time_limit_stops_runaway_models() {
        let spinner = module("void main() { while (1) { ch_send(0, 1); } }");
        let sink = module("void main() { while (1) { int v = ch_recv(0); out(v); } }");
        let mut b = PlatformBuilder::new("spin");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        let hw = b.add_pe("hw", library::custom_hw("hw", 1, 1));
        b.add_process("spinner", &spinner, "main", &[], cpu).expect("ok");
        b.add_process("sink", &sink, "main", &[], hw).expect("ok");
        let p = b.build().expect("builds");
        let r = run_tlm(
            &p,
            TlmMode::Timed,
            &TlmConfig { time_limit: Some(SimTime::from_us(100)), ..TlmConfig::default() },
        )
        .expect("runs");
        assert_eq!(r.sim.stop, StopReason::TimeLimit);
    }

    #[test]
    fn hw_mapping_reduces_pe_load_versus_sw() {
        // The same heavy worker mapped to HW vs to the CPU: the timed TLM
        // must show the HW design finishing earlier (Table 1/3 shape).
        let producer = module("void main() { for (int i = 0; i < 32; i++) { ch_send(0, i); } }");
        let worker = module(
            "void main() {
                for (int i = 0; i < 32; i++) {
                    int v = ch_recv(0);
                    int acc = 0;
                    for (int j = 0; j < 16; j++) { acc += (v + j) * (v - j); }
                    ch_send(1, acc);
                }
            }",
        );
        let consumer = module(
            "void main() { int s = 0; for (int i = 0; i < 32; i++) { s += ch_recv(1); } out(s); }",
        );
        let build = |hw_mapped: bool| {
            let mut b = PlatformBuilder::new("map");
            let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
            let hw = b.add_pe("hw", library::custom_hw("hw", 2, 2));
            b.add_process("producer", &producer, "main", &[], cpu).expect("ok");
            b.add_process("worker", &worker, "main", &[], if hw_mapped { hw } else { cpu })
                .expect("ok");
            b.add_process("consumer", &consumer, "main", &[], cpu).expect("ok");
            b.build().expect("builds")
        };
        let sw = run_tlm(&build(false), TlmMode::Timed, &TlmConfig::default()).expect("runs");
        let hw = run_tlm(&build(true), TlmMode::Timed, &TlmConfig::default()).expect("runs");
        assert_eq!(sw.outputs["consumer"], hw.outputs["consumer"]);
        assert!(hw.end_time < sw.end_time, "hw {} vs sw {}", hw.end_time, sw.end_time);
    }
}
