//! A minimal JSON value model, parser and printer.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `serde`/`serde_json` from a registry. The interchange needs of this
//! project are small — PUM descriptions, RTOS models and benchmark records —
//! and are served by this zero-dependency crate instead.
//!
//! Design points:
//!
//! - [`Value::Object`] preserves insertion order, so printed output is
//!   deterministic and diffs cleanly across runs (important for the
//!   `BENCH_estimation.json` perf trajectory tracked PR-over-PR);
//! - numbers are stored as `f64` with an exact-integer fast path in the
//!   printer, which covers every value the estimator exchanges;
//! - the parser is a strict recursive-descent JSON parser with position
//!   information in errors;
//! - the parser is safe on **untrusted input**: [`ParseLimits`] bounds the
//!   input size and the nesting depth (the recursion budget), so a
//!   malicious document returns a [`JsonError`] instead of exhausting
//!   memory or overflowing the stack. `tlm-serve` feeds this parser raw
//!   network bytes, so [`parse`] enforces conservative defaults and
//!   [`parse_with_limits`] lets servers tighten them per endpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders the value as pretty JSON with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(f64::from(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Convenience builder for objects that keeps call sites terse.
#[derive(Debug, Default, Clone)]
pub struct ObjectBuilder {
    entries: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> ObjectBuilder {
        ObjectBuilder::default()
    }

    /// Adds a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> ObjectBuilder {
        self.entries.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.entries)
    }
}

/// A rate-table (`u32 → f64`) rendered as an object with numeric-string
/// keys, the shape the PUM interchange format uses.
pub fn map_u32_f64_to_value(map: &BTreeMap<u32, f64>) -> Value {
    Value::Object(map.iter().map(|(k, v)| (k.to_string(), Value::Number(*v))).collect())
}

/// Parses an object with numeric-string keys back into a `u32 → f64` map.
///
/// # Errors
///
/// Returns [`JsonError`] if the value is not an object or a key/entry does
/// not fit the map's types.
pub fn value_to_map_u32_f64(value: &Value) -> Result<BTreeMap<u32, f64>, JsonError> {
    let entries =
        value.as_object().ok_or_else(|| JsonError::shape("expected an object of numeric keys"))?;
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        let key: u32 = k.parse().map_err(|_| JsonError::shape(format!("bad numeric key `{k}`")))?;
        let rate = v
            .as_f64()
            .ok_or_else(|| JsonError::shape(format!("value of `{k}` is not a number")))?;
        map.insert(key, rate);
    }
    Ok(map)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; clamp to null like serde_json would
        // reject. The estimator never produces these, so this is defensive.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or shape error with byte position (parse errors only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input, when known.
    pub position: Option<usize>,
}

impl JsonError {
    fn parse(message: impl Into<String>, position: usize) -> JsonError {
        JsonError { message: message.into(), position: Some(position) }
    }

    /// An error about an unexpected JSON shape (post-parse).
    pub fn shape(message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), position: None }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(pos) => write!(f, "{} at byte {pos}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for JsonError {}

/// Bounds enforced while parsing untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input size in bytes; longer documents are rejected before
    /// any parsing happens.
    pub max_bytes: usize,
    /// Maximum container nesting depth. The parser recurses once per open
    /// array/object, so this bounds stack use; scalars cost no depth.
    pub max_depth: usize,
}

impl ParseLimits {
    /// The defaults [`parse`] enforces: 16 MiB and 128 levels — far above
    /// anything the estimator exchanges, far below stack-overflow range.
    pub const DEFAULT: ParseLimits = ParseLimits { max_bytes: 16 << 20, max_depth: 128 };
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits::DEFAULT
    }
}

/// Parses a JSON document under [`ParseLimits::DEFAULT`].
///
/// # Errors
///
/// Returns [`JsonError`] with a byte position on malformed input,
/// trailing garbage, or a document exceeding the default limits.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    parse_with_limits(text, ParseLimits::DEFAULT)
}

/// Parses a JSON document with explicit [`ParseLimits`], for callers
/// handling untrusted bytes (e.g. the `tlm-serve` request path).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, trailing garbage, an input
/// longer than `limits.max_bytes`, or nesting deeper than
/// `limits.max_depth`.
pub fn parse_with_limits(text: &str, limits: ParseLimits) -> Result<Value, JsonError> {
    if text.len() > limits.max_bytes {
        return Err(JsonError::shape(format!(
            "input of {} bytes exceeds the {}-byte limit",
            text.len(),
            limits.max_bytes
        )));
    }
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0, max_depth: limits.max_depth };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::parse("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(JsonError::parse(format!("unexpected `{}`", c as char), self.pos)),
            None => Err(JsonError::parse("unexpected end of input", self.pos)),
        }
    }

    /// Charges one nesting level; call on entering an array or object.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(JsonError::parse(
                format!("nesting deeper than {} levels", self.max_depth),
                self.pos,
            ));
        }
        Ok(())
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(JsonError::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must pair with \uXXXX low.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::parse("lone surrogate", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::parse("bad low surrogate", self.pos));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(JsonError::parse("invalid code point", self.pos))
                                }
                            }
                            // parse_hex4 advanced past the digits; skip the
                            // unconditional advance below.
                            continue;
                        }
                        _ => return Err(JsonError::parse("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::parse("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::parse("bad \\u escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::parse("bad \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::parse("bad number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError::parse(format!("bad number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("a\"b\\c\nd\te\u{8}\u{1f600}".into());
        let text = original.to_compact();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("\u{1f600}".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, 1.0, -1.0, 0.5, 1e-9, 123456789.25, 1e18, -2.25] {
            let text = Value::Number(n).to_compact();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(n), "{text}");
        }
    }

    #[test]
    fn pretty_output_is_parseable_and_ordered() {
        let v = ObjectBuilder::new()
            .field("zeta", 1u32)
            .field("alpha", "first")
            .field("list", Value::Array(vec![Value::Bool(true), Value::Null]))
            .build();
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n"));
        // Insertion order preserved: zeta before alpha.
        assert!(pretty.find("zeta").unwrap() < pretty.find("alpha").unwrap());
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["{", "[1,", "tru", "{\"a\" 1}", "1 2", "{'a': 1}", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rate_table_round_trips() {
        let mut map = BTreeMap::new();
        map.insert(1024u32, 0.875);
        map.insert(8192, 0.96875);
        let v = map_u32_f64_to_value(&map);
        assert_eq!(value_to_map_u32_f64(&v).unwrap(), map);
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        // A million unmatched brackets would overflow the stack of a naive
        // recursive parser; the limit turns it into an ordinary error.
        let hostile = "[".repeat(1_000_000);
        let err = parse(&hostile).expect_err("depth-bombed input is rejected");
        assert!(err.message.contains("nesting"), "{err}");

        let objects = "{\"a\":".repeat(1_000_000);
        assert!(parse(&objects).is_err(), "object depth bomb rejected");
    }

    #[test]
    fn depth_exactly_at_limit_parses() {
        let limits = ParseLimits { max_bytes: 1 << 20, max_depth: 8 };
        let ok = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        assert!(parse_with_limits(&ok, limits).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(9), "]".repeat(9));
        assert!(parse_with_limits(&too_deep, limits).is_err());
    }

    #[test]
    fn size_limit_rejects_before_parsing() {
        let limits = ParseLimits { max_bytes: 16, max_depth: 128 };
        assert!(parse_with_limits("[1,2,3]", limits).is_ok());
        let err = parse_with_limits("\"0123456789abcdef0\"", limits).expect_err("too big");
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn scalars_cost_no_depth() {
        let limits = ParseLimits { max_bytes: 1 << 20, max_depth: 1 };
        // A wide but shallow array is fine at depth 1.
        let wide = format!("[{}]", vec!["0"; 1000].join(","));
        assert!(parse_with_limits(&wide, limits).is_ok());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn i64_accessor_accepts_negatives_rejects_fractions() {
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("7").unwrap().as_i64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_i64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_i64(), None);
    }
}
