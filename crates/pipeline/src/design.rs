//! Designs as pipeline artifacts: a platform plus the module artifact of
//! every process, so sweep drivers and servers can demand downstream
//! stages (annotation, reports) without re-lowering anything.

use std::sync::Arc;

use tlm_cdfg::ChanId;
use tlm_core::Pum;
use tlm_desim::SimTime;
use tlm_platform::desc::{BusId, PeId, Platform, PlatformBuilder};
use tlm_platform::rtos::RtosModel;

use crate::error::PipelineError;
use crate::graph::{ModuleArtifact, Pipeline};

/// A platform whose processes were lowered through a [`Pipeline`]: each
/// process's module artifact is retained, in process order, so downstream
/// stages can be demanded by key.
#[derive(Debug, Clone)]
pub struct PreparedDesign {
    /// The platform description. Mutating PE PUMs (characterization,
    /// sweeps) is fine — the artifacts key modules, not PUMs.
    pub platform: Platform,
    artifacts: Vec<ModuleArtifact>,
}

impl PreparedDesign {
    pub(crate) fn from_parts(platform: Platform, artifacts: Vec<ModuleArtifact>) -> PreparedDesign {
        debug_assert_eq!(platform.processes.len(), artifacts.len());
        PreparedDesign { platform, artifacts }
    }

    /// `artifacts()[i]` matches `platform.processes[i]`.
    pub fn artifacts(&self) -> &[ModuleArtifact] {
        &self.artifacts
    }
}

/// [`PlatformBuilder`] front-ended by a [`Pipeline`]: processes are added
/// by MiniC source and lowered through the shared, content-addressed
/// front-end — the replacement for hand-wiring `parse → lower → optimize`
/// in every driver.
#[derive(Debug)]
pub struct DesignBuilder<'a> {
    pipeline: &'a Pipeline,
    builder: PlatformBuilder,
    artifacts: Vec<ModuleArtifact>,
}

impl<'a> DesignBuilder<'a> {
    /// Starts a design description on the given pipeline.
    pub fn new(pipeline: &'a Pipeline, name: impl Into<String>) -> DesignBuilder<'a> {
        DesignBuilder { pipeline, builder: PlatformBuilder::new(name), artifacts: Vec::new() }
    }

    /// Adds a PE described by a PUM.
    pub fn add_pe(&mut self, name: impl Into<String>, pum: Pum) -> PeId {
        self.builder.add_pe(name, pum)
    }

    /// Attaches an RTOS model to a PE.
    ///
    /// # Errors
    ///
    /// Fails if `pe` was not created by this builder.
    pub fn set_rtos(&mut self, pe: PeId, rtos: RtosModel) -> Result<(), PipelineError> {
        Ok(self.builder.set_rtos(pe, rtos)?)
    }

    /// Adds a bus.
    pub fn add_bus(
        &mut self,
        name: impl Into<String>,
        period: SimTime,
        sync_overhead: u64,
        cycles_per_word: u64,
    ) -> BusId {
        self.builder.add_bus(name, period, sync_overhead, cycles_per_word)
    }

    /// Adds an application process from MiniC source, lowered (with the
    /// cleanup passes) through the pipeline front-end.
    ///
    /// # Errors
    ///
    /// Front-end failures ([`PipelineError::Parse`]/[`PipelineError::Lower`])
    /// or platform validation failures ([`PipelineError::Platform`]).
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        source: &str,
        entry: &str,
        args: &[i64],
        pe: PeId,
    ) -> Result<(), PipelineError> {
        let artifact = self.pipeline.frontend(source)?;
        self.builder.add_process_arc(name, Arc::clone(artifact.module()), entry, args, pe)?;
        self.artifacts.push(artifact);
        Ok(())
    }

    /// Explicitly binds a channel to a bus with a FIFO capacity.
    pub fn bind_channel(&mut self, chan: ChanId, bus: Option<BusId>, capacity: usize) {
        self.builder.bind_channel(chan, bus, capacity);
    }

    /// Finalizes the design, auto-binding unbound channels.
    ///
    /// # Errors
    ///
    /// Same as [`PlatformBuilder::build`].
    pub fn build(self) -> Result<PreparedDesign, PipelineError> {
        Ok(PreparedDesign::from_parts(self.builder.build()?, self.artifacts))
    }
}
