//! The terminal pipeline artifact: a static, deterministic estimation
//! report for one (module, PUM) pair.
//!
//! Unlike [`AnnotationReport`](tlm_core::annotate::AnnotationReport), this
//! carries no wall-clock or cache-occupancy observations — it is a pure
//! function of its stage key, so a server can hand it out verbatim across
//! requests without breaking the determinism contract.

use tlm_core::annotate::TimedModule;

/// Per-block delay decomposition (the paper's Algorithm 2 terms).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// Block id within its function.
    pub block: u32,
    /// Algorithm 1 schedule length in cycles.
    pub sched: u64,
    /// Expected branch-misprediction penalty cycles.
    pub branch: f64,
    /// Expected instruction-fetch stall cycles.
    pub ifetch: f64,
    /// Expected data-access stall cycles.
    pub data: f64,
    /// Total annotated cycles (the value the generated `wait()` carries).
    pub cycles: u64,
}

/// One function's block rows, in block order.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Per-block delays, indexed by block id.
    pub blocks: Vec<BlockReport>,
}

/// The full estimation report of one module under one PUM.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReport {
    /// Basic blocks annotated.
    pub blocks: usize,
    /// Operations scheduled.
    pub ops: usize,
    /// Sum of annotated cycles over all blocks (each counted once).
    pub total_cycles: u64,
    /// Per-function delay rows, in module order.
    pub functions: Vec<FunctionReport>,
}

impl EstimateReport {
    /// Extracts the deterministic report of an annotated module.
    pub fn of(timed: &TimedModule) -> EstimateReport {
        let module = timed.module();
        let mut total_cycles = 0u64;
        let mut functions = Vec::with_capacity(module.functions.len());
        for (fid, func) in module.functions_iter() {
            let mut blocks = Vec::with_capacity(func.blocks.len());
            for (bid, _) in func.blocks_iter() {
                let d = timed.delay(fid, bid);
                total_cycles += d.cycles;
                blocks.push(BlockReport {
                    block: bid.0,
                    sched: d.sched,
                    branch: d.branch,
                    ifetch: d.ifetch,
                    data: d.data,
                    cycles: d.cycles,
                });
            }
            functions.push(FunctionReport { name: func.name.clone(), blocks });
        }
        let report = timed.report();
        EstimateReport { blocks: report.blocks, ops: report.ops, total_cycles, functions }
    }
}
