//! Demand-driven, content-addressed artifact pipeline over the estimation
//! flow.
//!
//! The paper's flow is fixed — C source → CDFG → Algorithm 1 schedule →
//! Algorithm 2 statistical delay → annotated TLM → report — and every
//! stage is a pure function of its inputs. This crate turns that flow
//! into one stage graph with typed, fingerprint-keyed artifacts
//! ([`graph`]), generalizing the exactly-once `OnceLock`-slot discipline
//! and full-key no-aliasing rule of `tlm_core::cache` from the schedule
//! stage to all of them. A cache-size sweep then reuses everything above
//! Algorithm 2; a platform edit reuses every untouched process's
//! artifacts end-to-end; a warm server answers repeat requests from the
//! report stage without touching any upstream stage.
//!
//! Entry points:
//! - [`Pipeline`] — the stage graph; [`Pipeline::global`] for the
//!   process-wide instance.
//! - [`DesignBuilder`] / [`PreparedDesign`] — platforms whose processes
//!   are lowered through the shared front-end.
//! - [`PipelineError`] — the one error type every stage resolves to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod error;
pub mod graph;
pub mod observe;
pub mod report;
pub mod routing;
mod stage;

pub use design::{DesignBuilder, PreparedDesign};
pub use error::PipelineError;
pub use graph::{ModuleArtifact, Pipeline, PipelineStats};
pub use observe::set_stage_observer;
pub use report::EstimateReport;
pub use stage::StageStats;

// Compile-time audit: the pipeline and everything it hands out must be
// shareable across threads (serve workers, bench fan-out).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pipeline>();
    assert_send_sync::<ModuleArtifact>();
    assert_send_sync::<PreparedDesign>();
    assert_send_sync::<PipelineError>();
    assert_send_sync::<EstimateReport>();
};
