//! The one error type every pipeline stage resolves to.
//!
//! Each layer of the flow keeps its own structured error — parse
//! diagnostics carry spans, estimation errors carry PUM context, platform
//! errors name the offending element — and all of them convert into
//! [`PipelineError`] via `From`, so drivers match on one type instead of
//! stringifying at every boundary.

use std::error::Error;
use std::fmt;

use tlm_cdfg::lower::LowerError;
use tlm_core::EstimateError;
use tlm_minic::ParseError;
use tlm_platform::desc::PlatformError;

/// Any failure along `Source → … → Report`.
///
/// Clones cheaply: pipeline stages cache failures exactly like successes
/// (the same inputs deterministically fail the same way), so the error
/// must be replayable to later demanders.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// MiniC source does not parse.
    Parse(ParseError),
    /// The AST does not lower to a CDFG.
    Lower(LowerError),
    /// Estimation (Algorithm 1/2 or PUM validation) failed.
    Estimate(EstimateError),
    /// Platform construction or decoding failed.
    Platform(PlatformError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "source does not parse: {e}"),
            PipelineError::Lower(e) => write!(f, "source does not lower: {e}"),
            PipelineError::Estimate(e) => e.fmt(f),
            PipelineError::Platform(e) => e.fmt(f),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Lower(e) => Some(e),
            PipelineError::Estimate(e) => Some(e),
            PipelineError::Platform(e) => Some(e),
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

impl From<EstimateError> for PipelineError {
    fn from(e: EstimateError) -> Self {
        PipelineError::Estimate(e)
    }
}

impl From<PlatformError> for PipelineError {
    fn from(e: PlatformError) -> Self {
        PipelineError::Platform(e)
    }
}
