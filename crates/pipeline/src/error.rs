//! The one error type every pipeline stage resolves to.
//!
//! Each layer of the flow keeps its own structured error — parse
//! diagnostics carry spans, estimation errors carry PUM context, platform
//! errors name the offending element — and all of them convert into
//! [`PipelineError`] via `From`, so drivers match on one type instead of
//! stringifying at every boundary.

use std::error::Error;
use std::fmt;

use tlm_cdfg::lower::LowerError;
use tlm_core::EstimateError;
use tlm_minic::ParseError;
use tlm_platform::desc::PlatformError;

/// Any failure along `Source → … → Report`.
///
/// Clones cheaply: pipeline stages cache *deterministic* failures exactly
/// like successes (the same inputs deterministically fail the same way),
/// so the error must be replayable to later demanders. Transient failures
/// ([`PipelineError::Transient`]) are the exception: they are never
/// cached — see [`PipelineError::is_deterministic`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// MiniC source does not parse.
    Parse(ParseError),
    /// The AST does not lower to a CDFG.
    Lower(LowerError),
    /// Estimation (Algorithm 1/2 or PUM validation) failed.
    Estimate(EstimateError),
    /// Platform construction or decoding failed.
    Platform(PlatformError),
    /// A transient, environment-dependent failure — an injected fault, an
    /// I/O hiccup, resource pressure. Retrying the same inputs may well
    /// succeed, so a stage must **not** cache it: caching would poison the
    /// slot forever (`tests in stage.rs` lock this down).
    Transient(String),
}

impl PipelineError {
    /// Wraps a transient (retryable, never-cached) failure message.
    pub fn transient(message: impl Into<String>) -> PipelineError {
        PipelineError::Transient(message.into())
    }

    /// Whether the failure is a deterministic property of the inputs.
    ///
    /// Deterministic failures (parse, lower, estimate, platform) are
    /// cached like successes — re-running could not change them.
    /// Non-deterministic ones must be recomputed on the next demand.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, PipelineError::Transient(_))
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "source does not parse: {e}"),
            PipelineError::Lower(e) => write!(f, "source does not lower: {e}"),
            PipelineError::Estimate(e) => e.fmt(f),
            PipelineError::Platform(e) => e.fmt(f),
            PipelineError::Transient(msg) => write!(f, "transient failure (retryable): {msg}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Lower(e) => Some(e),
            PipelineError::Estimate(e) => Some(e),
            PipelineError::Platform(e) => Some(e),
            PipelineError::Transient(_) => None,
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

impl From<EstimateError> for PipelineError {
    fn from(e: EstimateError) -> Self {
        PipelineError::Estimate(e)
    }
}

impl From<PlatformError> for PipelineError {
    fn from(e: PlatformError) -> Self {
        PipelineError::Platform(e)
    }
}
