//! Process-wide stage-store observer hook.
//!
//! The serve tier's trace ring wants to see pipeline cache transitions
//! (which stage hit, which ran its computation) per request without the
//! pipeline depending on the server. This module inverts the dependency:
//! the host installs one observer callback and every
//! [`crate::Pipeline`]'s stage stores report their lookups through it.
//!
//! The hook is deliberately minimal — a `(&'static str, bool)` pair per
//! lookup, no allocation — so the disabled cost is one `OnceLock` load
//! and a branch on the stage hot path.

use std::sync::OnceLock;

type Observer = Box<dyn Fn(&'static str, bool) + Send + Sync>;

static OBSERVER: OnceLock<Observer> = OnceLock::new();

/// Installs the process-wide stage observer. Called on every stage-store
/// lookup with the stage's canonical name (`"ast"`, `"module"`, …) and
/// whether the demand was served from the store (`true` = hit, `false` =
/// the computation ran). The first installation wins; later calls are
/// ignored. The callback must be cheap and must not demand pipeline
/// artifacts (it runs inside stage lookups).
pub fn set_stage_observer(observer: impl Fn(&'static str, bool) + Send + Sync + 'static) {
    let _ = OBSERVER.set(Box::new(observer));
}

/// Reports one lookup to the installed observer, if any.
pub(crate) fn emit(stage: &'static str, hit: bool) {
    if let Some(observer) = OBSERVER.get() {
        observer(stage, hit);
    }
}
