//! The demand-driven stage graph.
//!
//! ```text
//! Source ──► Ast ──► Module(optimized) ──► PreparedModule ──┐
//!                                                           ├─► AnnotatedEstimate ──► Report
//!                                   Pum ──► BlockSchedules ─┘
//! ```
//!
//! Each stage is a content-addressed store (`stage::Stage`) keyed by the
//! canonical encoding of its **true** inputs:
//!
//! | stage      | key                                          |
//! |------------|----------------------------------------------|
//! | ast        | source bytes                                 |
//! | module     | optimize flag ‖ source bytes                 |
//! | prepared   | module key                                   |
//! | schedules  | schedule domain ‖ block key (`ScheduleCache`)|
//! | annotated  | len(PUM) ‖ canonical PUM ‖ module key        |
//! | report     | annotated key                                |
//! | rows       | len(PUM) ‖ canonical PUM ‖ function structural key |
//!
//! The `rows` stage is the per-function half of the report: block delay
//! rows keyed by the function's *structural* identity
//! ([`PreparedModule::function_structural_key`]) instead of the whole
//! module key. Edit-to-estimate sessions demand reports through it
//! ([`Pipeline::report_from_rows`]) so an edit re-keys only the functions
//! it structurally changed; every untouched function hits, whatever else
//! in the file moved.
//!
//! Demand flows top-down and stops at the first hit: a report-stage hit
//! performs **no** lookups on the annotated, prepared or schedule stages.
//! Invalidation is by construction — an edit to any input changes the keys
//! of exactly the stages that can see it, so a cache-size sweep (which
//! changes only the PUM's statistical models) re-keys the annotated and
//! report stages while every stage above Algorithm 2 hits, and a platform
//! edit touching one PE re-keys only the processes mapped to it.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use tlm_cdfg::ir::Module;
use tlm_cdfg::FuncId;
use tlm_core::annotate::{
    annotate_function_in_domain, annotate_in_domain, PreparedModule, TimedModule,
};
use tlm_core::cache::ScheduleDomain;
use tlm_core::{Pum, ScheduleCache};
use tlm_faults::Kind;
use tlm_json::Value;
use tlm_minic::Program;
use tlm_platform::desc::{Platform, PlatformError};
use tlm_platform::json::platform_from_value_with;
use tlm_platform::tlm::{run_annotated, AnnotatedPlatform, TlmConfig, TlmReport};

use crate::design::PreparedDesign;
use crate::error::PipelineError;
use crate::report::{BlockReport, EstimateReport, FunctionReport};
use crate::stage::{Stage, StageStats};

/// A module artifact: the lowered (and optionally optimized) CDFG together
/// with its content-addressed key.
///
/// The key is the canonical encoding of the module's true inputs (the
/// optimize flag and the full source text), so it is valid across
/// [`Pipeline`] instances: an artifact obtained from one pipeline demands
/// the same downstream entries in any other.
#[derive(Debug, Clone)]
pub struct ModuleArtifact {
    key: Arc<[u8]>,
    module: Arc<Module>,
}

impl ModuleArtifact {
    /// The lowered module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The canonical stage key (optimize flag ‖ source bytes).
    pub fn key(&self) -> &[u8] {
        &self.key
    }
}

/// Counter snapshots of every stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// `Source → Ast` (parse).
    pub ast: StageStats,
    /// `Ast → Module` (lower + optional optimize).
    pub module: StageStats,
    /// `Module → PreparedModule` (per-block DFGs and schedule keys).
    pub prepared: StageStats,
    /// `PreparedModule × domain → BlockSchedules` (Algorithm 1).
    pub schedules: StageStats,
    /// `PreparedModule × PUM → AnnotatedEstimate` (Algorithm 2).
    pub annotated: StageStats,
    /// `AnnotatedEstimate → Report`.
    pub report: StageStats,
    /// `Function structure × PUM → block delay rows` (the per-function
    /// stage incremental sessions splice reports from).
    pub rows: StageStats,
}

impl PipelineStats {
    /// The stages with their canonical names, for iteration (metrics
    /// exporters, gates).
    pub fn stages(&self) -> [(&'static str, StageStats); 7] {
        [
            ("ast", self.ast),
            ("module", self.module),
            ("prepared", self.prepared),
            ("schedules", self.schedules),
            ("annotated", self.annotated),
            ("report", self.report),
            ("rows", self.rows),
        ]
    }
}

/// The pipeline: one store per stage plus the Algorithm 1 schedule cache.
///
/// All methods take `&self` and are safe to call concurrently; each
/// stage's computation runs exactly once per key regardless of how many
/// threads demand it. Results are bit-identical to the direct sequential
/// drive (`parse → lower → optimize → annotate_uncached`) — asserted by
/// `tests/pipeline_reuse.rs` for every app design × every scheduling
/// policy.
#[derive(Debug)]
pub struct Pipeline {
    ast: Stage<Arc<Program>>,
    module: Stage<Arc<Module>>,
    prepared: Stage<Arc<PreparedModule>>,
    schedules: ScheduleCache,
    annotated: Stage<Arc<TimedModule>>,
    report: Stage<Arc<EstimateReport>>,
    rows: Stage<Arc<Vec<BlockReport>>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline {
            ast: Stage::new("ast"),
            module: Stage::new("module"),
            prepared: Stage::new("prepared"),
            schedules: ScheduleCache::new(),
            annotated: Stage::new("annotated"),
            report: Stage::new("report"),
            rows: Stage::new("rows"),
        }
    }

    /// A pipeline whose resident artifact keys are bounded by roughly
    /// `total` bytes. Half the budget goes to the Algorithm 1 schedule
    /// cache — its entries are the expensive ones to recompute — and the
    /// rest is split evenly across the six stage stores. Eviction is
    /// second-chance generational; results stay bit-identical across
    /// evictions because every stage is a pure function of its key.
    pub fn with_budget(total: u64) -> Pipeline {
        let pipeline = Pipeline::new();
        pipeline.set_budget(total);
        pipeline
    }

    /// Re-partitions the resident-byte budget as in
    /// [`Pipeline::with_budget`]; `u64::MAX` disables eviction. Takes
    /// effect on subsequent insertions.
    pub fn set_budget(&self, total: u64) {
        let (schedules, per_stage) =
            if total == u64::MAX { (u64::MAX, u64::MAX) } else { (total / 2, total / 12) };
        self.schedules.set_budget(schedules);
        self.ast.set_budget(per_stage);
        self.module.set_budget(per_stage);
        self.prepared.set_budget(per_stage);
        self.annotated.set_budget(per_stage);
        self.report.set_budget(per_stage);
        self.rows.set_budget(per_stage);
    }

    /// The process-wide pipeline. Sweep drivers and builders that estimate
    /// the same sources under many configurations get cross-run reuse
    /// through this instance for free.
    pub fn global() -> &'static Pipeline {
        static GLOBAL: OnceLock<Pipeline> = OnceLock::new();
        GLOBAL.get_or_init(Pipeline::new)
    }

    /// `Source → Ast`: parses MiniC source, keyed by the source bytes.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] if the source does not parse.
    pub fn ast(&self, source: &str) -> Result<Arc<Program>, PipelineError> {
        self.ast.get_or_try(source.as_bytes(), || Ok(Arc::new(tlm_minic::parse(source)?)))
    }

    /// The shared front-end: `Source → Ast → Module` with the scalar
    /// cleanup passes applied (how every built-in design is lowered).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] or [`PipelineError::Lower`].
    pub fn frontend(&self, source: &str) -> Result<ModuleArtifact, PipelineError> {
        self.frontend_with(source, true)
    }

    /// [`Pipeline::frontend`] with the optimize flag explicit. The flag is
    /// part of the module key: optimized and unoptimized lowerings of the
    /// same source are distinct artifacts. The key encoding lives in
    /// [`crate::routing::module_stage_key`] so request routers can derive
    /// it without running any stage.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::frontend`].
    pub fn frontend_with(
        &self,
        source: &str,
        optimize: bool,
    ) -> Result<ModuleArtifact, PipelineError> {
        let key = crate::routing::module_stage_key(source, optimize);
        let module = self.module.get_or_try(&key, || {
            let program = self.ast(source)?;
            let mut module = tlm_cdfg::lower::lower(&program)?;
            if optimize {
                tlm_cdfg::passes::optimize(&mut module);
            }
            Ok(Arc::new(module))
        })?;
        Ok(ModuleArtifact { key: key.into(), module })
    }

    /// `Module → PreparedModule`: per-block DFGs and canonical schedule
    /// keys, keyed by the module key.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed artifact; typed for uniformity.
    pub fn prepared(
        &self,
        artifact: &ModuleArtifact,
    ) -> Result<Arc<PreparedModule>, PipelineError> {
        self.prepared.get_or_try(&artifact.key, || {
            Ok(Arc::new(PreparedModule::new(Arc::clone(&artifact.module))))
        })
    }

    /// `PreparedModule × PUM → AnnotatedEstimate`: Algorithms 1 and 2 over
    /// every block, keyed by the canonical PUM encoding plus the module
    /// key. Algorithm 1 results come from the pipeline's schedule cache,
    /// which keys by schedule *domain* — so two PUMs differing only in
    /// their statistical models share every schedule entry.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] if the PUM is invalid or cannot execute
    /// some block.
    pub fn annotated(
        &self,
        artifact: &ModuleArtifact,
        pum: &Pum,
    ) -> Result<Arc<TimedModule>, PipelineError> {
        self.annotated.get_or_try(&self.estimate_key(artifact, pum), || {
            // Chaos-build injection point: a transient draw fails the
            // compute retryably (the stage drops the slot, the next demand
            // recomputes); a delay draw just stretches it.
            if let Some(fault) =
                tlm_faults::point("pipeline.stage.compute", &[Kind::Transient, Kind::Delay])
            {
                fault.fire();
                if fault.kind() == Kind::Transient {
                    return Err(PipelineError::transient(
                        "injected fault at pipeline.stage.compute",
                    ));
                }
            }
            let prepared = self.prepared(artifact)?;
            let handle = self.schedules.domain(&ScheduleDomain::of(pum));
            Ok(Arc::new(annotate_in_domain(&prepared, pum, &handle, true)?))
        })
    }

    /// `AnnotatedEstimate → Report`: the static per-block delay report,
    /// keyed like the annotated stage. A hit here short-circuits the whole
    /// graph — no upstream stage sees a lookup.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::annotated`].
    pub fn process_report(
        &self,
        artifact: &ModuleArtifact,
        pum: &Pum,
    ) -> Result<Arc<EstimateReport>, PipelineError> {
        self.report.get_or_try(&self.estimate_key(artifact, pum), || {
            let timed = self.annotated(artifact, pum)?;
            Ok(Arc::new(EstimateReport::of(&timed)))
        })
    }

    /// The canonical key of the annotated/report stages: the PUM's full
    /// canonical encoding ([`Pum::estimate_domain`], length-prefixed so it
    /// can never blur into the module key) followed by the module key.
    fn estimate_key(&self, artifact: &ModuleArtifact, pum: &Pum) -> Vec<u8> {
        let pum_bytes = pum.estimate_domain().into_bytes();
        let mut key = Vec::with_capacity(8 + pum_bytes.len() + artifact.key.len());
        key.extend_from_slice(&(pum_bytes.len() as u64).to_le_bytes());
        key.extend_from_slice(&pum_bytes);
        key.extend_from_slice(&artifact.key);
        key
    }

    /// The canonical key of the `rows` stage: like [`Pipeline::estimate_key`]
    /// but scoped to one function's structural identity instead of the
    /// whole module key. The function *name* is deliberately excluded —
    /// renaming a function, moving it, or pasting a structurally identical
    /// copy into another source all hit the same rows.
    fn rows_key(&self, prep: &PreparedModule, pum: &Pum, func: FuncId) -> Vec<u8> {
        let pum_bytes = pum.estimate_domain().into_bytes();
        let func_key = prep.function_structural_key(func);
        let mut key = Vec::with_capacity(8 + pum_bytes.len() + func_key.len());
        key.extend_from_slice(&(pum_bytes.len() as u64).to_le_bytes());
        key.extend_from_slice(&pum_bytes);
        key.extend_from_slice(func_key);
        key
    }

    /// `Function structure × PUM → block delay rows`: Algorithms 1 and 2
    /// over the blocks of one function, keyed by the function's structural
    /// identity. Demanded per function by [`Pipeline::report_from_rows`];
    /// after an edit, only structurally changed functions miss.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::annotated`].
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range for the artifact's module.
    pub fn function_rows(
        &self,
        artifact: &ModuleArtifact,
        pum: &Pum,
        func: FuncId,
    ) -> Result<Arc<Vec<BlockReport>>, PipelineError> {
        let prepared = self.prepared(artifact)?;
        self.function_rows_prepared(&prepared, pum, func)
    }

    /// [`Pipeline::function_rows`] with the prepared module already
    /// resolved — the sweep/report-assembly form (one `prepared` lookup
    /// per report instead of one per function).
    fn function_rows_prepared(
        &self,
        prepared: &Arc<PreparedModule>,
        pum: &Pum,
        func: FuncId,
    ) -> Result<Arc<Vec<BlockReport>>, PipelineError> {
        self.rows.get_or_try(&self.rows_key(prepared, pum, func), || {
            // Same chaos-build injection point as the annotated stage: the
            // rows compute is retryable under transient faults too.
            if let Some(fault) =
                tlm_faults::point("pipeline.stage.compute", &[Kind::Transient, Kind::Delay])
            {
                fault.fire();
                if fault.kind() == Kind::Transient {
                    return Err(PipelineError::transient(
                        "injected fault at pipeline.stage.compute",
                    ));
                }
            }
            let handle = self.schedules.domain(&ScheduleDomain::of(pum));
            let delays = annotate_function_in_domain(prepared, pum, &handle, func, true)?;
            Ok(Arc::new(
                delays
                    .iter()
                    .enumerate()
                    .map(|(block, d)| BlockReport {
                        block: block as u32,
                        sched: d.sched,
                        branch: d.branch,
                        ifetch: d.ifetch,
                        data: d.data,
                        cycles: d.cycles,
                    })
                    .collect(),
            ))
        })
    }

    /// Assembles the full [`EstimateReport`] from per-function rows: the
    /// incremental-session path. Bit-identical to
    /// [`Pipeline::process_report`] on the same inputs — both bottom out in
    /// the same Algorithm 1/2 floating-point path — but keyed per function,
    /// so after a source edit only the structurally dirty functions
    /// recompute and the rest of the report is spliced from retained rows.
    ///
    /// Does not populate the whole-module `report` stage: the assembled
    /// report is rebuilt from rows on every demand (cheap — it is a
    /// concatenation), keeping the dirty-set accounting observable.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::annotated`].
    pub fn report_from_rows(
        &self,
        artifact: &ModuleArtifact,
        pum: &Pum,
    ) -> Result<Arc<EstimateReport>, PipelineError> {
        let prepared = self.prepared(artifact)?;
        let module = prepared.module();
        let mut functions = Vec::with_capacity(module.functions.len());
        let mut total_cycles = 0u64;
        for (fid, func) in module.functions_iter() {
            let rows = self.function_rows_prepared(&prepared, pum, fid)?;
            total_cycles += rows.iter().map(|r| r.cycles).sum::<u64>();
            functions.push(FunctionReport { name: func.name.clone(), blocks: (*rows).clone() });
        }
        Ok(Arc::new(EstimateReport {
            blocks: prepared.total_blocks(),
            ops: prepared.ops(),
            total_cycles,
            functions,
        }))
    }

    /// Drops the rows entry of one function under one PUM — the targeted
    /// invalidation sessions use when a function's identity disappears
    /// from the design (deleted or structurally replaced with no surviving
    /// twin). Returns whether an entry was resident.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed artifact; typed for uniformity
    /// (resolving the prepared module can, in principle, be a miss that
    /// recomputes).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range for the artifact's module.
    pub fn invalidate_function_rows(
        &self,
        artifact: &ModuleArtifact,
        pum: &Pum,
        func: FuncId,
    ) -> Result<bool, PipelineError> {
        let prepared = self.prepared(artifact)?;
        Ok(self.rows.remove(&self.rows_key(&prepared, pum, func)))
    }

    /// Annotates every process of a design with its PE's PUM, through the
    /// annotated stage (so untouched processes of an edited platform hit
    /// end-to-end).
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::annotated`].
    pub fn annotate_design(
        &self,
        design: &PreparedDesign,
    ) -> Result<AnnotatedPlatform, PipelineError> {
        let start = Instant::now();
        let mut timed = Vec::with_capacity(design.platform.processes.len());
        for (proc, artifact) in design.platform.processes.iter().zip(design.artifacts()) {
            timed.push(self.annotated(artifact, &design.platform.pes[proc.pe.0].pum)?);
        }
        Ok(AnnotatedPlatform::from_timed(timed, start.elapsed()))
    }

    /// Runs the timed TLM of a design, annotating through the pipeline.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::annotated`].
    pub fn run_timed(
        &self,
        design: &PreparedDesign,
        config: &TlmConfig,
    ) -> Result<TlmReport, PipelineError> {
        let annotated = self.annotate_design(design)?;
        Ok(run_annotated(&design.platform, Some(&annotated), config))
    }

    /// Runs the functional (untimed) TLM of a design.
    pub fn run_functional(&self, design: &PreparedDesign, config: &TlmConfig) -> TlmReport {
        run_annotated(&design.platform, None, config)
    }

    /// Decodes a JSON platform description (the serving request format)
    /// into a [`PreparedDesign`], lowering every process source through
    /// the shared front-end.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Platform`] naming the offending element, exactly
    /// as [`tlm_platform::json::platform_from_value`] would.
    pub fn design_from_value(&self, value: &Value) -> Result<PreparedDesign, PipelineError> {
        let mut artifacts = Vec::new();
        let platform: Platform = platform_from_value_with(value, &mut |source, what, optimize| {
            let artifact = self
                .frontend_with(source, optimize)
                .map_err(|e| PlatformError { message: format!("{what}: {e}") })?;
            let module = Arc::clone(artifact.module());
            artifacts.push(artifact);
            Ok(module)
        })?;
        Ok(PreparedDesign::from_parts(platform, artifacts))
    }

    /// The Algorithm 1 schedule cache backing the `schedules` stage.
    pub fn schedule_cache(&self) -> &ScheduleCache {
        &self.schedules
    }

    /// Snapshot of every stage's counters.
    pub fn stats(&self) -> PipelineStats {
        let s = self.schedules.stats();
        PipelineStats {
            ast: self.ast.stats(),
            module: self.module.stats(),
            prepared: self.prepared.stats(),
            schedules: StageStats {
                hits: s.hits,
                misses: s.misses,
                entries: s.entries,
                bytes: s.bytes,
                evictions: s.evictions,
            },
            annotated: self.annotated.stats(),
            report: self.report.stats(),
            rows: self.rows.stats(),
        }
    }

    /// Drops every artifact and resets all counters.
    pub fn clear(&self) {
        self.ast.clear();
        self.module.clear();
        self.prepared.clear();
        self.schedules.clear();
        self.annotated.clear();
        self.report.clear();
        self.rows.clear();
    }
}
