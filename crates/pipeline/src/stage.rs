//! One content-addressed stage store: the generalized form of
//! `tlm_core::cache`'s exactly-once slot discipline.
//!
//! Correctness before speed, exactly as in the schedule cache: keys are
//! the full canonical byte encodings of a stage's true inputs — never
//! hashes of them — so two distinct inputs can never alias an entry. Each
//! key owns a `OnceLock` slot, so the stage's computation runs **exactly
//! once** per key even under concurrent demand: a thread that loses the
//! initialization race blocks on the winner and reads its result (counted
//! as a hit — it did not run the computation). Errors are cached like
//! successes; the same inputs deterministically fail the same way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::PipelineError;

/// Counter snapshot of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Demands served from the store.
    pub hits: u64,
    /// Demands that ran the stage's computation.
    pub misses: u64,
    /// Resident artifacts.
    pub entries: usize,
    /// Approximate resident key bytes. Artifact values are excluded: they
    /// are shared `Arc`s whose footprint the store does not own
    /// exclusively.
    pub bytes: u64,
}

impl StageStats {
    /// Fraction of demands served from the store; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<T, PipelineError>>>;

/// A thread-safe, content-addressed store for one stage's artifacts.
#[derive(Debug)]
pub(crate) struct Stage<T: Clone> {
    entries: Mutex<HashMap<Arc<[u8]>, Slot<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    key_bytes: AtomicU64,
}

impl<T: Clone> Stage<T> {
    pub(crate) fn new() -> Stage<T> {
        Stage {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            key_bytes: AtomicU64::new(0),
        }
    }

    /// Demands the artifact for `key`, running `compute` iff no slot holds
    /// it yet. The slot is fetched (or inserted) under the map lock;
    /// `compute` runs outside it, so other keys proceed concurrently and
    /// `compute` may itself demand artifacts from other stages.
    pub(crate) fn get_or_try(
        &self,
        key: &[u8],
        compute: impl FnOnce() -> Result<T, PipelineError>,
    ) -> Result<T, PipelineError> {
        let slot: Slot<T> = {
            let mut entries = self.entries.lock().expect("pipeline stage poisoned");
            match entries.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    self.key_bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
                    Arc::clone(entries.entry(Arc::from(key)).or_default())
                }
            }
        };
        let mut ran = false;
        let outcome = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// Snapshot of the stage's counters.
    pub(crate) fn stats(&self) -> StageStats {
        let entries = self.entries.lock().expect("pipeline stage poisoned").len();
        StageStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.key_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops all artifacts and resets the counters.
    pub(crate) fn clear(&self) {
        self.entries.lock().expect("pipeline stage poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.key_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_platform::desc::PlatformError;

    #[test]
    fn compute_runs_once_per_key() {
        let stage: Stage<u64> = Stage::new();
        let a = stage.get_or_try(b"k", || Ok(7)).expect("computes");
        let b = stage.get_or_try(b"k", || panic!("must not re-run")).expect("hits");
        assert_eq!((a, b), (7, 7));
        let stats = stage.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let stage: Stage<u64> = Stage::new();
        stage.get_or_try(b"ab", || Ok(1)).expect("computes");
        let v = stage.get_or_try(b"a", || Ok(2)).expect("computes");
        assert_eq!(v, 2, "prefix key is its own entry");
        assert_eq!(stage.stats().entries, 2);
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let stage: Stage<u64> = Stage::new();
        let boom = || Err(PlatformError { message: "boom".into() }.into());
        let first = stage.get_or_try(b"k", boom).expect_err("fails");
        let second = stage.get_or_try(b"k", || panic!("must not re-run")).expect_err("replays");
        assert_eq!(first, second);
        let stats = stage.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn clear_resets_everything() {
        let stage: Stage<u64> = Stage::new();
        stage.get_or_try(b"k", || Ok(1)).expect("computes");
        stage.clear();
        assert_eq!(stage.stats(), StageStats::default());
    }
}
