//! One content-addressed stage store: the generalized form of
//! `tlm_core::cache`'s exactly-once slot discipline.
//!
//! Correctness before speed, exactly as in the schedule cache: keys are
//! the full canonical byte encodings of a stage's true inputs — never
//! hashes of them — so two distinct inputs can never alias an entry. Each
//! key owns a `OnceLock` slot, so the stage's computation runs **exactly
//! once** per key even under concurrent demand: a thread that loses the
//! initialization race blocks on the winner and reads its result (counted
//! as a hit — it did not run the computation).
//!
//! **Error caching policy.** Deterministic errors are cached like
//! successes — the same inputs fail the same way, so re-running could not
//! change the outcome. *Transient* errors (injected faults, I/O,
//! resource pressure — [`PipelineError::is_deterministic`] is false) are
//! **not** cached: the computing thread removes the slot before
//! returning, so the next demand recomputes instead of replaying a
//! failure that may no longer hold.
//!
//! **Byte-budgeted eviction.** A stage can carry a resident-byte budget
//! ([`Stage::set_budget`]): entries live in two generations, and when the
//! accounted key bytes exceed the budget the old generation is dropped
//! and the young one ages into its place. A lookup promotes its entry
//! back into the young generation (second chance), `OnceLock` slot and
//! all — a survivor never recomputes, and an evicted entry recomputes to
//! bit-identical bytes because every stage is a pure function of its key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::PipelineError;

/// Counter snapshot of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Demands served from the store.
    pub hits: u64,
    /// Demands that ran the stage's computation.
    pub misses: u64,
    /// Resident artifacts.
    pub entries: usize,
    /// Approximate resident key bytes. Artifact values are excluded: they
    /// are shared `Arc`s whose footprint the store does not own
    /// exclusively.
    pub bytes: u64,
    /// Entries dropped by budget-driven generation rotation.
    pub evictions: u64,
}

impl StageStats {
    /// Fraction of demands served from the store; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<T, PipelineError>>>;

/// Two generations of entries: young holds everything inserted or touched
/// since the last rotation; old awaits a second-chance promotion or the
/// next rotation.
#[derive(Debug)]
struct Generations<T> {
    young: HashMap<Arc<[u8]>, Slot<T>>,
    old: HashMap<Arc<[u8]>, Slot<T>>,
    young_bytes: u64,
    old_bytes: u64,
}

impl<T> Default for Generations<T> {
    fn default() -> Generations<T> {
        Generations { young: HashMap::new(), old: HashMap::new(), young_bytes: 0, old_bytes: 0 }
    }
}

/// A thread-safe, content-addressed store for one stage's artifacts.
#[derive(Debug)]
pub(crate) struct Stage<T: Clone> {
    /// Canonical stage name, reported to the [`crate::observe`] hook.
    name: &'static str,
    gens: Mutex<Generations<T>>,
    /// Resident-byte budget; `u64::MAX` means unbounded.
    budget: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T: Clone> Stage<T> {
    pub(crate) fn new(name: &'static str) -> Stage<T> {
        Stage {
            name,
            gens: Mutex::new(Generations::default()),
            budget: AtomicU64::new(u64::MAX),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Sets the resident-byte budget; `u64::MAX` disables eviction. Takes
    /// effect on the next insertion.
    pub(crate) fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Demands the artifact for `key`, running `compute` iff no slot holds
    /// it yet. The slot is fetched (or inserted) under the map lock;
    /// `compute` runs outside it, so other keys proceed concurrently and
    /// `compute` may itself demand artifacts from other stages.
    pub(crate) fn get_or_try(
        &self,
        key: &[u8],
        compute: impl FnOnce() -> Result<T, PipelineError>,
    ) -> Result<T, PipelineError> {
        let mut inserted = false;
        let slot: Slot<T> = {
            let mut gens = self.gens.lock().expect("pipeline stage poisoned");
            if let Some(slot) = gens.young.get(key) {
                Arc::clone(slot)
            } else if let Some((key, slot)) = gens.old.remove_entry(key) {
                // Second chance: a touch promotes the entry (slot intact,
                // so no recompute) back into the young generation.
                gens.old_bytes -= key.len() as u64;
                gens.young_bytes += key.len() as u64;
                gens.young.insert(key, Arc::clone(&slot));
                slot
            } else {
                inserted = true;
                gens.young_bytes += key.len() as u64;
                Arc::clone(gens.young.entry(Arc::from(key)).or_default())
            }
        };
        if inserted {
            self.enforce_budget();
        }
        let mut ran = false;
        let outcome = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        crate::observe::emit(self.name, !ran);
        let outcome = outcome.clone();
        if ran {
            if let Err(e) = &outcome {
                if !e.is_deterministic() {
                    // Transient failure: drop the slot so the next demand
                    // recomputes instead of replaying a stale error.
                    // Threads already blocked on this slot still observe
                    // the error (they raced the same attempt); later
                    // demands get a fresh slot. Only this exact slot is
                    // removed — a concurrent recompute's slot stays.
                    self.remove_if_same(key, &slot);
                }
            }
        }
        outcome
    }

    /// Removes `key` from either generation unconditionally — the targeted
    /// invalidation hook (sessions drop the rows of deleted functions).
    /// Returns whether an entry was resident. A computation already in
    /// flight on the removed slot completes on its own `Arc` and is simply
    /// never read again.
    pub(crate) fn remove(&self, key: &[u8]) -> bool {
        let mut gens = self.gens.lock().expect("pipeline stage poisoned");
        let Generations { young, old, young_bytes, old_bytes } = &mut *gens;
        for (map, bytes) in [(young, young_bytes), (old, old_bytes)] {
            if map.remove(key).is_some() {
                *bytes -= key.len() as u64;
                return true;
            }
        }
        false
    }

    /// Removes `key` from either generation iff it still maps to `slot`.
    fn remove_if_same(&self, key: &[u8], slot: &Slot<T>) {
        let mut gens = self.gens.lock().expect("pipeline stage poisoned");
        let Generations { young, old, young_bytes, old_bytes } = &mut *gens;
        for (map, bytes) in [(young, young_bytes), (old, old_bytes)] {
            if map.get(key).is_some_and(|s| Arc::ptr_eq(s, slot)) {
                map.remove(key);
                *bytes -= key.len() as u64;
                return;
            }
        }
    }

    /// Rotates while the young generation exceeds half the budget or the
    /// total exceeds the whole budget — each generation is bounded by
    /// budget/2, so the resident total stays within the budget. At most
    /// two rotations (the second empties the store entirely).
    fn enforce_budget(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == u64::MAX {
            return;
        }
        for _ in 0..2 {
            let mut gens = self.gens.lock().expect("pipeline stage poisoned");
            if gens.young_bytes <= budget / 2 && gens.young_bytes + gens.old_bytes <= budget {
                return;
            }
            let evicted = gens.old.len() as u64;
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            gens.old = std::mem::take(&mut gens.young);
            gens.old_bytes = std::mem::replace(&mut gens.young_bytes, 0);
        }
    }

    /// Snapshot of the stage's counters.
    pub(crate) fn stats(&self) -> StageStats {
        let (entries, bytes) = {
            let gens = self.gens.lock().expect("pipeline stage poisoned");
            (gens.young.len() + gens.old.len(), gens.young_bytes + gens.old_bytes)
        };
        StageStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all artifacts and resets the counters.
    pub(crate) fn clear(&self) {
        *self.gens.lock().expect("pipeline stage poisoned") = Generations::default();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_platform::desc::PlatformError;

    #[test]
    fn compute_runs_once_per_key() {
        let stage: Stage<u64> = Stage::new("test");
        let a = stage.get_or_try(b"k", || Ok(7)).expect("computes");
        let b = stage.get_or_try(b"k", || panic!("must not re-run")).expect("hits");
        assert_eq!((a, b), (7, 7));
        let stats = stage.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let stage: Stage<u64> = Stage::new("test");
        stage.get_or_try(b"ab", || Ok(1)).expect("computes");
        let v = stage.get_or_try(b"a", || Ok(2)).expect("computes");
        assert_eq!(v, 2, "prefix key is its own entry");
        assert_eq!(stage.stats().entries, 2);
    }

    #[test]
    fn deterministic_errors_are_cached_and_replayed() {
        let stage: Stage<u64> = Stage::new("test");
        let boom = || Err(PlatformError { message: "boom".into() }.into());
        let first = stage.get_or_try(b"k", boom).expect_err("fails");
        let second = stage.get_or_try(b"k", || panic!("must not re-run")).expect_err("replays");
        assert_eq!(first, second);
        let stats = stage.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn transient_errors_do_not_poison_the_slot() {
        let stage: Stage<u64> = Stage::new("test");
        let first = stage
            .get_or_try(b"k", || Err(PipelineError::transient("cosmic ray")))
            .expect_err("fails");
        assert!(!first.is_deterministic());
        // The once-failed key recomputes — and can now succeed.
        let v = stage.get_or_try(b"k", || Ok(42)).expect("recomputes after transient failure");
        assert_eq!(v, 42);
        let stats = stage.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 1));
        // And the success is cached as usual.
        let v = stage.get_or_try(b"k", || panic!("must not re-run")).expect("hits");
        assert_eq!(v, 42);
    }

    #[test]
    fn budget_rotation_evicts_and_second_chance_promotes() {
        let stage: Stage<u64> = Stage::new("test");
        stage.set_budget(8);
        // 4-byte keys: the third insert exceeds the 8-byte budget.
        stage.get_or_try(b"aaaa", || Ok(1)).expect("computes");
        stage.get_or_try(b"bbbb", || Ok(2)).expect("computes");
        // Touch `aaaa` so it is young when the rotation happens.
        stage.get_or_try(b"aaaa", || panic!("hit")).expect("hits");
        stage.get_or_try(b"cccc", || Ok(3)).expect("computes and rotates");
        let stats = stage.stats();
        assert!(stats.bytes <= 8, "resident bytes respect the budget: {stats:?}");
        // `aaaa` survived the rotation into the old generation: a demand
        // promotes it without recompute.
        let v = stage.get_or_try(b"aaaa", || panic!("survivor must not recompute")).expect("hits");
        assert_eq!(v, 1);
        // `bbbb` was evicted (old generation at rotation): it recomputes,
        // bit-identical by determinism of the compute.
        let v = stage.get_or_try(b"bbbb", || Ok(2)).expect("recomputes");
        assert_eq!(v, 2);
        assert!(stage.stats().evictions > 0, "rotation counted evictions");
    }

    #[test]
    fn remove_drops_one_entry_and_its_bytes() {
        let stage: Stage<u64> = Stage::new("test");
        stage.get_or_try(b"keep", || Ok(1)).expect("computes");
        stage.get_or_try(b"drop", || Ok(2)).expect("computes");
        assert!(stage.remove(b"drop"), "resident entry removed");
        assert!(!stage.remove(b"drop"), "second removal is a no-op");
        let stats = stage.stats();
        assert_eq!((stats.entries, stats.bytes), (1, 4));
        // The removed key recomputes; the kept one still hits.
        assert_eq!(stage.get_or_try(b"drop", || Ok(2)).expect("recomputes"), 2);
        assert_eq!(stage.get_or_try(b"keep", || panic!("hit")).expect("hits"), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let stage: Stage<u64> = Stage::new("test");
        stage.get_or_try(b"k", || Ok(1)).expect("computes");
        stage.clear();
        assert_eq!(stage.stats(), StageStats::default());
    }
}
