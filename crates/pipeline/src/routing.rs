//! Canonical stage keys as *routing material*.
//!
//! The stage graph's content-addressed keys (see [`crate::graph`]) name
//! artifacts; this module exposes the subset of that naming scheme that
//! callers outside the pipeline need **before** running any stage — most
//! prominently a sharded serving tier that must decide which process owns
//! a request's artifacts without parsing, lowering, or estimating
//! anything.
//!
//! The property that makes this work: the module stage key (`optimize
//! flag ‖ source bytes`) is a pure function of request-visible inputs.
//! Two requests whose platforms lower the same sources with the same
//! flag demand the same module artifacts and everything downstream of
//! them, so hashing this material routes all of a design's traffic — and
//! all of its cache locality — to one place. The functions here are the
//! single source of truth for that encoding; [`crate::Pipeline`] builds
//! its real module keys through them.

use tlm_json::Value;

/// The canonical key of the module stage: `optimize flag ‖ source
/// bytes`. Stable across [`crate::Pipeline`] instances and across
/// processes — it encodes only the stage's true inputs.
#[must_use]
pub fn module_stage_key(source: &str, optimize: bool) -> Vec<u8> {
    let mut key = Vec::with_capacity(1 + source.len());
    key.push(u8::from(optimize));
    key.extend_from_slice(source.as_bytes());
    key
}

/// The routing material of a platform description in the JSON schema of
/// [`tlm_platform::json`]: the concatenation of every process's
/// [`module_stage_key`], each length-prefixed so adjacent sources cannot
/// alias. Returns `None` when the value does not have the expected shape
/// (no `processes` array of objects with string `source`s) — such a
/// request will fail decoding anyway, and the caller routes it anywhere.
///
/// Deliberately *narrower* than hashing the whole JSON: two platform
/// objects that differ only in PE/bus wiring still share their module
/// artifacts, and this keys only what the front-end stages consume.
#[must_use]
pub fn platform_routing_material(platform: &Value) -> Option<Vec<u8>> {
    let optimize = platform.get("optimize").and_then(Value::as_bool).unwrap_or(true);
    let processes = platform.get("processes")?.as_array()?;
    let mut material = Vec::new();
    for proc in processes {
        let source = proc.get("source")?.as_str()?;
        let key = module_stage_key(source, optimize);
        material.extend_from_slice(&(key.len() as u64).to_le_bytes());
        material.extend_from_slice(&key);
    }
    if material.is_empty() {
        return None;
    }
    Some(material)
}

/// The routing material of an edit session, from its front-assigned id.
///
/// Sessions are stateful — the shard that created one holds its source
/// snapshots and retained rows — so every request naming a session must
/// land on the same shard. The id is the only request-visible input all
/// of them share (`POST /session/{id}/edit` bodies differ per edit), so
/// the material is a distinct prefix plus the id's bytes. The prefix
/// keeps session material from ever colliding with
/// [`module_stage_key`] bytes: module keys start with an optimize flag
/// of `0`/`1`, never `b's'`.
///
/// Fronts assign ids *sequentially*, and sequential ids fed straight
/// into the ring hash land in long same-shard runs (FNV-1a turns a
/// varying low byte under a constant suffix into an arithmetic
/// progression of points). The id is therefore scrambled through the
/// splitmix64 finalizer — a fixed bijection, so the material stays
/// stable and injective while consecutive ids scatter across shards.
#[must_use]
pub fn session_routing_material(id: u64) -> Vec<u8> {
    let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let mut material = Vec::with_capacity(16);
    material.extend_from_slice(b"session:");
    material.extend_from_slice(&z.to_le_bytes());
    material
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_stage_key_matches_the_pipeline_artifact_key() {
        let source = "void main() { out(1); }";
        for optimize in [false, true] {
            let pipeline = crate::Pipeline::new();
            let artifact = pipeline.frontend_with(source, optimize).expect("lowers");
            assert_eq!(
                artifact.key(),
                module_stage_key(source, optimize).as_slice(),
                "routing key must equal the real stage key (optimize={optimize})"
            );
        }
    }

    #[test]
    fn routing_material_keys_sources_not_wiring() {
        let a = tlm_json::parse(
            r#"{"name": "x", "pes": [{"name": "a", "pum": "generic_risc"}],
                "processes": [{"name": "p", "pe": 0, "source": "void main() { out(1); }"}]}"#,
        )
        .expect("json");
        let b = tlm_json::parse(
            r#"{"name": "y", "pes": [{"name": "b", "pum": "microblaze"}],
                "processes": [{"name": "q", "pe": 0, "source": "void main() { out(1); }"}]}"#,
        )
        .expect("json");
        let c = tlm_json::parse(
            r#"{"name": "x", "pes": [{"name": "a", "pum": "generic_risc"}],
                "processes": [{"name": "p", "pe": 0, "source": "void main() { out(2); }"}]}"#,
        )
        .expect("json");
        let ma = platform_routing_material(&a).expect("material");
        let mb = platform_routing_material(&b).expect("material");
        let mc = platform_routing_material(&c).expect("material");
        assert_eq!(ma, mb, "wiring differences must not split the route");
        assert_ne!(ma, mc, "source differences must split the route");
        assert!(platform_routing_material(&tlm_json::parse("{}").expect("json")).is_none());
    }

    #[test]
    fn session_material_is_stable_distinct_and_collision_free() {
        assert_eq!(session_routing_material(7), session_routing_material(7));
        assert_ne!(session_routing_material(7), session_routing_material(8));
        // Never aliases module-key material, whose first byte is the
        // optimize flag.
        assert_ne!(session_routing_material(1)[0], 0);
        assert_ne!(session_routing_material(1)[0], 1);
    }
}
