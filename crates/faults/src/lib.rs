//! Deterministic, site-addressed fault injection.
//!
//! The serving stack (`tlm-serve`, `tlm-pipeline`) declares *injection
//! points* — named places where a fault could plausibly strike: a worker
//! panicking mid-request, a socket read coming up short, a stage compute
//! failing transiently, the allocator coming under pressure, a
//! front↔shard RPC frame cut mid-read (`serve.rpc.recv` — surfaces as
//! the shard-unavailable `503` path). In a normal
//! build every point compiles to an inline `None` (the `enabled` feature
//! is off and there is not even an atomic load on the path). A chaos
//! build (`--features enabled`, re-exported as `faults` by the consuming
//! crates) arms the points against a seeded **plan**:
//!
//! ```
//! use tlm_faults::{point, Kind};
//!
//! tlm_faults::install(7); // seed the plan (loadgen --chaos 7)
//! if let Some(fault) = point("serve.worker.handle", &[Kind::Panic, Kind::Delay]) {
//!     fault.fire(); // panics, sleeps, or pressures the allocator
//! }
//! tlm_faults::clear();
//! ```
//!
//! **Determinism.** Each site keeps an occurrence counter; the decision
//! for occurrence *n* of site *s* is a pure function of `(seed, s, n)`
//! (splitmix64 over the FNV-1a hash of the site name). Replaying the
//! same seed against the same request sequence injects the same fault
//! *schedule* — which request observes which fault still depends on
//! thread interleaving, so chaos gates are written as counting
//! invariants (every 500 matches a caught panic; resident bytes stay
//! under budget) rather than per-request expectations.
//!
//! **Scripted injection.** Tests that need a specific fault at a
//! specific moment use [`force`]: the next `count` draws at a site fire
//! the given kind unconditionally, ahead of the seeded schedule. This is
//! how the panic-isolation acceptance test arranges "exactly one worker
//! panic, right now" without depending on seed arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// The kinds of fault a point can inject.
///
/// Active kinds ([`Kind::Panic`], [`Kind::Delay`],
/// [`Kind::AllocPressure`]) are applied by [`Fault::fire`]; passive kinds
/// ([`Kind::ShortRead`], [`Kind::Transient`]) are returned to the caller,
/// which simulates the failure in its own domain (a connection cut short,
/// a stage compute failing retryably).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Panic on the calling thread (worker isolation drill).
    Panic,
    /// Sleep for a small, seeded duration (latency spike).
    Delay,
    /// Pretend the peer's bytes ran out (connection cut short).
    ShortRead,
    /// Briefly allocate and touch a large buffer (allocator pressure).
    AllocPressure,
    /// Fail retryably (a transient, non-deterministic error).
    Transient,
}

impl Kind {
    /// Stable name, used in counter labels and panic messages.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Panic => "panic",
            Kind::Delay => "delay",
            Kind::ShortRead => "short_read",
            Kind::AllocPressure => "alloc_pressure",
            Kind::Transient => "transient",
        }
    }
}

/// One drawn fault, bound to the site that drew it.
#[derive(Debug, Clone)]
pub struct Fault {
    site: &'static str,
    kind: Kind,
    magnitude: u64,
}

impl Fault {
    /// Which kind of fault was drawn.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The site that drew it.
    pub fn site(&self) -> &'static str {
        self.site
    }

    /// Applies an active fault in place: panics for [`Kind::Panic`],
    /// sleeps 2–20 ms for [`Kind::Delay`], allocates and touches a 4 MiB
    /// buffer for [`Kind::AllocPressure`]. Passive kinds are a no-op here
    /// — the caller simulates those itself.
    pub fn fire(&self) {
        match self.kind {
            Kind::Panic => panic!("injected fault: panic at {}", self.site),
            Kind::Delay => std::thread::sleep(Duration::from_millis(2 + self.magnitude % 19)),
            Kind::AllocPressure => {
                let mut pressure = vec![0u8; 4 << 20];
                let mut i = 0;
                while i < pressure.len() {
                    pressure[i] = (self.magnitude as u8).wrapping_add(i as u8);
                    i += 4096;
                }
                std::hint::black_box(&pressure);
            }
            Kind::ShortRead | Kind::Transient => {}
        }
    }
}

/// Relative draw weights per kind, out of [`DENOM`] — roughly one fault
/// per seven point calls when every kind is allowed, dominated by the
/// benign ones.
#[cfg(feature = "enabled")]
const WEIGHTS: [(Kind, u64); 5] = [
    (Kind::Panic, 3),
    (Kind::Delay, 3),
    (Kind::ShortRead, 2),
    (Kind::AllocPressure, 1),
    (Kind::Transient, 2),
];
#[cfg(feature = "enabled")]
const DENOM: u64 = 64;

#[cfg(feature = "enabled")]
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(feature = "enabled")]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(feature = "enabled")]
mod armed {
    use super::{fnv1a_64, splitmix64, Fault, Kind, DENOM, WEIGHTS};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    struct Plan {
        /// Seed of the weighted schedule; `None` (a plan created by
        /// [`force`] alone) disarms the seeded draws entirely, so a test
        /// scripting one specific fault cannot leak random ones into
        /// whatever else shares the process.
        seed: Option<u64>,
        /// Occurrence counter per site.
        occurrences: HashMap<&'static str, u64>,
        /// Scripted injections, consumed before the seeded schedule.
        forced: Vec<(&'static str, Kind, u64)>,
        /// Injections performed, per (site, kind).
        injected: HashMap<(&'static str, Kind), u64>,
    }

    static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
    static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

    fn with_plan<R>(f: impl FnOnce(&mut Option<Plan>) -> R) -> R {
        f(&mut PLAN.lock().expect("fault plan poisoned"))
    }

    /// Installs a fresh seeded plan, discarding any previous one.
    pub fn install(seed: u64) {
        with_plan(|p| *p = Some(Plan { seed: Some(seed), ..Plan::default() }));
    }

    /// Disarms every point and drops all counters.
    pub fn clear() {
        with_plan(|p| *p = None);
    }

    /// Whether a plan is currently installed.
    pub fn active() -> bool {
        with_plan(|p| p.is_some())
    }

    /// Scripts the next `count` draws at `site` to fire `kind`
    /// unconditionally, ahead of the seeded schedule. Installs an
    /// otherwise-empty plan if none is active; a plan created this way
    /// performs *only* the scripted injections (no seeded schedule).
    pub fn force(site: &'static str, kind: Kind, count: u64) {
        with_plan(|p| {
            let plan = p.get_or_insert_with(Plan::default);
            plan.forced.push((site, kind, count));
        });
    }

    /// Draws against the plan for this occurrence of `site`. Returns a
    /// fault only when the drawn kind is in `allowed` — a draw the caller
    /// cannot tolerate is dropped, never substituted.
    pub fn point(site: &'static str, allowed: &[Kind]) -> Option<Fault> {
        with_plan(|p| {
            let plan = p.as_mut()?;
            // Scripted injections win over the seeded schedule.
            for entry in &mut plan.forced {
                let (fsite, kind, count) = *entry;
                if fsite == site && count > 0 && allowed.contains(&kind) {
                    entry.2 -= 1;
                    *plan.injected.entry((site, kind)).or_default() += 1;
                    INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
                    return Some(Fault { site, kind, magnitude: splitmix64(entry.2) });
                }
            }
            let seed = plan.seed?;
            let n = plan.occurrences.entry(site).or_default();
            let draw = splitmix64(seed ^ fnv1a_64(site.as_bytes()).wrapping_add(*n));
            *n += 1;
            let mut slot = draw % DENOM;
            for (kind, weight) in WEIGHTS {
                if slot < weight {
                    if !allowed.contains(&kind) {
                        return None; // the drawn kind is not tolerable here
                    }
                    *plan.injected.entry((site, kind)).or_default() += 1;
                    INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
                    return Some(Fault { site, kind, magnitude: splitmix64(draw) });
                }
                slot -= weight;
            }
            None
        })
    }

    /// Total injections performed since process start (survives
    /// [`clear`]; exported on `/metrics`).
    pub fn injected_total() -> u64 {
        INJECTED_TOTAL.load(Ordering::Relaxed)
    }

    /// Injections performed at `site` of `kind` under the current plan.
    pub fn injected(site: &str, kind: Kind) -> u64 {
        with_plan(|p| {
            p.as_ref()
                .and_then(|plan| plan.injected.get(&(site, kind)).copied())
                .unwrap_or_default()
        })
    }

    /// Sorted (site, kind, count) rows of the current plan's injections.
    pub fn injected_snapshot() -> Vec<(&'static str, Kind, u64)> {
        with_plan(|p| {
            let mut rows: Vec<_> = p
                .as_ref()
                .map(|plan| plan.injected.iter().map(|(&(s, k), &n)| (s, k, n)).collect::<Vec<_>>())
                .unwrap_or_default();
            rows.sort_by(|a, b| (a.0, a.1.name()).cmp(&(b.0, b.1.name())));
            rows
        })
    }
}

#[cfg(feature = "enabled")]
pub use armed::{
    active, clear, force, injected, injected_snapshot, injected_total, install, point,
};

/// Disarmed stubs: with the `enabled` feature off, every injection point
/// is an inline `None` and the plan installers do nothing.
#[cfg(not(feature = "enabled"))]
mod disarmed {
    use super::{Fault, Kind};

    /// Arms nothing — the crate was built without the `enabled` feature.
    pub fn install(_seed: u64) {}

    /// No-op.
    pub fn clear() {}

    /// Always `false` in a disarmed build.
    pub fn active() -> bool {
        false
    }

    /// No-op.
    pub fn force(_site: &'static str, _kind: Kind, _count: u64) {}

    /// Always `None` in a disarmed build; inlines away entirely.
    #[inline(always)]
    pub fn point(_site: &'static str, _allowed: &[Kind]) -> Option<Fault> {
        None
    }

    /// Always zero in a disarmed build.
    pub fn injected_total() -> u64 {
        0
    }

    /// Always zero in a disarmed build.
    pub fn injected(_site: &str, _kind: Kind) -> u64 {
        0
    }

    /// Always empty in a disarmed build.
    pub fn injected_snapshot() -> Vec<(&'static str, Kind, u64)> {
        Vec::new()
    }
}

#[cfg(not(feature = "enabled"))]
pub use disarmed::{
    active, clear, force, injected, injected_snapshot, injected_total, install, point,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// The global plan is shared state; serialize the tests that touch it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_points_draw_nothing() {
        let _guard = LOCK.lock().unwrap();
        clear();
        assert!(!active());
        assert!(point("t.site", &[Kind::Panic]).is_none());
        assert_eq!(injected("t.site", Kind::Panic), 0);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_kind_filtered() {
        let _guard = LOCK.lock().unwrap();
        let run = |allowed: &[Kind]| -> Vec<Option<Kind>> {
            install(42);
            let draws = (0..256).map(|_| point("t.sched", allowed).map(|f| f.kind())).collect();
            clear();
            draws
        };
        let all = [Kind::Panic, Kind::Delay, Kind::ShortRead, Kind::AllocPressure, Kind::Transient];
        let a = run(&all);
        let b = run(&all);
        assert_eq!(a, b, "same seed, same schedule");
        let fired = a.iter().flatten().count();
        assert!(fired > 10 && fired < 128, "plausible fire rate, got {fired}/256");
        // Filtering to one kind never converts a draw into another kind.
        let only_delay = run(&[Kind::Delay]);
        for (full, filtered) in a.iter().zip(&only_delay) {
            match filtered {
                Some(k) => assert_eq!((*full, *k), (Some(Kind::Delay), Kind::Delay)),
                None => assert_ne!(*full, Some(Kind::Delay)),
            }
        }
    }

    #[test]
    fn forced_faults_fire_first_and_are_counted() {
        let _guard = LOCK.lock().unwrap();
        install(1);
        force("t.forced", Kind::Panic, 2);
        for _ in 0..2 {
            let f = point("t.forced", &[Kind::Panic]).expect("forced fault fires");
            assert_eq!(f.kind(), Kind::Panic);
        }
        assert_eq!(injected("t.forced", Kind::Panic), 2);
        assert!(injected_total() >= 2);
        let rows = injected_snapshot();
        assert!(rows.iter().any(|&(s, k, n)| s == "t.forced" && k == Kind::Panic && n == 2));
        clear();
    }

    #[test]
    fn forced_only_plan_disarms_the_seeded_schedule() {
        let _guard = LOCK.lock().unwrap();
        clear();
        force("t.only", Kind::Delay, 1);
        // No install(): the seeded schedule must stay silent everywhere.
        for _ in 0..64 {
            assert!(point("t.other", &[Kind::Panic, Kind::Delay]).is_none());
        }
        assert_eq!(point("t.only", &[Kind::Delay]).map(|f| f.kind()), Some(Kind::Delay));
        assert!(point("t.only", &[Kind::Delay]).is_none(), "script exhausted");
        clear();
    }

    #[test]
    fn active_faults_apply_and_panic_fault_panics() {
        let _guard = LOCK.lock().unwrap();
        let delay = Fault { site: "t", kind: Kind::Delay, magnitude: 0 };
        delay.fire(); // sleeps briefly, must not panic
        let alloc = Fault { site: "t", kind: Kind::AllocPressure, magnitude: 7 };
        alloc.fire();
        let passive = Fault { site: "t", kind: Kind::ShortRead, magnitude: 0 };
        passive.fire(); // no-op
        let boom = Fault { site: "t", kind: Kind::Panic, magnitude: 0 };
        let caught = std::panic::catch_unwind(move || boom.fire());
        assert!(caught.is_err(), "panic fault panics");
    }
}
