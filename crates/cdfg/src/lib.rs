//! Control/data flow graph IR for the estimation tool chain.
//!
//! The paper's flow (Fig. 2/3) parses each application C process into a
//! CDFG; every basic block's DFG is then scheduled onto the processing unit
//! model. This crate provides that IR:
//!
//! - [`ir`] — the module/function/block/operation data structures,
//! - [`lower`] — lowering from the `tlm-minic` AST,
//! - [`dfg`] — per-basic-block data-dependence edges (the DFG of Alg. 1),
//! - [`analysis`] — CFG utilities, dominators, natural loops, op census,
//! - [`passes`] — constant folding and dead-op elimination,
//! - [`interp`] — a resumable interpreter used as the functional execution
//!   engine of both the functional and the timed TLM,
//! - [`profile`] — block-frequency profiling on top of the interpreter,
//! - [`print`](mod@print) — human-readable IR dumps.
//!
//! # Example
//!
//! ```
//! use tlm_cdfg::interp::{Exec, Machine, NoopHook};
//!
//! let program = tlm_minic::parse(
//!     "int twice(int x) { return x + x; } void main() { out(twice(21)); }",
//! )?;
//! let module = tlm_cdfg::lower::lower(&program)?;
//! let main = module.function_id("main").expect("main exists");
//! let mut machine = Machine::new(&module, main, &[]);
//! assert_eq!(machine.run(&mut NoopHook), Exec::Done);
//! assert_eq!(machine.outputs(), [42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dfg;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod print;
pub mod profile;

pub use ir::{ArrayId, BlockId, ChanId, FuncId, Module, OpClass, OpId, VReg};
