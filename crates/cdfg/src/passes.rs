//! IR clean-up passes: constant folding and dead-op elimination.
//!
//! The paper annotates the CDFG that LLVM produces, i.e. code that has been
//! through a compiler's scalar optimizations. Running these passes before
//! estimation makes the op mix of each basic block resemble compiled code
//! instead of a naive AST walk, which matters for cycle counts.

use std::collections::{HashMap, HashSet};

use tlm_minic::ast::eval_binop;

use crate::ir::{Module, Op, OpKind, Terminator, UnOp, VReg};

/// Statistics returned by [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Ops replaced by constants.
    pub folded: usize,
    /// Ops removed as dead.
    pub removed: usize,
    /// Operand uses rewired by copy propagation.
    pub propagated: usize,
    /// Terminator targets threaded through empty blocks.
    pub threaded: usize,
}

/// Runs constant folding, copy propagation, dead-op elimination and jump
/// threading to a fixpoint.
pub fn optimize(module: &mut Module) -> PassStats {
    let mut total = PassStats::default();
    loop {
        let folded = const_fold(module);
        let propagated = copy_propagate(module);
        let removed = eliminate_dead_ops(module);
        let threaded = thread_jumps(module);
        total.folded += folded;
        total.removed += removed;
        total.propagated += propagated;
        total.threaded += threaded;
        if folded == 0 && removed == 0 && propagated == 0 && threaded == 0 {
            return total;
        }
    }
}

/// Rewrites uses of `Copy` results to read the source register directly,
/// within basic blocks. A mapping `dst -> src` is invalidated when either
/// register is redefined (the IR is not SSA). Terminator operands are
/// rewritten too.
///
/// Returns the number of operand uses rewired.
pub fn copy_propagate(module: &mut Module) -> usize {
    let mut rewired = 0;
    for func in &mut module.functions {
        for block in &mut func.blocks {
            let mut alias: HashMap<VReg, VReg> = HashMap::new();
            for op in &mut block.ops {
                for arg in &mut op.args {
                    if let Some(&src) = alias.get(arg) {
                        *arg = src;
                        rewired += 1;
                    }
                }
                if let Some(result) = op.result {
                    // Any mapping involving the redefined register dies.
                    alias.remove(&result);
                    alias.retain(|_, &mut src| src != result);
                    if let (OpKind::Copy, [src]) = (&op.kind, op.args.as_slice()) {
                        if *src != result {
                            alias.insert(result, *src);
                        }
                    }
                }
            }
            match &mut block.term {
                Terminator::Branch { cond, .. } => {
                    if let Some(&src) = alias.get(cond) {
                        *cond = src;
                        rewired += 1;
                    }
                }
                Terminator::Return(Some(v)) => {
                    if let Some(&src) = alias.get(v) {
                        *v = src;
                        rewired += 1;
                    }
                }
                _ => {}
            }
        }
    }
    rewired
}

/// Threads control transfers through empty jump-only blocks and collapses
/// two-way branches whose arms coincide. Dead blocks are left in place
/// (block ids are stable identifiers for annotations); they simply become
/// unreachable.
///
/// Returns the number of rewrites performed.
pub fn thread_jumps(module: &mut Module) -> usize {
    let mut rewritten = 0;
    for func in &mut module.functions {
        // Final destination of each block if it is an empty forwarding
        // block; chains are followed with a visit guard against cycles.
        let resolve = |start: crate::ir::BlockId, blocks: &[crate::ir::BlockData]| {
            let mut cur = start;
            for _ in 0..blocks.len() {
                let b = &blocks[cur.0 as usize];
                match (&b.term, b.ops.is_empty()) {
                    (Terminator::Jump(next), true) if *next != cur => cur = *next,
                    _ => return cur,
                }
            }
            cur
        };
        for i in 0..func.blocks.len() {
            let mut term = func.blocks[i].term.clone();
            let mut changed = false;
            match &mut term {
                Terminator::Jump(target) => {
                    let dest = resolve(*target, &func.blocks);
                    if dest != *target {
                        *target = dest;
                        changed = true;
                    }
                }
                Terminator::Branch { then_bb, else_bb, .. } => {
                    let dt = resolve(*then_bb, &func.blocks);
                    let de = resolve(*else_bb, &func.blocks);
                    if dt != *then_bb || de != *else_bb {
                        *then_bb = dt;
                        *else_bb = de;
                        changed = true;
                    }
                    if dt == de {
                        // Both arms agree: the branch is a jump (the dead
                        // condition op gets cleaned up by DCE).
                        term = Terminator::Jump(dt);
                        changed = true;
                    }
                }
                Terminator::Return(_) => {}
            }
            if changed {
                func.blocks[i].term = term;
                rewritten += 1;
            }
        }
    }
    rewritten
}

/// Folds unary/binary ops whose inputs are block-local constants and
/// forwards copies of constants. Works within basic blocks only (the IR is
/// not SSA, so cross-block folding would need dataflow we don't need here).
///
/// Returns the number of ops rewritten.
pub fn const_fold(module: &mut Module) -> usize {
    let mut rewritten = 0;
    for func in &mut module.functions {
        for block in &mut func.blocks {
            // Track registers holding known constants within this block.
            let mut known: HashMap<VReg, i64> = HashMap::new();
            for op in &mut block.ops {
                let new_kind = match (&op.kind, op.args.as_slice()) {
                    (OpKind::Un(un), [a]) => known.get(a).map(|&v| {
                        OpKind::Const(match un {
                            UnOp::Neg => tlm_minic::ast::wrap_i32(v.wrapping_neg()),
                            UnOp::Not => i64::from(v == 0),
                            UnOp::BitNot => tlm_minic::ast::wrap_i32(!v),
                        })
                    }),
                    (OpKind::Bin(bin), [a, b]) => {
                        match (known.get(a), known.get(b)) {
                            (Some(&l), Some(&r)) => {
                                // Division by a constant zero stays as an op
                                // (it traps at run time).
                                eval_binop(*bin, l, r).map(OpKind::Const)
                            }
                            _ => None,
                        }
                    }
                    (OpKind::Copy, [a]) => known.get(a).map(|&v| OpKind::Const(v)),
                    _ => None,
                };
                if let Some(kind) = new_kind {
                    op.kind = kind;
                    op.args.clear();
                    rewritten += 1;
                }
                match (&op.kind, op.result) {
                    (OpKind::Const(v), Some(r)) => {
                        known.insert(r, *v);
                    }
                    (_, Some(r)) => {
                        known.remove(&r);
                    }
                    _ => {}
                }
            }
        }
    }
    rewritten
}

/// Removes side-effect-free ops whose results are never read.
///
/// Liveness is conservative and function-global: a register is "used" if any
/// op argument, branch condition or return value anywhere in the function
/// reads it. Because the IR is not SSA this can keep some dead ops alive,
/// but never removes a live one.
///
/// Returns the number of ops removed.
pub fn eliminate_dead_ops(module: &mut Module) -> usize {
    let mut removed = 0;
    for func in &mut module.functions {
        let mut used: HashSet<VReg> = HashSet::new();
        for block in &func.blocks {
            for op in &block.ops {
                used.extend(op.args.iter().copied());
            }
            match &block.term {
                Terminator::Branch { cond, .. } => {
                    used.insert(*cond);
                }
                Terminator::Return(Some(v)) => {
                    used.insert(*v);
                }
                _ => {}
            }
        }
        for block in &mut func.blocks {
            let before = block.ops.len();
            block.ops.retain(|op: &Op| {
                op.has_side_effect()
                    || op.is_block_terminal()
                    || op.result.is_none_or(|r| used.contains(&r))
            });
            removed += before - block.ops.len();
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpClass;
    use crate::lower::lower;

    fn module(src: &str) -> Module {
        lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    fn count_class(m: &Module, class: OpClass) -> usize {
        m.op_census().get(&class).copied().unwrap_or(0)
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = module("int f() { return 2 * 3 + 4; }");
        let stats = optimize(&mut m);
        assert!(stats.folded >= 2);
        assert_eq!(count_class(&m, OpClass::Mul), 0);
        assert_eq!(count_class(&m, OpClass::Alu), 0);
        m.validate().expect("still valid");
    }

    #[test]
    fn removes_dead_computation() {
        let mut m = module("int f(int a) { int unused = a * a * a; return a; }");
        let stats = optimize(&mut m);
        assert!(stats.removed >= 2);
        assert_eq!(count_class(&m, OpClass::Mul), 0);
        m.validate().expect("still valid");
    }

    #[test]
    fn keeps_side_effects() {
        let mut m = module("void f() { out(1 + 2); }");
        optimize(&mut m);
        assert_eq!(count_class(&m, OpClass::Control), 1, "out survives");
        m.validate().expect("still valid");
    }

    #[test]
    fn keeps_division_by_constant_zero() {
        let mut m = module("int f(int a) { return a + 1 / 0; }");
        let before = count_class(&m, OpClass::Div);
        optimize(&mut m);
        assert_eq!(count_class(&m, OpClass::Div), before, "trapping op not folded");
    }

    #[test]
    fn fold_then_dce_cascades() {
        // After folding `2*3`, the const-producing ops feeding it are dead.
        let mut m = module("int f(int a) { return a + 2 * 3; }");
        let stats = optimize(&mut m);
        assert!(stats.folded >= 1);
        assert!(stats.removed >= 1);
        let f = &m.functions[0];
        // Remaining: const 6, add, and the return path.
        assert!(f.op_count() <= 2, "got {:?}", f.blocks);
    }

    #[test]
    fn copy_chains_collapse() {
        // x = a; y = x; z = y; return z  →  return a (after DCE).
        let mut m = module("int f(int a) { int x = a; int y = x; int z = y; return z; }");
        let stats = optimize(&mut m);
        assert!(stats.propagated >= 2, "{stats:?}");
        assert!(stats.removed >= 2, "{stats:?}");
        let f = &m.functions[0];
        assert!(f.op_count() <= 1, "{:?}", f.blocks);
        m.validate().expect("still valid");
    }

    #[test]
    fn copy_propagation_respects_redefinition() {
        use crate::interp::{Exec, Machine, NoopHook};
        // After `a` is redefined, earlier copies of it must not leak through.
        let src = "int f(int a) { int x = a; a = a + 100; return x + a; }
                   void main() { out(f(5)); }";
        let mut m = module(src);
        optimize(&mut m);
        let main = m.function_id("main").expect("main");
        let mut machine = Machine::new(&m, main, &[]);
        assert_eq!(machine.run(&mut NoopHook), Exec::Done);
        assert_eq!(machine.outputs(), [110]);
    }

    #[test]
    fn jump_threading_skips_empty_blocks() {
        // A call as the last statement of a loop body leaves an empty
        // forwarding block behind (calls are block-terminal); threading
        // retargets the control transfer straight to the step block.
        let mut m = module(
            "void tick() { }
             void main() { for (int i = 0; i < 3; i++) { tick(); } }",
        );
        let main = m.function_id("main").expect("main");
        let has_empty_forwarder = |m: &Module| {
            m.function(main)
                .blocks
                .iter()
                .any(|b| b.ops.is_empty() && matches!(b.term, Terminator::Jump(_)))
        };
        assert!(has_empty_forwarder(&m), "lowering produced a forwarder");
        let stats = optimize(&mut m);
        assert!(stats.threaded > 0, "{stats:?}");
        m.validate().expect("still valid");
    }

    #[test]
    fn branch_with_equal_arms_becomes_jump() {
        use crate::ir::{BlockData, BlockId, FunctionData, VReg};
        // Hand-build: bb0 branches to bb1 on both arms.
        let mut m = Module {
            functions: vec![FunctionData {
                name: "f".into(),
                params: vec![VReg(0)],
                num_vregs: 1,
                blocks: vec![
                    BlockData {
                        ops: vec![],
                        term: Terminator::Branch {
                            cond: VReg(0),
                            then_bb: BlockId(1),
                            else_bb: BlockId(1),
                        },
                    },
                    BlockData { ops: vec![], term: Terminator::Return(None) },
                ],
                returns_value: false,
                local_arrays: vec![],
            }],
            arrays: vec![],
        };
        let threaded = thread_jumps(&mut m);
        assert_eq!(threaded, 1);
        assert!(matches!(m.functions[0].blocks[0].term, Terminator::Jump(BlockId(1))));
    }

    #[test]
    fn execution_result_is_preserved() {
        use crate::interp::{Exec, Machine, NoopHook};
        let src = "int f(int a) { int t = (10 - 4) * a; return t + 7 % 3; }
                   void main() { out(f(5)); }";
        let mut plain = module(src);
        let mut opt = module(src);
        optimize(&mut opt);
        let run = |m: &Module| {
            let main = m.function_id("main").expect("main");
            let mut machine = Machine::new(m, main, &[]);
            assert_eq!(machine.run(&mut NoopHook), Exec::Done);
            machine.outputs().to_vec()
        };
        assert_eq!(run(&mut plain), run(&mut opt));
    }
}
