//! Per-basic-block data flow graphs.
//!
//! Algorithm 1 of the paper schedules "the DFG of the basic block" onto the
//! PE pipeline. This module computes that DFG: for every operation in a
//! block, the indices of earlier operations in the *same* block it depends
//! on. Values defined in other blocks are live-in and considered available
//! at block entry, exactly as the paper's optimistic scheduler assumes.
//!
//! Edge kinds:
//!
//! - **data**: op reads a register last written by an earlier op;
//! - **memory**: conservative array-granular ordering — a load depends on
//!   the previous store to the same array; a store depends on the previous
//!   store *and* all loads of the same array since that store;
//! - **effect**: side-effecting ops (`out`, channel ops, calls) are kept in
//!   program order relative to each other.

use std::collections::HashMap;

use crate::ir::{ArrayId, BlockData, OpClass, OpKind, VReg};

/// The dependence graph of one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    /// `preds[i]` lists the in-block op indices op `i` depends on
    /// (deduplicated, ascending).
    pub preds: Vec<Vec<usize>>,
}

impl Dfg {
    /// Number of operations in the block.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the block has no operations.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// `succs[i]`: ops that depend on op `i` (derived view).
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succs = vec![Vec::new(); self.preds.len()];
        for (i, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                succs[p].push(i);
            }
        }
        succs
    }

    /// Length (in ops) of the longest dependence chain; 0 for empty blocks.
    ///
    /// This is the lower bound on schedule length for an infinitely wide
    /// machine with unit-latency ops; used by list-scheduling priorities.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.preds.len()];
        for i in 0..self.preds.len() {
            // preds are always earlier ops, so one forward pass suffices.
            depth[i] = self.preds[i].iter().map(|&p| depth[p] + 1).max().unwrap_or(1);
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Height of each op: the longest chain from this op to any sink,
    /// counting the op itself. Standard list-scheduling priority.
    pub fn heights(&self) -> Vec<usize> {
        let succs = self.successors();
        let mut height = vec![1usize; self.preds.len()];
        for i in (0..self.preds.len()).rev() {
            // succs are always later ops, so one backward pass suffices.
            let best = succs[i].iter().map(|&s| height[s] + 1).max().unwrap_or(1);
            height[i] = best;
        }
        height
    }

    /// Asserts the graph is acyclic-by-construction: every predecessor index
    /// is smaller than the op depending on it. Returns `true` when intact.
    pub fn is_topologically_ordered(&self) -> bool {
        self.preds.iter().enumerate().all(|(i, preds)| preds.iter().all(|&p| p < i))
    }
}

/// Computes the [`Dfg`] of a block.
pub fn block_dfg(block: &BlockData) -> Dfg {
    let mut preds: Vec<Vec<usize>> = Vec::with_capacity(block.ops.len());
    let mut last_def: HashMap<VReg, usize> = HashMap::new();
    let mut last_store: HashMap<ArrayId, usize> = HashMap::new();
    let mut loads_since_store: HashMap<ArrayId, Vec<usize>> = HashMap::new();
    let mut last_effect: Option<usize> = None;

    for (i, op) in block.ops.iter().enumerate() {
        let mut deps = Vec::new();
        for arg in &op.args {
            if let Some(&def) = last_def.get(arg) {
                deps.push(def);
            }
        }
        match &op.kind {
            OpKind::Load { array } => {
                if let Some(&st) = last_store.get(array) {
                    deps.push(st);
                }
                loads_since_store.entry(*array).or_default().push(i);
            }
            OpKind::Store { array } => {
                if let Some(&st) = last_store.get(array) {
                    deps.push(st);
                }
                if let Some(loads) = loads_since_store.get(array) {
                    deps.extend(loads.iter().copied());
                }
                last_store.insert(*array, i);
                loads_since_store.insert(*array, Vec::new());
            }
            OpKind::Call { .. }
            | OpKind::ChanRecv { .. }
            | OpKind::ChanSend { .. }
            | OpKind::Output => {
                if let Some(e) = last_effect {
                    deps.push(e);
                }
                last_effect = Some(i);
            }
            _ => {}
        }
        if let Some(result) = op.result {
            last_def.insert(result, i);
        }
        deps.sort_unstable();
        deps.dedup();
        preds.push(deps);
    }
    Dfg { preds }
}

fn class_tag(class: OpClass) -> u8 {
    match class {
        OpClass::Alu => 0,
        OpClass::Mul => 1,
        OpClass::Div => 2,
        OpClass::Shift => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::Move => 6,
        OpClass::Control => 7,
    }
}

/// Canonical byte encoding of everything the optimistic scheduler
/// (Algorithm 1 of the paper) reads from a basic block: the op-class
/// sequence and the dependence edges. Two blocks with equal keys schedule
/// identically on any PUM, regardless of operand values, array identities
/// or the terminator — none of which Algorithm 1 inspects.
///
/// The encoding is self-delimiting (`u32` little-endian counts), so it is
/// collision-free by construction and safe to use directly as a
/// content-addressed cache key.
pub fn schedule_key(block: &BlockData, dfg: &Dfg) -> Vec<u8> {
    assert_eq!(block.ops.len(), dfg.preds.len(), "DFG belongs to another block");
    let n_edges: usize = dfg.preds.iter().map(Vec::len).sum();
    let mut key = Vec::with_capacity(4 + block.ops.len() * 5 + n_edges * 4);
    key.extend_from_slice(&(block.ops.len() as u32).to_le_bytes());
    for (op, preds) in block.ops.iter().zip(&dfg.preds) {
        key.push(class_tag(op.class()));
        key.extend_from_slice(&(preds.len() as u32).to_le_bytes());
        for &p in preds {
            key.extend_from_slice(&(p as u32).to_le_bytes());
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, Terminator};
    use tlm_minic::ast::BinOp;

    fn op(kind: OpKind, args: Vec<u32>, result: Option<u32>) -> Op {
        Op { kind, args: args.into_iter().map(VReg).collect(), result: result.map(VReg) }
    }

    fn block(ops: Vec<Op>) -> BlockData {
        BlockData { ops, term: Terminator::Return(None) }
    }

    #[test]
    fn data_dependence_through_registers() {
        // v0 = 1; v1 = 2; v2 = v0 + v1; v3 = v2 * v2
        let b = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Const(2), vec![], Some(1)),
            op(OpKind::Bin(BinOp::Add), vec![0, 1], Some(2)),
            op(OpKind::Bin(BinOp::Mul), vec![2, 2], Some(3)),
        ]);
        let dfg = block_dfg(&b);
        assert_eq!(dfg.preds, vec![vec![], vec![], vec![0, 1], vec![2]]);
        assert_eq!(dfg.critical_path_len(), 3);
        assert!(dfg.is_topologically_ordered());
    }

    #[test]
    fn live_in_values_have_no_deps() {
        // v5 comes from another block: v0 = v5 + v5
        let b = block(vec![op(OpKind::Bin(BinOp::Add), vec![5, 5], Some(0))]);
        let dfg = block_dfg(&b);
        assert_eq!(dfg.preds, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn redefinition_uses_latest_writer() {
        // v0 = 1; v0 = 2; v1 = v0 → depends on the second const only.
        let b = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Const(2), vec![], Some(0)),
            op(OpKind::Copy, vec![0], Some(1)),
        ]);
        let dfg = block_dfg(&b);
        assert_eq!(dfg.preds[2], vec![1]);
    }

    #[test]
    fn store_load_ordering_same_array() {
        let a = ArrayId(0);
        // store a[v0]=v1 ; load v2=a[v0] ; store a[v0]=v2
        let b = block(vec![
            op(OpKind::Const(0), vec![], Some(0)),
            op(OpKind::Const(9), vec![], Some(1)),
            op(OpKind::Store { array: a }, vec![0, 1], None),
            op(OpKind::Load { array: a }, vec![0], Some(2)),
            op(OpKind::Store { array: a }, vec![0, 2], None),
        ]);
        let dfg = block_dfg(&b);
        assert!(dfg.preds[3].contains(&2), "load depends on store");
        assert!(dfg.preds[4].contains(&2), "store depends on previous store");
        assert!(dfg.preds[4].contains(&3), "store depends on intervening load");
    }

    #[test]
    fn different_arrays_do_not_alias() {
        let b = block(vec![
            op(OpKind::Const(0), vec![], Some(0)),
            op(OpKind::Store { array: ArrayId(0) }, vec![0, 0], None),
            op(OpKind::Load { array: ArrayId(1) }, vec![0], Some(1)),
        ]);
        let dfg = block_dfg(&b);
        assert_eq!(dfg.preds[2], vec![0], "only the index dependence remains");
    }

    #[test]
    fn effects_stay_in_program_order() {
        let b = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Output, vec![0], None),
            op(OpKind::Output, vec![0], None),
        ]);
        let dfg = block_dfg(&b);
        assert!(dfg.preds[2].contains(&1), "second out after first");
    }

    #[test]
    fn heights_are_list_scheduling_priorities() {
        let b = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Add), vec![0, 0], Some(1)),
            op(OpKind::Bin(BinOp::Add), vec![1, 1], Some(2)),
            op(OpKind::Const(5), vec![], Some(3)),
        ]);
        let dfg = block_dfg(&b);
        assert_eq!(dfg.heights(), vec![3, 2, 1, 1]);
    }

    #[test]
    fn empty_block() {
        let dfg = block_dfg(&block(vec![]));
        assert!(dfg.is_empty());
        assert_eq!(dfg.critical_path_len(), 0);
    }

    #[test]
    fn schedule_key_ignores_operand_values_but_not_classes_or_deps() {
        let base = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Add), vec![0, 0], Some(1)),
        ]);
        // Different constant, same structure: same key.
        let same_shape = block(vec![
            op(OpKind::Const(99), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Sub), vec![0, 0], Some(1)),
        ]);
        // Mul instead of Add: different op class, different key.
        let other_class = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Mul), vec![0, 0], Some(1)),
        ]);
        // Add of live-ins: same classes, no dependence edge, different key.
        let other_deps = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Add), vec![7, 7], Some(1)),
        ]);
        let key = |b: &BlockData| schedule_key(b, &block_dfg(b));
        assert_eq!(key(&base), key(&same_shape));
        assert_ne!(key(&base), key(&other_class));
        assert_ne!(key(&base), key(&other_deps));
    }

    #[test]
    fn schedule_key_is_self_delimiting() {
        // One op with one pred vs two ops must not collide even though both
        // encodings have similar byte counts.
        let a = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Add), vec![0, 0], Some(1)),
            op(OpKind::Bin(BinOp::Add), vec![1, 1], Some(2)),
        ]);
        let b = block(vec![
            op(OpKind::Const(1), vec![], Some(0)),
            op(OpKind::Bin(BinOp::Add), vec![0, 0], Some(1)),
        ]);
        assert_ne!(schedule_key(&a, &block_dfg(&a)), schedule_key(&b, &block_dfg(&b)));
    }
}
