//! A resumable CDFG interpreter.
//!
//! This is the functional execution engine of both the functional and the
//! timed TLM. A [`Machine`] runs one application process; when the process
//! reaches a channel operation the machine suspends and returns control to
//! the caller ([`Exec::RecvPending`] / [`Exec::SendPending`]), which makes it
//! trivially embeddable as a `tlm-desim` process: the process object *is*
//! the machine state, no coroutines required.
//!
//! Execution hooks observe block entries, branches and memory accesses, so
//! the timed TLM can accumulate annotated basic-block delays and profilers
//! can gather statistics without touching the interpreter core.

use std::fmt;
use std::sync::Arc;

use tlm_minic::ast::{eval_binop, wrap_i32, BinOp, UnOp};

use crate::ir::{
    ArrayScope, BlockId, ChanId, FuncId, MemoryLayout, Module, OpKind, Terminator, VReg,
    GLOBALS_BASE, STACK_BASE, WORD_BYTES,
};

/// Maximum call depth before the machine traps.
const MAX_FRAMES: usize = 4096;

/// Observer of machine execution.
///
/// All methods have empty defaults; implement only what you need.
pub trait ExecHook {
    /// Called every time control enters a basic block.
    fn on_block(&mut self, _func: FuncId, _block: BlockId) {}
    /// Called on every data-memory access with the absolute byte address.
    fn on_mem(&mut self, _addr: u32, _is_store: bool) {}
    /// Called when a conditional branch resolves.
    fn on_branch(&mut self, _func: FuncId, _block: BlockId, _taken: bool) {}
}

/// An [`ExecHook`] that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl ExecHook for NoopHook {}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exec {
    /// The entry function returned; the machine is finished.
    Done,
    /// The machine is blocked on `ch_recv` of this channel. Deliver a value
    /// with [`Machine::complete_recv`], then call `run` again.
    RecvPending(ChanId),
    /// The machine wants to send the value on this channel. Consume it,
    /// call [`Machine::complete_send`], then `run` again.
    SendPending(ChanId, i64),
    /// A runtime error; the machine is dead.
    Trap(Trap),
    /// The fuel budget of [`Machine::run_fuel`] ran out mid-execution;
    /// calling `run` again continues.
    OutOfFuel,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array access out of bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Call depth exceeded the interpreter's limit (4096 frames).
    StackOverflow,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::OutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` of length {len}")
            }
            Trap::StackOverflow => write!(f, "call stack overflow"),
        }
    }
}

/// Execution counters, useful for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Operations executed.
    pub ops: u64,
    /// Basic blocks entered.
    pub blocks: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub branches_taken: u64,
    /// Data memory accesses.
    pub mem_accesses: u64,
    /// Function calls made.
    pub calls: u64,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    op_idx: usize,
    vregs: Vec<i64>,
    /// Storage for this activation's local arrays, laid out per
    /// [`MemoryLayout`].
    locals: Vec<i64>,
    /// Absolute byte address of this frame's local-array area.
    frame_base: u32,
    /// Where to store the callee's return value in *this* frame.
    pending_result: Option<VReg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    AwaitRecv(ChanId),
    AwaitSend(ChanId),
    Finished,
    Trapped,
}

/// A resumable interpreter over one [`Module`].
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct Machine {
    module: Arc<Module>,
    layout: MemoryLayout,
    globals: Vec<i64>,
    frames: Vec<Frame>,
    state: State,
    outputs: Vec<i64>,
    stats: ExecStats,
    return_value: Option<i64>,
    /// True until the entry block's `on_block` hook has fired.
    entry_pending: bool,
}

impl Machine {
    /// Creates a machine poised at the entry of `entry` with `args` bound to
    /// its parameters. The module is snapshotted (cheaply cloned) so the
    /// machine is self-contained; use [`Machine::from_arc`] to share one
    /// module between many machines.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the entry function's parameter count.
    pub fn new(module: &Module, entry: FuncId, args: &[i64]) -> Machine {
        Machine::from_arc(Arc::new(module.clone()), entry, args)
    }

    /// Creates a machine sharing an existing module.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the entry function's parameter count.
    pub fn from_arc(module: Arc<Module>, entry: FuncId, args: &[i64]) -> Machine {
        let layout = MemoryLayout::of(&module);
        let globals_words = ((layout.globals_end - GLOBALS_BASE) / WORD_BYTES) as usize;
        let mut globals = vec![0i64; globals_words];
        for (i, a) in module.arrays.iter().enumerate() {
            if a.scope == ArrayScope::Global {
                let base = ((layout.array_base[i] - GLOBALS_BASE) / WORD_BYTES) as usize;
                for (j, &v) in a.init.iter().enumerate() {
                    globals[base + j] = wrap_i32(v);
                }
            }
        }
        let mut machine = Machine {
            module,
            layout,
            globals,
            frames: Vec::new(),
            state: State::Running,
            outputs: Vec::new(),
            stats: ExecStats::default(),
            return_value: None,
            entry_pending: true,
        };
        machine.push_frame(entry, args);
        machine
    }

    /// The observable output stream produced so far by `out()`.
    pub fn outputs(&self) -> &[i64] {
        &self.outputs
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The entry function's return value once [`Exec::Done`] was reached.
    pub fn return_value(&self) -> Option<i64> {
        self.return_value
    }

    /// Whether the machine has finished successfully.
    pub fn is_finished(&self) -> bool {
        self.state == State::Finished
    }

    /// The module this machine executes.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Delivers the value a pending `ch_recv` was waiting for.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in the [`Exec::RecvPending`] state.
    pub fn complete_recv(&mut self, value: i64) {
        let State::AwaitRecv(_) = self.state else {
            panic!("complete_recv called but machine is not awaiting a receive");
        };
        let frame = self.frames.last_mut().expect("awaiting machine has a frame");
        let func = &self.module.functions[frame.func.0 as usize];
        let op = &func.blocks[frame.block.0 as usize].ops[frame.op_idx];
        if let Some(result) = op.result {
            frame.vregs[result.0 as usize] = wrap_i32(value);
        }
        frame.op_idx += 1;
        self.stats.ops += 1;
        self.state = State::Running;
    }

    /// Acknowledges that the value of a pending `ch_send` was consumed.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in the [`Exec::SendPending`] state.
    pub fn complete_send(&mut self) {
        let State::AwaitSend(_) = self.state else {
            panic!("complete_send called but machine is not awaiting a send");
        };
        let frame = self.frames.last_mut().expect("awaiting machine has a frame");
        frame.op_idx += 1;
        self.stats.ops += 1;
        self.state = State::Running;
    }

    /// Runs until completion, suspension or trap.
    pub fn run(&mut self, hook: &mut impl ExecHook) -> Exec {
        self.run_fuel(hook, u64::MAX)
    }

    /// Runs, executing at most `fuel` operations.
    pub fn run_fuel(&mut self, hook: &mut impl ExecHook, mut fuel: u64) -> Exec {
        match self.state {
            State::Running => {}
            State::AwaitRecv(ch) => return Exec::RecvPending(ch),
            State::AwaitSend(ch) => {
                // Re-deliver the pending value.
                let frame = self.frames.last().expect("awaiting machine has a frame");
                let func = &self.module.functions[frame.func.0 as usize];
                let op = &func.blocks[frame.block.0 as usize].ops[frame.op_idx];
                let value = frame.vregs[op.args[0].0 as usize];
                return Exec::SendPending(ch, value);
            }
            State::Finished => return Exec::Done,
            State::Trapped => panic!("running a trapped machine"),
        }
        if self.entry_pending {
            self.entry_pending = false;
            let frame = self.frames.last().expect("machine has an entry frame");
            self.stats.blocks += 1;
            hook.on_block(frame.func, frame.block);
        }
        loop {
            if fuel == 0 {
                return Exec::OutOfFuel;
            }
            let Some(frame) = self.frames.last_mut() else {
                self.state = State::Finished;
                return Exec::Done;
            };
            let func_id = frame.func;
            let func = &self.module.functions[func_id.0 as usize];
            let block = &func.blocks[frame.block.0 as usize];

            if frame.op_idx >= block.ops.len() {
                // Terminator.
                match &block.term {
                    Terminator::Jump(target) => {
                        frame.block = *target;
                        frame.op_idx = 0;
                        self.stats.blocks += 1;
                        hook.on_block(func_id, *target);
                    }
                    Terminator::Branch { cond, then_bb, else_bb } => {
                        let taken = frame.vregs[cond.0 as usize] != 0;
                        let from = frame.block;
                        let target = if taken { *then_bb } else { *else_bb };
                        frame.block = target;
                        frame.op_idx = 0;
                        self.stats.branches += 1;
                        self.stats.branches_taken += u64::from(taken);
                        self.stats.blocks += 1;
                        hook.on_branch(func_id, from, taken);
                        hook.on_block(func_id, target);
                    }
                    Terminator::Return(value) => {
                        let ret = value.map(|v| frame.vregs[v.0 as usize]);
                        let finished = self.frames.len() == 1;
                        let popped = self.frames.pop().expect("frame checked above");
                        if finished {
                            self.return_value = ret;
                            self.state = State::Finished;
                            return Exec::Done;
                        }
                        let _ = popped;
                        let caller = self.frames.last_mut().expect("caller frame exists");
                        // pending_result lives on the caller: set by the call op.
                        if let Some(dest) = caller.pending_result.take() {
                            caller.vregs[dest.0 as usize] =
                                ret.expect("callee signature guarantees a value");
                        }
                        caller.op_idx += 1;
                    }
                }
                continue;
            }

            let op = &block.ops[frame.op_idx];
            fuel -= 1;
            match &op.kind {
                OpKind::Const(v) => {
                    let dest = op.result.expect("const has a result");
                    frame.vregs[dest.0 as usize] = wrap_i32(*v);
                }
                OpKind::Copy => {
                    let dest = op.result.expect("copy has a result");
                    frame.vregs[dest.0 as usize] = frame.vregs[op.args[0].0 as usize];
                }
                OpKind::Un(un) => {
                    let a = frame.vregs[op.args[0].0 as usize];
                    let dest = op.result.expect("unary has a result");
                    frame.vregs[dest.0 as usize] = match un {
                        UnOp::Neg => wrap_i32(a.wrapping_neg()),
                        UnOp::Not => i64::from(a == 0),
                        UnOp::BitNot => wrap_i32(!a),
                    };
                }
                OpKind::Bin(bin) => {
                    let a = frame.vregs[op.args[0].0 as usize];
                    let b = frame.vregs[op.args[1].0 as usize];
                    let dest = op.result.expect("binary has a result");
                    match eval_binop(*bin, a, b) {
                        Some(v) => frame.vregs[dest.0 as usize] = v,
                        None => {
                            debug_assert!(matches!(bin, BinOp::Div | BinOp::Rem));
                            self.state = State::Trapped;
                            return Exec::Trap(Trap::DivByZero);
                        }
                    }
                }
                OpKind::Load { array } => {
                    let index = frame.vregs[op.args[0].0 as usize];
                    match self.mem_addr(*array, index) {
                        Ok((addr, slot)) => {
                            let value = match slot {
                                Slot::Global(i) => self.globals[i],
                                Slot::Local(i) => {
                                    self.frames.last().expect("frame exists").locals[i]
                                }
                            };
                            let frame = self.frames.last_mut().expect("frame exists");
                            let dest = op.result.expect("load has a result");
                            frame.vregs[dest.0 as usize] = value;
                            self.stats.mem_accesses += 1;
                            hook.on_mem(addr, false);
                        }
                        Err(trap) => {
                            self.state = State::Trapped;
                            return Exec::Trap(trap);
                        }
                    }
                }
                OpKind::Store { array } => {
                    let index = frame.vregs[op.args[0].0 as usize];
                    let value = frame.vregs[op.args[1].0 as usize];
                    match self.mem_addr(*array, index) {
                        Ok((addr, slot)) => {
                            match slot {
                                Slot::Global(i) => self.globals[i] = value,
                                Slot::Local(i) => {
                                    self.frames.last_mut().expect("frame exists").locals[i] = value
                                }
                            }
                            self.stats.mem_accesses += 1;
                            hook.on_mem(addr, true);
                        }
                        Err(trap) => {
                            self.state = State::Trapped;
                            return Exec::Trap(trap);
                        }
                    }
                }
                OpKind::Output => {
                    let value = frame.vregs[op.args[0].0 as usize];
                    self.outputs.push(value);
                }
                OpKind::ChanRecv { chan } => {
                    self.state = State::AwaitRecv(*chan);
                    return Exec::RecvPending(*chan);
                }
                OpKind::ChanSend { chan } => {
                    let value = frame.vregs[op.args[0].0 as usize];
                    self.state = State::AwaitSend(*chan);
                    return Exec::SendPending(*chan, value);
                }
                OpKind::Call { func: callee } => {
                    let callee = *callee;
                    let args: Vec<i64> =
                        op.args.iter().map(|a| frame.vregs[a.0 as usize]).collect();
                    frame.pending_result = op.result;
                    if self.frames.len() >= MAX_FRAMES {
                        self.state = State::Trapped;
                        return Exec::Trap(Trap::StackOverflow);
                    }
                    self.stats.ops += 1;
                    self.stats.calls += 1;
                    self.push_frame(callee, &args);
                    let new_frame = self.frames.last().expect("just pushed");
                    self.stats.blocks += 1;
                    hook.on_block(new_frame.func, new_frame.block);
                    continue;
                }
            }
            self.stats.ops += 1;
            let frame = self.frames.last_mut().expect("frame exists");
            frame.op_idx += 1;
        }
    }

    fn push_frame(&mut self, func_id: FuncId, args: &[i64]) {
        let func = &self.module.functions[func_id.0 as usize];
        assert_eq!(
            args.len(),
            func.params.len(),
            "call to `{}` with wrong argument count",
            func.name
        );
        let mut vregs = vec![0i64; func.num_vregs as usize];
        for (reg, &value) in func.params.iter().zip(args) {
            vregs[reg.0 as usize] = wrap_i32(value);
        }
        let frame_words = self.layout.frame_words[func_id.0 as usize] as usize;
        let mut locals = vec![0i64; frame_words];
        for &aid in &func.local_arrays {
            let base = (self.layout.array_base[aid.0 as usize] / WORD_BYTES) as usize;
            for (j, &v) in self.module.arrays[aid.0 as usize].init.iter().enumerate() {
                locals[base + j] = wrap_i32(v);
            }
        }
        // Stack grows down from STACK_BASE; each nested frame sits below its
        // caller. Only used for hook addresses, not for storage.
        let parent_base = self.frames.last().map_or(STACK_BASE, |f| f.frame_base);
        let frame_base = parent_base - (frame_words as u32) * WORD_BYTES;
        self.frames.push(Frame {
            func: func_id,
            block: func.entry(),
            op_idx: 0,
            vregs,
            locals,
            frame_base,
            pending_result: None,
        });
    }

    /// Resolves an array access to an absolute byte address and a storage
    /// slot, bounds-checked.
    fn mem_addr(&self, array: crate::ir::ArrayId, index: i64) -> Result<(u32, Slot), Trap> {
        let data = &self.module.arrays[array.0 as usize];
        if index < 0 || index as usize >= data.len {
            return Err(Trap::OutOfBounds { array: data.name.clone(), index, len: data.len });
        }
        let base = self.layout.array_base[array.0 as usize];
        match data.scope {
            ArrayScope::Global => {
                let addr = base + (index as u32) * WORD_BYTES;
                let slot = ((addr - GLOBALS_BASE) / WORD_BYTES) as usize;
                Ok((addr, Slot::Global(slot)))
            }
            ArrayScope::Local(_) => {
                let frame = self.frames.last().expect("local access has a frame");
                let addr = frame.frame_base + base + (index as u32) * WORD_BYTES;
                let slot = (base / WORD_BYTES) as usize + index as usize;
                Ok((addr, Slot::Local(slot)))
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Global(usize),
    Local(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn machine(src: &str, entry: &str, args: &[i64]) -> Machine {
        let module = lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let id = module.function_id(entry).expect("entry exists");
        Machine::new(&module, id, args)
    }

    fn run_main(src: &str) -> Vec<i64> {
        let mut m = machine(src, "main", &[]);
        assert_eq!(m.run(&mut NoopHook), Exec::Done);
        m.outputs().to_vec()
    }

    #[test]
    fn arithmetic_and_calls() {
        let outs = run_main(
            "int sq(int x) { return x * x; }
             void main() { out(sq(3) + sq(4)); }",
        );
        assert_eq!(outs, vec![25]);
    }

    #[test]
    fn loops_and_arrays() {
        let outs = run_main(
            "void main() {
                int fib[10];
                fib[0] = 0; fib[1] = 1;
                for (int i = 2; i < 10; i++) { fib[i] = fib[i-1] + fib[i-2]; }
                out(fib[9]);
             }",
        );
        assert_eq!(outs, vec![34]);
    }

    #[test]
    fn globals_persist_across_calls() {
        let outs = run_main(
            "int counter = 0;
             void tick() { counter += 1; }
             void main() { tick(); tick(); tick(); out(counter); }",
        );
        assert_eq!(outs, vec![3]);
    }

    #[test]
    fn global_array_initializers() {
        let outs = run_main(
            "int t[5] = {10, 20, 30};
             void main() { out(t[0] + t[2] + t[4]); }",
        );
        assert_eq!(outs, vec![40], "missing initializers are zero");
    }

    #[test]
    fn local_array_initializers_per_activation() {
        let outs = run_main(
            "int f() { int t[2] = {5, 6}; t[0] += 1; return t[0]; }
             void main() { out(f()); out(f()); }",
        );
        assert_eq!(outs, vec![6, 6], "fresh initializer each call");
    }

    #[test]
    fn do_while_runs_at_least_once() {
        let outs = run_main(
            "void main() {
                int n = 0;
                do { n++; } while (0);
                int m = 10;
                do { m--; } while (m > 3);
                out(n); out(m);
             }",
        );
        assert_eq!(outs, vec![1, 3]);
    }

    #[test]
    fn ternary_evaluates_only_chosen_arm() {
        let outs = run_main(
            "int g = 0;
             int bump() { g += 1; return 99; }
             void main() {
                int a = 1 ? 7 : bump();
                int b = 0 ? bump() : 8;
                out(a + b);
                out(g);
             }",
        );
        assert_eq!(outs, vec![15, 0], "bump never ran");
    }

    #[test]
    fn switch_dispatch_fallthrough_and_default() {
        let outs = run_main(
            "int classify(int x) {
                int r = 0;
                switch (x) {
                    case 1:
                    case 2: r = 10; break;
                    case 3: r = 20;        // falls through
                    case 4: r = r + 1; break;
                    default: r = -1;
                }
                return r;
            }
            void main() {
                out(classify(1)); out(classify(2)); out(classify(3));
                out(classify(4)); out(classify(99));
            }",
        );
        assert_eq!(outs, vec![10, 10, 21, 1, -1]);
    }

    #[test]
    fn switch_without_default_skips() {
        let outs = run_main(
            "void main() {
                int hits = 0;
                for (int i = 0; i < 6; i++) {
                    switch (i) { case 2: hits += 1; break; case 4: hits += 10; }
                }
                out(hits);
            }",
        );
        assert_eq!(outs, vec![11]);
    }

    #[test]
    fn continue_inside_switch_targets_the_loop() {
        let outs = run_main(
            "void main() {
                int s = 0;
                for (int i = 0; i < 6; i++) {
                    switch (i & 1) { case 1: continue; default: break; }
                    s += i;
                }
                out(s);
            }",
        );
        assert_eq!(outs, vec![6], "sum of the even values 0, 2, 4");
    }

    #[test]
    fn recursion() {
        let outs = run_main(
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
             void main() { out(fact(6)); }",
        );
        assert_eq!(outs, vec![720]);
    }

    #[test]
    fn short_circuit_evaluation_skips_rhs() {
        let outs = run_main(
            "int g = 0;
             int bump() { g += 1; return 1; }
             void main() {
                if (0 && bump()) { out(99); }
                if (1 || bump()) { out(g); }
             }",
        );
        assert_eq!(outs, vec![0], "bump never ran");
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = machine("int main(int d) { return 1 / d; }", "main", &[0]);
        assert_eq!(m.run(&mut NoopHook), Exec::Trap(Trap::DivByZero));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = machine("int t[4]; int main(int i) { return t[i]; }", "main", &[7]);
        let Exec::Trap(Trap::OutOfBounds { index, len, .. }) = m.run(&mut NoopHook) else {
            panic!("expected OOB trap");
        };
        assert_eq!((index, len), (7, 4));
    }

    #[test]
    fn infinite_recursion_overflows_cleanly() {
        let mut m = machine("int f(int n) { return f(n); } ", "f", &[1]);
        assert_eq!(m.run(&mut NoopHook), Exec::Trap(Trap::StackOverflow));
    }

    #[test]
    fn fuel_limits_execution() {
        let mut m = machine("void main() { int i = 0; while (1) { i += 1; } }", "main", &[]);
        assert_eq!(m.run_fuel(&mut NoopHook, 10_000), Exec::OutOfFuel);
        // Resumable: more fuel continues the loop.
        assert_eq!(m.run_fuel(&mut NoopHook, 10_000), Exec::OutOfFuel);
        assert!(m.stats().ops >= 20_000);
    }

    #[test]
    fn channel_suspension_round_trip() {
        let mut m = machine(
            "void main() {
                int a = ch_recv(0);
                int b = ch_recv(0);
                ch_send(1, a + b);
             }",
            "main",
            &[],
        );
        assert_eq!(m.run(&mut NoopHook), Exec::RecvPending(ChanId(0)));
        m.complete_recv(30);
        assert_eq!(m.run(&mut NoopHook), Exec::RecvPending(ChanId(0)));
        m.complete_recv(12);
        assert_eq!(m.run(&mut NoopHook), Exec::SendPending(ChanId(1), 42));
        m.complete_send();
        assert_eq!(m.run(&mut NoopHook), Exec::Done);
    }

    #[test]
    fn send_pending_is_idempotent_until_completed() {
        let mut m = machine("void main() { ch_send(2, 7); }", "main", &[]);
        assert_eq!(m.run(&mut NoopHook), Exec::SendPending(ChanId(2), 7));
        assert_eq!(m.run(&mut NoopHook), Exec::SendPending(ChanId(2), 7));
        m.complete_send();
        assert_eq!(m.run(&mut NoopHook), Exec::Done);
    }

    #[test]
    fn return_value_of_entry() {
        let mut m = machine("int main(int a) { return a * 2; }", "main", &[21]);
        assert_eq!(m.run(&mut NoopHook), Exec::Done);
        assert_eq!(m.return_value(), Some(42));
    }

    #[test]
    fn hooks_observe_execution() {
        #[derive(Default)]
        struct Counting {
            blocks: usize,
            mems: usize,
            branches: usize,
        }
        impl ExecHook for Counting {
            fn on_block(&mut self, _f: FuncId, _b: BlockId) {
                self.blocks += 1;
            }
            fn on_mem(&mut self, _a: u32, _s: bool) {
                self.mems += 1;
            }
            fn on_branch(&mut self, _f: FuncId, _b: BlockId, _t: bool) {
                self.branches += 1;
            }
        }
        let mut hook = Counting::default();
        let mut m = machine(
            "int t[4];
             void main() { for (int i = 0; i < 4; i++) { t[i] = i; } }",
            "main",
            &[],
        );
        assert_eq!(m.run(&mut hook), Exec::Done);
        assert_eq!(hook.mems, 4);
        assert_eq!(hook.branches, 5, "4 taken + 1 exit");
        assert!(hook.blocks >= 11);
        assert_eq!(u64::try_from(hook.blocks).expect("fits"), m.stats().blocks);
    }

    #[test]
    fn stats_track_branch_taken_ratio() {
        let mut m = machine("void main() { for (int i = 0; i < 10; i++) { } }", "main", &[]);
        m.run(&mut NoopHook);
        assert_eq!(m.stats().branches, 11);
        assert_eq!(m.stats().branches_taken, 10);
    }
}
