//! Block-frequency profiling: an [`ExecHook`] that counts basic-block
//! entries, the raw material for hotspot attribution and for
//! profile-weighted cycle prediction (`TimedModule::weighted_total` in
//! `tlm-core`).

use crate::interp::ExecHook;
use crate::ir::Module;
use crate::{BlockId, FuncId};

/// Per-block execution counts, shaped like the module
/// (`counts[func][block]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    counts: Vec<Vec<u64>>,
}

impl BlockProfile {
    /// An all-zero profile shaped for `module`.
    pub fn new(module: &Module) -> BlockProfile {
        BlockProfile { counts: module.functions.iter().map(|f| vec![0; f.blocks.len()]).collect() }
    }

    /// Entries recorded for one block.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range for the profiled module.
    pub fn count(&self, func: FuncId, block: BlockId) -> u64 {
        self.counts[func.0 as usize][block.0 as usize]
    }

    /// The raw per-function count matrix.
    pub fn as_matrix(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Total block entries across the whole run.
    pub fn total_entries(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Merges another profile (e.g. from a different process instance of
    /// the same module) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &BlockProfile) {
        assert_eq!(self.counts.len(), other.counts.len(), "profiles are for different modules");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            assert_eq!(a.len(), b.len(), "profiles are for different modules");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }
}

/// The collecting hook.
#[derive(Debug)]
pub struct ProfileHook<'a> {
    profile: &'a mut BlockProfile,
}

impl<'a> ProfileHook<'a> {
    /// Wraps a profile for one interpreter run.
    pub fn new(profile: &'a mut BlockProfile) -> ProfileHook<'a> {
        ProfileHook { profile }
    }
}

impl ExecHook for ProfileHook<'_> {
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        self.profile.counts[func.0 as usize][block.0 as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Exec, Machine};
    use crate::lower::lower;

    fn module(src: &str) -> Module {
        lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    #[test]
    fn loop_bodies_dominate_the_profile() {
        let m = module(
            "void main() {
                int s = 0;
                for (int i = 0; i < 100; i++) { s += i; }
                out(s);
            }",
        );
        let main = m.function_id("main").expect("main");
        let mut profile = BlockProfile::new(&m);
        let mut machine = Machine::new(&m, main, &[]);
        assert_eq!(machine.run(&mut ProfileHook::new(&mut profile)), Exec::Done);
        let max = m.functions[main.0 as usize]
            .blocks_iter()
            .map(|(bid, _)| profile.count(main, bid))
            .max()
            .expect("has blocks");
        assert!(max >= 100, "loop blocks entered per iteration, got {max}");
        assert_eq!(
            profile.total_entries(),
            machine.stats().blocks,
            "profile agrees with interpreter counters"
        );
    }

    #[test]
    fn merge_adds_counts() {
        let m = module("void main() { out(1); }");
        let main = m.function_id("main").expect("main");
        let run = || {
            let mut p = BlockProfile::new(&m);
            let mut machine = Machine::new(&m, main, &[]);
            machine.run(&mut ProfileHook::new(&mut p));
            p
        };
        let mut a = run();
        let b = run();
        let before = a.total_entries();
        a.merge(&b);
        assert_eq!(a.total_entries(), before * 2);
    }
}
