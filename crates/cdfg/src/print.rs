//! Human-readable IR dumps for debugging and golden tests.

use std::fmt::Write as _;

use crate::ir::{FunctionData, Module, Op, OpKind, Terminator};

/// Renders a whole module.
pub fn module_to_string(module: &Module) -> String {
    let mut out = String::new();
    for array in &module.arrays {
        let _ = writeln!(
            out,
            "array {} [{}] {:?} ({:?})",
            array.name, array.len, array.init, array.scope
        );
    }
    for func in &module.functions {
        out.push_str(&function_to_string(module, func));
    }
    out
}

/// Renders one function.
pub fn function_to_string(module: &Module, func: &FunctionData) -> String {
    let mut out = String::new();
    let params: Vec<String> = func.params.iter().map(|p| p.to_string()).collect();
    let _ = writeln!(
        out,
        "func {}({}) {} {{",
        func.name,
        params.join(", "),
        if func.returns_value { "-> int" } else { "-> void" }
    );
    for (bid, block) in func.blocks_iter() {
        let _ = writeln!(out, "{bid}:");
        for op in &block.ops {
            let _ = writeln!(out, "    {}", op_to_string(module, op));
        }
        let term = match &block.term {
            Terminator::Jump(b) => format!("jump {b}"),
            Terminator::Branch { cond, then_bb, else_bb } => {
                format!("branch {cond} ? {then_bb} : {else_bb}")
            }
            Terminator::Return(Some(v)) => format!("return {v}"),
            Terminator::Return(None) => "return".to_string(),
        };
        let _ = writeln!(out, "    {term}");
    }
    out.push_str("}\n");
    out
}

/// Renders one op.
pub fn op_to_string(module: &Module, op: &Op) -> String {
    let result = op.result.map(|r| format!("{r} = ")).unwrap_or_default();
    let args: Vec<String> = op.args.iter().map(|a| a.to_string()).collect();
    match &op.kind {
        OpKind::Const(v) => format!("{result}const {v}"),
        OpKind::Copy => format!("{result}copy {}", args[0]),
        OpKind::Un(u) => format!("{result}{u:?} {}", args[0]),
        OpKind::Bin(b) => format!("{result}{b:?} {}, {}", args[0], args[1]),
        OpKind::Load { array } => {
            format!("{result}load {}[{}]", module.array(*array).name, args[0])
        }
        OpKind::Store { array } => {
            format!("store {}[{}] = {}", module.array(*array).name, args[0], args[1])
        }
        OpKind::Call { func } => {
            format!("{result}call {}({})", module.function(*func).name, args.join(", "))
        }
        OpKind::ChanRecv { chan } => format!("{result}recv {chan}"),
        OpKind::ChanSend { chan } => format!("send {chan}, {}", args[0]),
        OpKind::Output => format!("out {}", args[0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    #[test]
    fn dump_is_stable_and_complete() {
        let m = lower(
            &tlm_minic::parse(
                "int g = 1;
                 int f(int a) { if (a > 0) { g += a; } return g; }
                 void main() { out(f(2)); ch_send(0, g); }",
            )
            .expect("parses"),
        )
        .expect("lowers");
        let text = module_to_string(&m);
        for needle in ["func f", "func main", "array g", "branch", "call f", "send ch0", "out "] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
