//! The CDFG data structures.
//!
//! A [`Module`] holds functions and a module-wide array table (globals and
//! per-function local arrays). Each [`FunctionData`] is a CFG of
//! [`BlockData`] basic blocks; each block is a list of [`Op`]s plus a
//! [`Terminator`]. Scalar values live in virtual registers ([`VReg`]) that
//! are mutable per activation frame (the IR is deliberately *not* SSA — the
//! paper's DFGs are per-basic-block, with block-entry values treated as
//! available, which a last-writer dependence analysis reproduces exactly;
//! see [`crate::dfg`]).
//!
//! Call-like operations ([`OpKind::Call`], [`OpKind::ChanRecv`],
//! [`OpKind::ChanSend`]) always terminate their basic block (enforced by
//! [`Module::validate`]). This keeps every DFG free of nested control
//! transfer, makes the interpreter resumable at channel boundaries, and
//! mirrors where the paper's generated code inserts `wait()` calls.

use std::collections::HashMap;
use std::fmt;

pub use tlm_minic::ast::{BinOp, UnOp};

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of an operation within its basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

/// A virtual register: a mutable scalar slot in an activation frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Index of an array (global or function-local) in the module array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// A logical transaction-level channel id, taken from the constant first
/// argument of `ch_send`/`ch_recv` in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The operation kinds of the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Materialize an integer constant into the result register.
    Const(i64),
    /// Unary arithmetic/logic; one argument.
    Un(UnOp),
    /// Binary arithmetic/logic; two arguments. Short-circuit operators never
    /// appear here (they are lowered to control flow).
    Bin(BinOp),
    /// `result = array[args[0]]`.
    Load {
        /// Array being read.
        array: ArrayId,
    },
    /// `array[args[0]] = args[1]`.
    Store {
        /// Array being written.
        array: ArrayId,
    },
    /// Call a function in the same module; block-terminal.
    Call {
        /// Callee.
        func: FuncId,
    },
    /// Receive one word from a channel; block-terminal, may suspend.
    ChanRecv {
        /// Channel read from.
        chan: ChanId,
    },
    /// Send `args[0]` to a channel; block-terminal, may suspend.
    ChanSend {
        /// Channel written to.
        chan: ChanId,
    },
    /// Emit `args[0]` to the observable output stream.
    Output,
    /// `result = args[0]`; used to merge values from control-flow arms.
    Copy,
}

/// Coarse operation classes the PUM's operation mapping table is keyed by.
///
/// The paper's mapping table associates each operation with functional-unit
/// usage; classifying IR ops this way is what makes the estimator
/// retargetable: a PUM only has to describe classes, not every IR op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Add/sub/bitwise/compare-style single-cycle ALU work.
    Alu,
    /// Multiplication.
    Mul,
    /// Division and remainder.
    Div,
    /// Shifts.
    Shift,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Constant materialization / register copy.
    Move,
    /// Control transfer out of the block (calls, channel ops, output).
    Control,
}

impl OpClass {
    /// All classes, for iteration in PUM validation and censuses.
    pub const ALL: [OpClass; 8] = [
        OpClass::Alu,
        OpClass::Mul,
        OpClass::Div,
        OpClass::Shift,
        OpClass::Load,
        OpClass::Store,
        OpClass::Move,
        OpClass::Control,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Alu => "alu",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::Shift => "shift",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Move => "move",
            OpClass::Control => "control",
        };
        f.write_str(s)
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// What the operation does.
    pub kind: OpKind,
    /// Input registers, in positional order.
    pub args: Vec<VReg>,
    /// Output register, if the op produces a value.
    pub result: Option<VReg>,
}

impl Op {
    /// The PUM operation class of this op.
    pub fn class(&self) -> OpClass {
        match &self.kind {
            OpKind::Const(_) | OpKind::Copy => OpClass::Move,
            OpKind::Un(_) => OpClass::Alu,
            OpKind::Bin(op) => match op {
                BinOp::Mul => OpClass::Mul,
                BinOp::Div | BinOp::Rem => OpClass::Div,
                BinOp::Shl | BinOp::Shr => OpClass::Shift,
                _ => OpClass::Alu,
            },
            OpKind::Load { .. } => OpClass::Load,
            OpKind::Store { .. } => OpClass::Store,
            OpKind::Call { .. }
            | OpKind::ChanRecv { .. }
            | OpKind::ChanSend { .. }
            | OpKind::Output => OpClass::Control,
        }
    }

    /// Whether the op must terminate its basic block.
    pub fn is_block_terminal(&self) -> bool {
        matches!(self.kind, OpKind::Call { .. } | OpKind::ChanRecv { .. } | OpKind::ChanSend { .. })
    }

    /// Whether the op has side effects beyond its result register.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Store { .. }
                | OpKind::Call { .. }
                | OpKind::ChanRecv { .. }
                | OpKind::ChanSend { .. }
                | OpKind::Output
        )
    }

    /// Whether the op touches data memory (for the d-cache term of Alg. 2).
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, OpKind::Load { .. } | OpKind::Store { .. })
    }
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: VReg,
        /// Successor when the condition is non-zero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Function return with optional value.
    Return(Option<VReg>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Whether this is a conditional branch (contributes to the branch
    /// penalty term of Alg. 2).
    pub fn is_conditional(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

/// One basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockData {
    /// Straight-line operations.
    pub ops: Vec<Op>,
    /// Block terminator.
    pub term: Terminator,
}

/// One function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionData {
    /// Source-level name.
    pub name: String,
    /// Parameter registers (the first `params.len()` vregs).
    pub params: Vec<VReg>,
    /// Total number of virtual registers used.
    pub num_vregs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<BlockData>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Local arrays owned by this function (indices into the module table).
    pub local_arrays: Vec<ArrayId>,
}

impl FunctionData {
    /// The entry block (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Borrow a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BlockData {
        &self.blocks[id.0 as usize]
    }

    /// Iterator over `(BlockId, &BlockData)`.
    pub fn blocks_iter(&self) -> impl Iterator<Item = (BlockId, &BlockData)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total operation count across all blocks.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

/// Where an array lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayScope {
    /// Module-level storage, shared by all functions of the process.
    Global,
    /// One instance per activation of the owning function.
    Local(FuncId),
}

/// One array (or global scalar, modelled as a length-1 array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayData {
    /// Source-level name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Initial values; shorter than `len` means zero-fill the rest.
    pub init: Vec<i64>,
    /// Global or function-local.
    pub scope: ArrayScope,
}

/// A lowered translation unit: the CDFG of one application process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub functions: Vec<FunctionData>,
    /// Arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayData>,
}

/// A structural validation failure reported by [`Module::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Description of the broken invariant.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid module: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

impl Module {
    /// Borrow a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &FunctionData {
        &self.functions[id.0 as usize]
    }

    /// Borrow an array.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayData {
        &self.arrays[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Iterator over `(FuncId, &FunctionData)`.
    pub fn functions_iter(&self) -> impl Iterator<Item = (FuncId, &FunctionData)> {
        self.functions.iter().enumerate().map(|(i, f)| (FuncId(i as u32), f))
    }

    /// All channel ids referenced by the module, sorted and deduplicated.
    pub fn channels_used(&self) -> Vec<ChanId> {
        let mut out = Vec::new();
        for f in &self.functions {
            for b in &f.blocks {
                for op in &b.ops {
                    match op.kind {
                        OpKind::ChanRecv { chan } | OpKind::ChanSend { chan } => out.push(chan),
                        _ => {}
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks the module's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: out-of-range register, block or
    /// array references; call-like ops that are not block-terminal; blocks
    /// whose terminator targets are invalid; argument-count mismatches on
    /// calls.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |m: String| Err(ValidateError { message: m });
        for (fid, f) in self.functions_iter() {
            if f.blocks.is_empty() {
                return err(format!("function `{}` has no blocks", f.name));
            }
            if f.params.len() as u32 > f.num_vregs {
                return err(format!("function `{}` has more params than vregs", f.name));
            }
            for (bid, block) in f.blocks_iter() {
                for (i, op) in block.ops.iter().enumerate() {
                    for &VReg(r) in op.args.iter().chain(op.result.iter()) {
                        if r >= f.num_vregs {
                            return err(format!(
                                "{}/{} op {} references out-of-range {}",
                                f.name,
                                bid,
                                i,
                                VReg(r)
                            ));
                        }
                    }
                    if op.is_block_terminal() && i + 1 != block.ops.len() {
                        return err(format!(
                            "{}/{} op {} is call-like but not block-terminal",
                            f.name, bid, i
                        ));
                    }
                    match &op.kind {
                        OpKind::Load { array } | OpKind::Store { array }
                            if array.0 as usize >= self.arrays.len() =>
                        {
                            return err(format!(
                                "{}/{} references unknown array {:?}",
                                f.name, bid, array
                            ));
                        }
                        OpKind::Call { func } => {
                            let Some(callee) = self.functions.get(func.0 as usize) else {
                                return err(format!(
                                    "{}/{} calls unknown function {}",
                                    f.name, bid, func
                                ));
                            };
                            if callee.params.len() != op.args.len() {
                                return err(format!(
                                    "{}/{} calls `{}` with {} args, expects {}",
                                    f.name,
                                    bid,
                                    callee.name,
                                    op.args.len(),
                                    callee.params.len()
                                ));
                            }
                            if callee.returns_value != op.result.is_some() {
                                return err(format!(
                                    "{}/{} call to `{}` disagrees about return value",
                                    f.name, bid, callee.name
                                ));
                            }
                        }
                        _ => {}
                    }
                }
                for succ in block.term.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return err(format!(
                            "{}/{} terminator targets unknown block {}",
                            f.name, bid, succ
                        ));
                    }
                }
                if let Terminator::Branch { cond: VReg(r), .. } = block.term {
                    if r >= f.num_vregs {
                        return err(format!("{}/{} branch condition out of range", f.name, bid));
                    }
                }
                if let Terminator::Return(v) = &block.term {
                    if v.is_some() != f.returns_value {
                        return err(format!(
                            "{}/{} return disagrees with function signature",
                            f.name, bid
                        ));
                    }
                }
            }
            for &aid in &f.local_arrays {
                match self.arrays.get(aid.0 as usize) {
                    Some(a) if a.scope == ArrayScope::Local(fid) => {}
                    _ => {
                        return err(format!(
                            "function `{}` claims array {:?} it does not own",
                            f.name, aid
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Counts operations per class across the whole module.
    pub fn op_census(&self) -> HashMap<OpClass, usize> {
        let mut census = HashMap::new();
        for f in &self.functions {
            for b in &f.blocks {
                for op in &b.ops {
                    *census.entry(op.class()).or_insert(0) += 1;
                }
            }
        }
        census
    }
}

/// Word-addressed memory layout shared by the interpreter and the ISA
/// back-end, so data addresses (and therefore d-cache behaviour) agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Byte offset of each array's base, indexed by [`ArrayId`].
    /// Local arrays get frame-relative offsets; globals absolute ones.
    pub array_base: Vec<u32>,
    /// One past the last byte used by globals.
    pub globals_end: u32,
    /// Frame size in bytes of each function's local arrays.
    pub frame_words: Vec<u32>,
}

/// Base byte address of the globals region.
pub const GLOBALS_BASE: u32 = 0x1000;
/// Initial stack pointer (stack grows down).
pub const STACK_BASE: u32 = 0x0010_0000;
/// Bytes per IR word.
pub const WORD_BYTES: u32 = 4;

impl MemoryLayout {
    /// Computes the layout for a module.
    pub fn of(module: &Module) -> MemoryLayout {
        let mut array_base = vec![0u32; module.arrays.len()];
        let mut cursor = GLOBALS_BASE;
        for (i, a) in module.arrays.iter().enumerate() {
            if a.scope == ArrayScope::Global {
                array_base[i] = cursor;
                cursor += (a.len as u32) * WORD_BYTES;
            }
        }
        let globals_end = cursor;
        let mut frame_words = vec![0u32; module.functions.len()];
        for (fid, f) in module.functions_iter() {
            let mut offset = 0u32;
            for &aid in &f.local_arrays {
                array_base[aid.0 as usize] = offset;
                offset += (module.array(aid).len as u32) * WORD_BYTES;
            }
            frame_words[fid.0 as usize] = offset / WORD_BYTES;
        }
        MemoryLayout { array_base, globals_end, frame_words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        // int g; void main() { g = 7; }
        Module {
            functions: vec![FunctionData {
                name: "main".into(),
                params: vec![],
                num_vregs: 2,
                blocks: vec![BlockData {
                    ops: vec![
                        Op { kind: OpKind::Const(0), args: vec![], result: Some(VReg(0)) },
                        Op { kind: OpKind::Const(7), args: vec![], result: Some(VReg(1)) },
                        Op {
                            kind: OpKind::Store { array: ArrayId(0) },
                            args: vec![VReg(0), VReg(1)],
                            result: None,
                        },
                    ],
                    term: Terminator::Return(None),
                }],
                returns_value: false,
                local_arrays: vec![],
            }],
            arrays: vec![ArrayData {
                name: "g".into(),
                len: 1,
                init: vec![],
                scope: ArrayScope::Global,
            }],
        }
    }

    #[test]
    fn valid_module_validates() {
        tiny_module().validate().expect("valid");
    }

    #[test]
    fn out_of_range_vreg_is_caught() {
        let mut m = tiny_module();
        m.functions[0].blocks[0].ops[0].result = Some(VReg(99));
        assert!(m.validate().is_err());
    }

    #[test]
    fn bad_branch_target_is_caught() {
        let mut m = tiny_module();
        m.functions[0].blocks[0].term = Terminator::Jump(BlockId(5));
        assert!(m.validate().is_err());
    }

    #[test]
    fn call_must_be_block_terminal() {
        let mut m = tiny_module();
        m.functions[0].blocks[0]
            .ops
            .insert(0, Op { kind: OpKind::Call { func: FuncId(0) }, args: vec![], result: None });
        let err = m.validate().expect_err("call mid-block");
        assert!(err.message.contains("block-terminal"));
    }

    #[test]
    fn op_classes() {
        let op = |kind: OpKind| Op { kind, args: vec![], result: None };
        assert_eq!(op(OpKind::Bin(BinOp::Add)).class(), OpClass::Alu);
        assert_eq!(op(OpKind::Bin(BinOp::Mul)).class(), OpClass::Mul);
        assert_eq!(op(OpKind::Bin(BinOp::Rem)).class(), OpClass::Div);
        assert_eq!(op(OpKind::Bin(BinOp::Shl)).class(), OpClass::Shift);
        assert_eq!(op(OpKind::Const(3)).class(), OpClass::Move);
        assert_eq!(op(OpKind::Load { array: ArrayId(0) }).class(), OpClass::Load);
        assert_eq!(op(OpKind::Output).class(), OpClass::Control);
    }

    #[test]
    fn memory_layout_places_globals_sequentially() {
        let mut m = tiny_module();
        m.arrays.push(ArrayData {
            name: "tab".into(),
            len: 8,
            init: vec![],
            scope: ArrayScope::Global,
        });
        let layout = MemoryLayout::of(&m);
        assert_eq!(layout.array_base[0], GLOBALS_BASE);
        assert_eq!(layout.array_base[1], GLOBALS_BASE + 4);
        assert_eq!(layout.globals_end, GLOBALS_BASE + 4 + 32);
    }

    #[test]
    fn census_counts_ops() {
        let census = tiny_module().op_census();
        assert_eq!(census.get(&OpClass::Move), Some(&2));
        assert_eq!(census.get(&OpClass::Store), Some(&1));
    }
}
