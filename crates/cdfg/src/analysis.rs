//! CFG analyses: predecessors, reverse postorder, dominators, natural loops.
//!
//! These support the estimation engine (loop-aware reporting, annotation
//! statistics) and the optimizer passes.

use std::collections::{HashMap, HashSet};

use crate::ir::{BlockId, FunctionData};

/// Control-flow facts about one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]`: successor blocks of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]`: predecessor blocks of `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry; unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    /// Immediate dominator of each block (`None` for entry and unreachable
    /// blocks).
    pub idom: Vec<Option<BlockId>>,
}

impl Cfg {
    /// Computes CFG facts for a function.
    pub fn of(func: &FunctionData) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, block) in func.blocks_iter() {
            for s in block.term.successors() {
                succs[bid.0 as usize].push(s);
                preds[s.0 as usize].push(bid);
            }
        }

        // Postorder DFS from the entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::new();
        let mut stack = vec![(func.entry(), 0usize)];
        visited[0] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let node_succs = &succs[node.0 as usize];
            if *next < node_succs.len() {
                let s = node_succs[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
        let mut rpo = postorder.clone();
        rpo.reverse();

        let idom = compute_idom(&rpo, &preds, n);
        Cfg { succs, preds, rpo, idom }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.idom[c.0 as usize];
        }
        false
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> HashSet<BlockId> {
        self.rpo.iter().copied().collect()
    }
}

/// Cooper–Harvey–Kennedy iterative dominator computation.
fn compute_idom(rpo: &[BlockId], preds: &[Vec<BlockId>], n: usize) -> Vec<Option<BlockId>> {
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    if rpo.is_empty() {
        return idom;
    }
    let entry = rpo[0];
    idom[entry.0 as usize] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue; // unprocessed or unreachable predecessor
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &rpo_index),
                });
            }
            if new_idom != idom[b.0 as usize] {
                idom[b.0 as usize] = new_idom;
                changed = true;
            }
        }
    }
    // By convention the entry has no immediate dominator.
    idom[entry.0 as usize] = None;
    idom
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has idom");
        }
    }
    a
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub body: HashSet<BlockId>,
}

/// Finds natural loops via back edges (`tail -> header` where the header
/// dominates the tail). Loops sharing a header are merged.
pub fn natural_loops(func: &FunctionData, cfg: &Cfg) -> Vec<NaturalLoop> {
    let mut loops: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for (bid, block) in func.blocks_iter() {
        for succ in block.term.successors() {
            if cfg.dominates(succ, bid) {
                // Back edge bid -> succ; collect the loop body by walking
                // predecessors from the tail until the header.
                let body = loops.entry(succ).or_default();
                body.insert(succ);
                let mut stack = vec![bid];
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for &p in &cfg.preds[b.0 as usize] {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut result: Vec<NaturalLoop> =
        loops.into_iter().map(|(header, body)| NaturalLoop { header, body }).collect();
    result.sort_by_key(|l| l.header);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::Module;

    fn module(src: &str) -> Module {
        lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    #[test]
    fn straight_line_has_no_loops() {
        let m = module("int f(int a) { return a + 1; }");
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        assert!(natural_loops(f, &cfg).is_empty());
        assert_eq!(cfg.rpo.len(), 1);
    }

    #[test]
    fn while_loop_found() {
        let m = module("int f(int n) { int i = 0; while (i < n) { i++; } return i; }");
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        let loops = natural_loops(f, &cfg);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].body.len() >= 2, "header + body");
    }

    #[test]
    fn nested_loops_found() {
        let m = module(
            "int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) { acc += i * j; }
                }
                return acc;
            }",
        );
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        let loops = natural_loops(f, &cfg);
        assert_eq!(loops.len(), 2);
        // The outer loop body contains the inner header.
        let (outer, inner) = if loops[0].body.len() > loops[1].body.len() {
            (&loops[0], &loops[1])
        } else {
            (&loops[1], &loops[0])
        };
        assert!(outer.body.contains(&inner.header));
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let m = module(
            "int f(int a) {
                if (a > 0) { a = a * 2; } else { a = a - 1; }
                return a;
            }",
        );
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        for &b in &cfg.rpo {
            assert!(cfg.dominates(f.entry(), b));
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let m = module(
            "int f(int a) {
                int r = 0;
                if (a > 0) { r = 1; } else { r = 2; }
                return r;
            }",
        );
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        // Find the conditional block and its successors.
        let (cond_bid, _) =
            f.blocks_iter().find(|(_, b)| b.term.is_conditional()).expect("has branch");
        let succs = &cfg.succs[cond_bid.0 as usize];
        let join_candidates: Vec<BlockId> =
            cfg.rpo.iter().copied().filter(|&b| cfg.preds[b.0 as usize].len() >= 2).collect();
        assert!(!join_candidates.is_empty(), "diamond has a join");
        for &join in &join_candidates {
            for &arm in succs {
                if arm != join {
                    assert!(!cfg.dominates(arm, join));
                }
            }
        }
    }

    #[test]
    fn unreachable_blocks_are_not_in_rpo() {
        let m = module("int f() { return 1; return 2; }");
        let f = &m.functions[0];
        let cfg = Cfg::of(f);
        assert!(cfg.rpo.len() < f.blocks.len(), "dead block exists but is unreachable");
    }
}
