//! Lowering from the MiniC AST to the CDFG IR.
//!
//! Structured control flow becomes a CFG; short-circuit `&&`/`||` become
//! control flow; scalar locals become virtual registers; global scalars
//! become length-1 arrays; call-like operations terminate their blocks.
//!
//! One deliberate simplification relative to C: initializers of *local*
//! arrays are applied once per function activation (at entry), not each time
//! the declaration's scope is entered. Application code in this repository
//! declares initialized arrays only at global or function-top scope, where
//! the two semantics agree.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use tlm_minic::ast::BinOp;
use tlm_minic::ast::{self, const_eval, Block as AstBlock, Expr, Init, LValue, Program, Stmt};

use crate::ir::{
    ArrayData, ArrayId, ArrayScope, BlockData, BlockId, ChanId, FuncId, FunctionData, Module, Op,
    OpKind, Terminator, VReg,
};

/// An error produced during lowering.
///
/// After `tlm_minic::parse` has succeeded these should not occur; they exist
/// so that hand-built or corrupted ASTs fail loudly instead of producing a
/// bad module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl Error for LowerError {}

/// Lowers a type-checked program into a validated [`Module`].
///
/// # Errors
///
/// Returns [`LowerError`] if the AST violates invariants the type checker
/// normally guarantees (unknown names, non-constant sizes, ...).
pub fn lower(program: &Program) -> Result<Module, LowerError> {
    let mut module = Module::default();
    let mut func_ids = HashMap::new();
    let mut global_bindings = HashMap::new();

    for g in &program.globals {
        let (len, is_scalar) = match &g.size {
            Some(e) => {
                let len = const_eval(e)
                    .ok_or_else(|| err(format!("non-constant size for `{}`", g.name)))?;
                (len as usize, false)
            }
            None => (1, true),
        };
        let init = match &g.init {
            Init::None => Vec::new(),
            Init::Scalar(e) => {
                vec![const_eval(e)
                    .ok_or_else(|| err(format!("non-constant initializer for `{}`", g.name)))?]
            }
            Init::List(items) => items
                .iter()
                .map(|e| {
                    const_eval(e)
                        .ok_or_else(|| err(format!("non-constant initializer for `{}`", g.name)))
                })
                .collect::<Result<_, _>>()?,
        };
        let id = ArrayId(module.arrays.len() as u32);
        module.arrays.push(ArrayData {
            name: g.name.clone(),
            len,
            init,
            scope: ArrayScope::Global,
        });
        let binding = if is_scalar { Binding::GlobalScalar(id) } else { Binding::Array(id) };
        global_bindings.insert(g.name.clone(), binding);
    }

    let mut signatures = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        func_ids.insert(f.name.clone(), FuncId(i as u32));
        signatures.insert(f.name.clone(), f.ret == ast::Type::Int);
    }

    for f in &program.functions {
        let fid = func_ids[&f.name];
        let lowered =
            FunctionLowering::new(&mut module, &func_ids, &signatures, &global_bindings, fid, f)
                .run()?;
        module.functions.push(lowered);
    }

    module.validate().map_err(|e| err(format!("lowering produced an invalid module: {e}")))?;
    Ok(module)
}

fn err(message: String) -> LowerError {
    LowerError { message }
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(VReg),
    Array(ArrayId),
    GlobalScalar(ArrayId),
}

/// A block under construction.
struct PendingBlock {
    ops: Vec<Op>,
    term: Option<Terminator>,
}

struct LoopTargets {
    break_to: BlockId,
    continue_to: BlockId,
}

struct FunctionLowering<'a> {
    module: &'a mut Module,
    func_ids: &'a HashMap<String, FuncId>,
    /// `name -> returns_value` for every function in the program; needed for
    /// forward calls whose callee has not been lowered yet.
    signatures: &'a HashMap<String, bool>,
    globals: &'a HashMap<String, Binding>,
    fid: FuncId,
    func: &'a ast::Function,
    blocks: Vec<PendingBlock>,
    current: BlockId,
    num_vregs: u32,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<LoopTargets>,
    local_arrays: Vec<ArrayId>,
}

impl<'a> FunctionLowering<'a> {
    fn new(
        module: &'a mut Module,
        func_ids: &'a HashMap<String, FuncId>,
        signatures: &'a HashMap<String, bool>,
        globals: &'a HashMap<String, Binding>,
        fid: FuncId,
        func: &'a ast::Function,
    ) -> Self {
        FunctionLowering {
            module,
            func_ids,
            signatures,
            globals,
            fid,
            func,
            blocks: vec![PendingBlock { ops: Vec::new(), term: None }],
            current: BlockId(0),
            num_vregs: 0,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            local_arrays: Vec::new(),
        }
    }

    fn run(mut self) -> Result<FunctionData, LowerError> {
        let params: Vec<VReg> = self.func.params.iter().map(|_| self.new_vreg()).collect();
        for (p, &reg) in self.func.params.iter().zip(&params) {
            self.bind(&p.name, Binding::Scalar(reg));
        }
        self.lower_block(&self.func.body)?;

        // Fall-off-the-end return. For int functions C leaves this
        // undefined; we define it as returning 0 so every backend agrees.
        let returns_value = self.func.ret == ast::Type::Int;
        if self.blocks[self.current.0 as usize].term.is_none() {
            let term = if returns_value {
                let zero = self.emit_const(0);
                Terminator::Return(Some(zero))
            } else {
                Terminator::Return(None)
            };
            self.terminate(term);
        }
        // Give any unreachable trailing blocks a terminator too. Int
        // functions get a placeholder `Return(None)` that the loop below
        // patches with a zero value.
        for block in &mut self.blocks {
            if block.term.is_none() {
                block.term = Some(Terminator::Return(None));
            }
        }
        // Unreachable blocks in int functions still need a value; emit 0.
        if returns_value {
            for i in 0..self.blocks.len() {
                if matches!(self.blocks[i].term, Some(Terminator::Return(None))) {
                    let reg = self.new_vreg();
                    self.blocks[i].ops.push(Op {
                        kind: OpKind::Const(0),
                        args: vec![],
                        result: Some(reg),
                    });
                    self.blocks[i].term = Some(Terminator::Return(Some(reg)));
                }
            }
        }

        let blocks = self
            .blocks
            .into_iter()
            .map(|b| BlockData { ops: b.ops, term: b.term.expect("all blocks terminated") })
            .collect();
        Ok(FunctionData {
            name: self.func.name.clone(),
            params,
            num_vregs: self.num_vregs,
            blocks,
            returns_value,
            local_arrays: self.local_arrays,
        })
    }

    fn new_vreg(&mut self) -> VReg {
        let reg = VReg(self.num_vregs);
        self.num_vregs += 1;
        reg
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock { ops: Vec::new(), term: None });
        id
    }

    fn bind(&mut self, name: &str, binding: Binding) {
        self.scopes.last_mut().expect("scope stack never empty").insert(name.to_string(), binding);
    }

    fn lookup(&self, name: &str) -> Result<Binding, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&b) = scope.get(name) {
                return Ok(b);
            }
        }
        self.globals.get(name).copied().ok_or_else(|| err(format!("unbound variable `{name}`")))
    }

    fn emit(&mut self, op: Op) {
        let block = &mut self.blocks[self.current.0 as usize];
        debug_assert!(block.term.is_none(), "emitting into a terminated block");
        block.ops.push(op);
    }

    fn emit_const(&mut self, value: i64) -> VReg {
        let reg = self.new_vreg();
        self.emit(Op { kind: OpKind::Const(value), args: vec![], result: Some(reg) });
        reg
    }

    fn terminate(&mut self, term: Terminator) {
        let block = &mut self.blocks[self.current.0 as usize];
        debug_assert!(block.term.is_none(), "double-terminating a block");
        block.term = Some(term);
    }

    /// Emits a call-like op, terminates the block, continues in a fresh one.
    fn emit_block_terminal(&mut self, op: Op) {
        self.emit(op);
        let next = self.new_block();
        self.terminate(Terminator::Jump(next));
        self.current = next;
    }

    fn lower_block(&mut self, block: &AstBlock) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            // Statements after a return/break/continue in the same block are
            // unreachable; lower them into a fresh dead block so the IR
            // stays well-formed (no dead block is created when the
            // terminating statement is the last one).
            if self.blocks[self.current.0 as usize].term.is_some() {
                let dead = self.new_block();
                self.current = dead;
            }
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match stmt {
            Stmt::Local { name, size, init, .. } => self.lower_local(name, size, init),
            Stmt::Expr(e) => {
                // Statement calls may be void; discard any result.
                self.lower_call(e, true)?;
                Ok(())
            }
            Stmt::Assign { target, op, value, .. } => self.lower_assign(target, *op, value),
            Stmt::If { cond, then_blk, else_blk, .. } => {
                let cond_reg = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let join_bb = self.new_block();
                let else_bb = if else_blk.is_some() { self.new_block() } else { join_bb };
                self.terminate(Terminator::Branch { cond: cond_reg, then_bb, else_bb });

                self.current = then_bb;
                self.lower_block(then_blk)?;
                if self.blocks[self.current.0 as usize].term.is_none() {
                    self.terminate(Terminator::Jump(join_bb));
                }
                if let Some(else_blk) = else_blk {
                    self.current = else_bb;
                    self.lower_block(else_blk)?;
                    if self.blocks[self.current.0 as usize].term.is_none() {
                        self.terminate(Terminator::Jump(join_bb));
                    }
                }
                self.current = join_bb;
                Ok(())
            }
            Stmt::Switch { scrutinee, cases, .. } => {
                let scrutinee_reg = self.lower_expr(scrutinee)?;
                let exit = self.new_block();
                let body_blocks: Vec<BlockId> = cases.iter().map(|_| self.new_block()).collect();

                // Dispatch chain: one equality test per label, in source
                // order, falling through to the default (or the exit).
                for (i, case) in cases.iter().enumerate() {
                    for label in &case.labels {
                        let value = const_eval(label)
                            .ok_or_else(|| err("non-constant case label".into()))?;
                        let label_reg = self.emit_const(value);
                        let cond = self.new_vreg();
                        self.emit(Op {
                            kind: OpKind::Bin(BinOp::Eq),
                            args: vec![scrutinee_reg, label_reg],
                            result: Some(cond),
                        });
                        let next_test = self.new_block();
                        self.terminate(Terminator::Branch {
                            cond,
                            then_bb: body_blocks[i],
                            else_bb: next_test,
                        });
                        self.current = next_test;
                    }
                }
                let default_target =
                    cases.iter().position(|c| c.is_default).map_or(exit, |i| body_blocks[i]);
                self.terminate(Terminator::Jump(default_target));

                // Bodies: C fallthrough into the next arm; `break` exits.
                // `continue` still targets the enclosing loop.
                let continue_to = self.loops.last().map_or(exit, |l| l.continue_to);
                self.loops.push(LoopTargets { break_to: exit, continue_to });
                for (i, case) in cases.iter().enumerate() {
                    self.current = body_blocks[i];
                    self.lower_block(&AstBlock { stmts: case.body.clone() })?;
                    if self.blocks[self.current.0 as usize].term.is_none() {
                        let fall = body_blocks.get(i + 1).copied().unwrap_or(exit);
                        self.terminate(Terminator::Jump(fall));
                    }
                }
                self.loops.pop();
                self.current = exit;
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_bb = self.new_block();
                let latch = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(body_bb));

                self.current = body_bb;
                self.loops.push(LoopTargets { break_to: exit, continue_to: latch });
                self.lower_block(body)?;
                self.loops.pop();
                if self.blocks[self.current.0 as usize].term.is_none() {
                    self.terminate(Terminator::Jump(latch));
                }

                self.current = latch;
                let cond_reg = self.lower_expr(cond)?;
                self.terminate(Terminator::Branch {
                    cond: cond_reg,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.current = exit;
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(header));

                self.current = header;
                let cond_reg = self.lower_expr(cond)?;
                self.terminate(Terminator::Branch {
                    cond: cond_reg,
                    then_bb: body_bb,
                    else_bb: exit,
                });

                self.current = body_bb;
                self.loops.push(LoopTargets { break_to: exit, continue_to: header });
                self.lower_block(body)?;
                self.loops.pop();
                if self.blocks[self.current.0 as usize].term.is_none() {
                    self.terminate(Terminator::Jump(header));
                }
                self.current = exit;
                Ok(())
            }
            Stmt::For { init, cond, step, body, .. } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(header));

                self.current = header;
                match cond {
                    Some(cond) => {
                        let cond_reg = self.lower_expr(cond)?;
                        self.terminate(Terminator::Branch {
                            cond: cond_reg,
                            then_bb: body_bb,
                            else_bb: exit,
                        });
                    }
                    None => self.terminate(Terminator::Jump(body_bb)),
                }

                self.current = body_bb;
                self.loops.push(LoopTargets { break_to: exit, continue_to: step_bb });
                self.lower_block(body)?;
                self.loops.pop();
                if self.blocks[self.current.0 as usize].term.is_none() {
                    self.terminate(Terminator::Jump(step_bb));
                }

                self.current = step_bb;
                if let Some(step) = step {
                    self.lower_stmt(step)?;
                }
                if self.blocks[self.current.0 as usize].term.is_none() {
                    self.terminate(Terminator::Jump(header));
                }
                self.scopes.pop();
                self.current = exit;
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let reg = match value {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.terminate(Terminator::Return(reg));
                Ok(())
            }
            Stmt::Break(_) => {
                let target =
                    self.loops.last().ok_or_else(|| err("break outside loop".into()))?.break_to;
                self.terminate(Terminator::Jump(target));
                Ok(())
            }
            Stmt::Continue(_) => {
                let target = self
                    .loops
                    .last()
                    .ok_or_else(|| err("continue outside loop".into()))?
                    .continue_to;
                self.terminate(Terminator::Jump(target));
                Ok(())
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    fn lower_local(
        &mut self,
        name: &str,
        size: &Option<Expr>,
        init: &Init,
    ) -> Result<(), LowerError> {
        match size {
            Some(size_expr) => {
                let len = const_eval(size_expr)
                    .ok_or_else(|| err(format!("non-constant size for `{name}`")))?
                    as usize;
                let init_vals = match init {
                    Init::None => Vec::new(),
                    Init::List(items) => items
                        .iter()
                        .map(|e| {
                            const_eval(e).ok_or_else(|| {
                                err(format!("non-constant initializer for `{name}`"))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                    Init::Scalar(_) => {
                        return Err(err(format!("scalar initializer for array `{name}`")))
                    }
                };
                let id = ArrayId(self.module.arrays.len() as u32);
                self.module.arrays.push(ArrayData {
                    name: format!("{}::{}", self.func.name, name),
                    len,
                    init: init_vals,
                    scope: ArrayScope::Local(self.fid),
                });
                self.local_arrays.push(id);
                self.bind(name, Binding::Array(id));
                Ok(())
            }
            None => {
                let reg = self.new_vreg();
                self.bind(name, Binding::Scalar(reg));
                match init {
                    Init::None => {
                        // C leaves locals uninitialized; we define them as 0
                        // so every execution engine agrees.
                        self.emit(Op { kind: OpKind::Const(0), args: vec![], result: Some(reg) });
                    }
                    Init::Scalar(e) => {
                        let value = self.lower_expr(e)?;
                        self.emit(Op { kind: OpKind::Copy, args: vec![value], result: Some(reg) });
                    }
                    Init::List(_) => {
                        return Err(err(format!("list initializer for scalar `{name}`")))
                    }
                }
                Ok(())
            }
        }
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        op: Option<BinOp>,
        value: &Expr,
    ) -> Result<(), LowerError> {
        match target {
            LValue::Var(name, _) => match self.lookup(name)? {
                Binding::Scalar(dest) => {
                    match op {
                        None => {
                            let rhs = self.lower_expr(value)?;
                            self.emit(Op {
                                kind: OpKind::Copy,
                                args: vec![rhs],
                                result: Some(dest),
                            });
                        }
                        Some(op) => {
                            let rhs = self.lower_expr(value)?;
                            self.emit(Op {
                                kind: OpKind::Bin(op),
                                args: vec![dest, rhs],
                                result: Some(dest),
                            });
                        }
                    }
                    Ok(())
                }
                Binding::GlobalScalar(array) => {
                    let idx = self.emit_const(0);
                    let new_value = match op {
                        None => self.lower_expr(value)?,
                        Some(op) => {
                            let old = self.new_vreg();
                            self.emit(Op {
                                kind: OpKind::Load { array },
                                args: vec![idx],
                                result: Some(old),
                            });
                            let rhs = self.lower_expr(value)?;
                            let res = self.new_vreg();
                            self.emit(Op {
                                kind: OpKind::Bin(op),
                                args: vec![old, rhs],
                                result: Some(res),
                            });
                            res
                        }
                    };
                    self.emit(Op {
                        kind: OpKind::Store { array },
                        args: vec![idx, new_value],
                        result: None,
                    });
                    Ok(())
                }
                Binding::Array(_) => Err(err(format!("cannot assign to array `{name}`"))),
            },
            LValue::Index(name, index, _) => {
                let array = match self.lookup(name)? {
                    Binding::Array(a) | Binding::GlobalScalar(a) => a,
                    Binding::Scalar(_) => return Err(err(format!("indexing scalar `{name}`"))),
                };
                let idx = self.lower_expr(index)?;
                let new_value = match op {
                    None => self.lower_expr(value)?,
                    Some(op) => {
                        let old = self.new_vreg();
                        self.emit(Op {
                            kind: OpKind::Load { array },
                            args: vec![idx],
                            result: Some(old),
                        });
                        let rhs = self.lower_expr(value)?;
                        let res = self.new_vreg();
                        self.emit(Op {
                            kind: OpKind::Bin(op),
                            args: vec![old, rhs],
                            result: Some(res),
                        });
                        res
                    }
                };
                self.emit(Op {
                    kind: OpKind::Store { array },
                    args: vec![idx, new_value],
                    result: None,
                });
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<VReg, LowerError> {
        match expr {
            Expr::Int(v, _) => Ok(self.emit_const(ast::wrap_i32(*v))),
            Expr::Var(name, _) => match self.lookup(name)? {
                Binding::Scalar(reg) => Ok(reg),
                Binding::GlobalScalar(array) => {
                    let idx = self.emit_const(0);
                    let reg = self.new_vreg();
                    self.emit(Op {
                        kind: OpKind::Load { array },
                        args: vec![idx],
                        result: Some(reg),
                    });
                    Ok(reg)
                }
                Binding::Array(_) => Err(err(format!("array `{name}` used as scalar"))),
            },
            Expr::Index(name, index, _) => {
                let array = match self.lookup(name)? {
                    Binding::Array(a) | Binding::GlobalScalar(a) => a,
                    Binding::Scalar(_) => return Err(err(format!("indexing scalar `{name}`"))),
                };
                let idx = self.lower_expr(index)?;
                let reg = self.new_vreg();
                self.emit(Op { kind: OpKind::Load { array }, args: vec![idx], result: Some(reg) });
                Ok(reg)
            }
            Expr::Unary(op, inner, _) => {
                let arg = self.lower_expr(inner)?;
                let reg = self.new_vreg();
                self.emit(Op { kind: OpKind::Un(*op), args: vec![arg], result: Some(reg) });
                Ok(reg)
            }
            Expr::Binary(BinOp::LogAnd, lhs, rhs, _) => self.lower_short_circuit(lhs, rhs, true),
            Expr::Binary(BinOp::LogOr, lhs, rhs, _) => self.lower_short_circuit(lhs, rhs, false),
            Expr::Binary(op, lhs, rhs, _) => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let reg = self.new_vreg();
                self.emit(Op { kind: OpKind::Bin(*op), args: vec![l, r], result: Some(reg) });
                Ok(reg)
            }
            Expr::Call(..) => {
                let reg = self.lower_call(expr, false)?;
                reg.ok_or_else(|| err("void call used as value".into()))
            }
            Expr::Cond(cond, then, otherwise, _) => {
                // cond ? a : b with only the chosen arm evaluated.
                let result = self.new_vreg();
                let cond_reg = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch { cond: cond_reg, then_bb, else_bb });

                self.current = then_bb;
                let t = self.lower_expr(then)?;
                self.emit(Op { kind: OpKind::Copy, args: vec![t], result: Some(result) });
                self.terminate(Terminator::Jump(join_bb));

                self.current = else_bb;
                let e = self.lower_expr(otherwise)?;
                self.emit(Op { kind: OpKind::Copy, args: vec![e], result: Some(result) });
                self.terminate(Terminator::Jump(join_bb));

                self.current = join_bb;
                Ok(result)
            }
        }
    }

    /// Lowers `a && b` / `a || b` with proper short-circuit control flow.
    fn lower_short_circuit(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
    ) -> Result<VReg, LowerError> {
        let result = self.new_vreg();
        let lhs_reg = self.lower_expr(lhs)?;
        let rhs_bb = self.new_block();
        let short_bb = self.new_block();
        let join_bb = self.new_block();
        let (then_bb, else_bb) = if is_and { (rhs_bb, short_bb) } else { (short_bb, rhs_bb) };
        self.terminate(Terminator::Branch { cond: lhs_reg, then_bb, else_bb });

        // Evaluate the right-hand side and normalize to 0/1.
        self.current = rhs_bb;
        let rhs_reg = self.lower_expr(rhs)?;
        let zero = self.emit_const(0);
        self.emit(Op {
            kind: OpKind::Bin(BinOp::Ne),
            args: vec![rhs_reg, zero],
            result: Some(result),
        });
        self.terminate(Terminator::Jump(join_bb));

        // Short-circuit value: 0 for &&, 1 for ||.
        self.current = short_bb;
        self.emit(Op {
            kind: OpKind::Const(i64::from(!is_and)),
            args: vec![],
            result: Some(result),
        });
        self.terminate(Terminator::Jump(join_bb));

        self.current = join_bb;
        Ok(result)
    }

    /// Lowers a call expression (user function or intrinsic).
    ///
    /// Returns the result register for value-producing calls.
    fn lower_call(&mut self, expr: &Expr, as_statement: bool) -> Result<Option<VReg>, LowerError> {
        let Expr::Call(name, args, _) = expr else {
            return Err(err("expression statement must be a call".into()));
        };
        match name.as_str() {
            "ch_recv" => {
                let chan =
                    const_eval(&args[0]).ok_or_else(|| err("non-constant channel id".into()))?;
                let reg = self.new_vreg();
                self.emit_block_terminal(Op {
                    kind: OpKind::ChanRecv { chan: ChanId(chan as u32) },
                    args: vec![],
                    result: Some(reg),
                });
                Ok(Some(reg))
            }
            "ch_send" => {
                let chan =
                    const_eval(&args[0]).ok_or_else(|| err("non-constant channel id".into()))?;
                let value = self.lower_expr(&args[1])?;
                self.emit_block_terminal(Op {
                    kind: OpKind::ChanSend { chan: ChanId(chan as u32) },
                    args: vec![value],
                    result: None,
                });
                Ok(None)
            }
            "out" => {
                let value = self.lower_expr(&args[0])?;
                self.emit(Op { kind: OpKind::Output, args: vec![value], result: None });
                Ok(None)
            }
            _ => {
                let func = *self
                    .func_ids
                    .get(name)
                    .ok_or_else(|| err(format!("unknown function `{name}`")))?;
                let arg_regs: Vec<VReg> =
                    args.iter().map(|a| self.lower_expr(a)).collect::<Result<_, _>>()?;
                let callee_returns = self.signatures.get(name).copied().unwrap_or(false);
                // A returning callee always gets a result register, even in
                // statement position where the value is discarded, so the
                // call op shape matches the callee signature.
                let result = if callee_returns { Some(self.new_vreg()) } else { None };
                let _ = as_statement;
                self.emit_block_terminal(Op {
                    kind: OpKind::Call { func },
                    args: arg_regs,
                    result,
                });
                Ok(result)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpClass;

    fn lower_src(src: &str) -> Module {
        let program = tlm_minic::parse(src).expect("parses");
        lower(&program).expect("lowers")
    }

    #[test]
    fn straight_line_function() {
        let m = lower_src("int f(int a, int b) { return a * b + 1; }");
        let f = &m.functions[0];
        assert_eq!(f.params.len(), 2);
        assert!(f.returns_value);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Return(Some(_))));
    }

    #[test]
    fn if_else_produces_diamond() {
        let m = lower_src("int f(int a) { if (a > 0) { return 1; } else { return 2; } }");
        let f = &m.functions[0];
        // entry + then + join + else (+ possible dead blocks)
        assert!(f.blocks.len() >= 4);
        assert!(f.blocks.iter().any(|b| b.term.is_conditional()));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let m = lower_src("int f(int n) { int i = 0; while (i < n) { i++; } return i; }");
        let f = &m.functions[0];
        let conditional_blocks = f.blocks.iter().filter(|b| b.term.is_conditional()).count();
        assert_eq!(conditional_blocks, 1);
    }

    #[test]
    fn calls_terminate_blocks() {
        let m = lower_src("int g(int x) { return x; } void f() { out(g(1) + g(2)); }");
        m.validate().expect("valid");
        let f = m.function(m.function_id("f").expect("f exists"));
        for block in &f.blocks {
            for (i, op) in block.ops.iter().enumerate() {
                if op.is_block_terminal() {
                    assert_eq!(i + 1, block.ops.len());
                }
            }
        }
    }

    #[test]
    fn forward_calls_resolve() {
        let m = lower_src("void f() { out(g(1)); } int g(int x) { return x + 1; }");
        m.validate().expect("forward reference is fine");
    }

    #[test]
    fn global_scalars_become_len1_arrays() {
        let m = lower_src("int g = 5; void f() { g += 1; out(g); }");
        assert_eq!(m.arrays.len(), 1);
        assert_eq!(m.arrays[0].len, 1);
        assert_eq!(m.arrays[0].init, vec![5]);
        let census = m.op_census();
        assert!(census[&OpClass::Load] >= 2);
        assert_eq!(census[&OpClass::Store], 1);
    }

    #[test]
    fn local_arrays_are_function_scoped() {
        let m = lower_src("void f() { int t[4] = {9, 8, 7, 6}; out(t[2]); }");
        assert_eq!(m.arrays.len(), 1);
        assert_eq!(m.arrays[0].scope, ArrayScope::Local(FuncId(0)));
        assert_eq!(m.arrays[0].init, vec![9, 8, 7, 6]);
        assert_eq!(m.functions[0].local_arrays, vec![ArrayId(0)]);
    }

    #[test]
    fn channel_ops_lowered() {
        let m = lower_src("void f() { int v = ch_recv(2); ch_send(3, v + 1); }");
        let used = m.channels_used();
        assert_eq!(used, vec![ChanId(2), ChanId(3)]);
    }

    #[test]
    fn short_circuit_becomes_control_flow() {
        let m = lower_src("int f(int a, int b) { return a && b; }");
        let f = &m.functions[0];
        assert!(f.blocks.len() >= 4, "&& lowers to a diamond");
        assert!(f.blocks.iter().any(|b| b.term.is_conditional()));
    }

    #[test]
    fn break_and_continue_targets() {
        let m = lower_src(
            "int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    acc += i;
                }
                return acc;
            }",
        );
        m.validate().expect("valid");
    }
}
