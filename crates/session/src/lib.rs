//! Incremental edit-to-estimate sessions.
//!
//! The paper's value proposition is fast design-space iteration —
//! estimate, tweak the source or the mapping, estimate again — yet a
//! stateless server re-keys whole-module artifacts on every byte of a
//! source edit. A session is the stateful counterpart: it holds the
//! last accepted source of every process plus per-function *structural
//! identities* ([`tlm_core::annotate::PreparedModule`]'s schedule-key
//! digest), and on an edit it diffs the new front-end output against the
//! cached identities, computes the dirty set (structurally changed
//! functions → their blocks), and re-estimates **only** the dirty
//! functions through the pipeline's per-function `rows` stage
//! ([`tlm_pipeline::Pipeline::report_from_rows`]). Untouched functions
//! splice into the fresh report from retained rows — bit-identical to a
//! cold full run, because rows and full annotation bottom out in the same
//! Algorithm 1/2 floating-point path.
//!
//! [`SessionStore`] owns the sessions: sequential ids (deterministic from
//! creation order), byte-budgeted least-recently-used eviction, and lazy
//! idle-TTL expiry. It is the first piece of server state that survives
//! across requests by design, so everything here tolerates panicking
//! workers (poisoned locks are recovered; edits commit by swap, never
//! in place).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use tlm_cdfg::FuncId;
use tlm_core::Pum;
use tlm_pipeline::{EstimateReport, ModuleArtifact, Pipeline, PipelineError, PreparedDesign};

/// One cache configuration a session's reports sweep over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Display label of the point.
    pub label: String,
    /// Instruction cache bytes.
    pub icache: u32,
    /// Data cache bytes.
    pub dcache: u32,
}

/// An edit to one process's source.
#[derive(Debug, Clone, Copy)]
pub enum SourceEdit<'a> {
    /// Replace the whole source text.
    Full(&'a str),
    /// Replace the unique occurrence of `find` with `replace` in the
    /// session's current source — the "I changed one line" form.
    Patch {
        /// Text to locate; must occur exactly once.
        find: &'a str,
        /// Replacement text.
        replace: &'a str,
    },
}

/// What an edit changed, in structural-identity terms.
///
/// Counts come from diffing function identities (name → structural hash)
/// between the old and new front-end outputs. They are the session's
/// *claim* about the dirty set; the pipeline's `rows` stage counters are
/// the ground truth of what actually recomputed (a dirty function whose
/// new structure happens to match a resident row still hits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditReport {
    /// The process that was edited.
    pub process: String,
    /// Functions present before and after whose structural hash changed,
    /// plus functions added by the edit.
    pub dirty_functions: usize,
    /// Functions present before and after with an unchanged hash.
    pub clean_functions: usize,
    /// Basic blocks of the dirty functions (the re-estimation bound).
    pub dirty_blocks: usize,
    /// Functions that exist only after the edit.
    pub added_functions: usize,
    /// Functions that exist only before the edit.
    pub removed_functions: usize,
}

/// Snapshot of one process's spliced reports for rendering.
#[derive(Debug, Clone)]
pub struct ProcessView {
    /// Process name.
    pub process: String,
    /// Name of the PE the process is mapped to.
    pub pe: String,
    /// The estimate report at one sweep point.
    pub report: Arc<EstimateReport>,
}

/// One sweep point with every process's report.
#[derive(Debug, Clone)]
pub struct SweepView {
    /// Sweep point label.
    pub label: String,
    /// Instruction cache bytes.
    pub icache: u32,
    /// Data cache bytes.
    pub dcache: u32,
    /// Per-process reports, in platform process order.
    pub processes: Vec<ProcessView>,
}

/// A session's current estimate, shaped for the serving layer to render
/// exactly like a stateless `/estimate` response.
#[derive(Debug, Clone)]
pub struct SessionView {
    /// Platform name.
    pub platform: String,
    /// Number of PEs in the platform.
    pub pes: usize,
    /// Number of application processes.
    pub processes: usize,
    /// Whether per-block rows should be rendered.
    pub detail_blocks: bool,
    /// Reports per sweep point.
    pub sweep: Vec<SweepView>,
}

/// Errors of the session layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No session with that id (never created, closed, evicted or
    /// expired).
    NotFound(u64),
    /// The edit names a process the session's platform does not have.
    UnknownProcess(String),
    /// A [`SourceEdit::Patch`] whose `find` text did not occur exactly
    /// once in the current source.
    PatchMismatch {
        /// How often `find` occurred (0, or ≥ 2).
        matches: usize,
    },
    /// The pipeline rejected the edited source or could not estimate it.
    Pipeline(PipelineError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NotFound(id) => write!(f, "no session {id}"),
            SessionError::UnknownProcess(name) => write!(f, "unknown process: {name}"),
            SessionError::PatchMismatch { matches } => {
                write!(f, "patch target occurs {matches} times, expected exactly once")
            }
            SessionError::Pipeline(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<PipelineError> for SessionError {
    fn from(e: PipelineError) -> SessionError {
        SessionError::Pipeline(e)
    }
}

impl SessionError {
    /// Whether retrying the same request could change the outcome —
    /// mirrors [`PipelineError::is_deterministic`]; everything but a
    /// transient pipeline failure is deterministic.
    pub fn is_deterministic(&self) -> bool {
        match self {
            SessionError::Pipeline(e) => e.is_deterministic(),
            _ => true,
        }
    }
}

/// One process's session state: the accepted artifact plus function
/// identities, in module function order (index = `FuncId`).
#[derive(Debug)]
struct ProcessState {
    name: String,
    /// Index of the PE the process is mapped to.
    pe: usize,
    artifact: ModuleArtifact,
    /// `(name, structural hash, block count)` per function.
    identities: Vec<(String, u64, usize)>,
}

/// One live session.
#[derive(Debug)]
struct Session {
    platform: String,
    pe_names: Vec<String>,
    /// Base (un-swept) PUM per PE.
    pums: Vec<Pum>,
    processes: Vec<ProcessState>,
    sweep: Vec<SweepPoint>,
    detail_blocks: bool,
    /// The retained report: every process's estimate at every sweep
    /// point. An edit replaces only the edited process's column; views
    /// replay this without touching the pipeline.
    views: Vec<SweepView>,
    /// Monotonic LRU tick of the last touch.
    last_tick: u64,
    /// Wall-clock of the last touch (idle-TTL expiry only; never exposed).
    last_used: Instant,
}

impl Session {
    /// Approximate resident bytes: artifact keys (each embeds the full
    /// source), identity tables, the retained report rows, plus a fixed
    /// overhead.
    fn resident_bytes(&self) -> u64 {
        let mut bytes = 512u64;
        for p in &self.processes {
            bytes += p.artifact.key().len() as u64;
            bytes += p.identities.iter().map(|(n, _, _)| n.len() as u64 + 24).sum::<u64>();
        }
        let row = std::mem::size_of::<tlm_pipeline::report::BlockReport>() as u64;
        for view in &self.views {
            for proc in &view.processes {
                bytes += 64 + proc.report.blocks as u64 * row;
            }
        }
        bytes
    }

    /// The renderable snapshot of the retained report (cheap: report
    /// payloads are shared by `Arc`).
    fn render(&self) -> SessionView {
        SessionView {
            platform: self.platform.clone(),
            pes: self.pe_names.len(),
            processes: self.processes.len(),
            detail_blocks: self.detail_blocks,
            sweep: self.views.clone(),
        }
    }
}

fn identities_of(
    pipeline: &Pipeline,
    artifact: &ModuleArtifact,
) -> Result<Vec<(String, u64, usize)>, PipelineError> {
    let prep = pipeline.prepared(artifact)?;
    Ok(prep
        .function_identities()
        .enumerate()
        .map(|(f, (name, hash))| (name.to_owned(), hash, prep.function_blocks(FuncId(f as u32))))
        .collect())
}

/// Counter snapshot of a [`SessionStore`], for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Live sessions.
    pub active: usize,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions dropped by the byte budget (least recently used first).
    pub evicted: u64,
    /// Sessions dropped by the idle TTL.
    pub expired: u64,
    /// Sessions closed by request.
    pub closed: u64,
    /// Edits accepted.
    pub edits: u64,
    /// Dirty functions across all accepted edits.
    pub dirty_functions: u64,
    /// Clean (retained) functions across all accepted edits.
    pub clean_functions: u64,
    /// Dirty blocks across all accepted edits.
    pub dirty_blocks: u64,
    /// Approximate resident bytes of all live sessions.
    pub resident_bytes: u64,
}

/// The session table: id allocation, lookup, LRU eviction, TTL expiry.
#[derive(Debug)]
pub struct SessionStore {
    inner: Mutex<Table>,
    /// Resident-byte budget across all sessions; `u64::MAX` disables
    /// eviction.
    budget: u64,
    /// Idle time after which a session expires (checked lazily on store
    /// access).
    ttl: Duration,
    created: AtomicU64,
    evicted: AtomicU64,
    expired: AtomicU64,
    closed: AtomicU64,
    edits: AtomicU64,
    dirty_functions: AtomicU64,
    clean_functions: AtomicU64,
    dirty_blocks: AtomicU64,
}

#[derive(Debug, Default)]
struct Table {
    sessions: HashMap<u64, Arc<Mutex<Session>>>,
    /// Next session id; ids are sequential from 1 so responses stay a
    /// pure function of request history.
    next_id: u64,
    /// Monotonic access counter backing LRU order.
    tick: u64,
}

/// Recovers a possibly poisoned lock: session state is only mutated by
/// commit-by-swap, so a panic between lock and unlock cannot leave a
/// half-applied edit behind.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SessionStore {
    /// A store bounded by `budget` resident bytes whose sessions expire
    /// after `ttl` idle time.
    pub fn new(budget: u64, ttl: Duration) -> SessionStore {
        SessionStore {
            inner: Mutex::new(Table { sessions: HashMap::new(), next_id: 1, tick: 0 }),
            budget,
            ttl,
            created: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            dirty_functions: AtomicU64::new(0),
            clean_functions: AtomicU64::new(0),
            dirty_blocks: AtomicU64::new(0),
        }
    }

    /// Drops sessions idle past the TTL. Called on every store access;
    /// cheap (one scan of the id table).
    fn expire(&self, table: &mut Table) {
        let ttl = self.ttl;
        let before = table.sessions.len();
        table.sessions.retain(|_, s| relock(s).last_used.elapsed() <= ttl);
        self.expired.fetch_add((before - table.sessions.len()) as u64, Ordering::Relaxed);
    }

    /// Evicts least-recently-used sessions (never `keep`) until the
    /// resident bytes fit the budget.
    fn enforce_budget(&self, table: &mut Table, keep: u64) {
        if self.budget == u64::MAX {
            return;
        }
        loop {
            let mut total = 0u64;
            let mut lru: Option<(u64, u64)> = None;
            for (&id, session) in &table.sessions {
                let s = relock(session);
                total += s.resident_bytes();
                if id != keep && lru.is_none_or(|(_, tick)| s.last_tick < tick) {
                    lru = Some((id, s.last_tick));
                }
            }
            if total <= self.budget {
                return;
            }
            let Some((victim, _)) = lru else { return };
            table.sessions.remove(&victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn lookup(&self, id: u64) -> Result<Arc<Mutex<Session>>, SessionError> {
        let mut table = relock(&self.inner);
        self.expire(&mut table);
        let session = table.sessions.get(&id).cloned().ok_or(SessionError::NotFound(id))?;
        let tick = {
            table.tick += 1;
            table.tick
        };
        {
            let mut s = relock(&session);
            s.last_tick = tick;
            s.last_used = Instant::now();
        }
        Ok(session)
    }

    /// Creates a session from a prepared design: snapshots the platform
    /// wiring and per-process identities, estimates every sweep point
    /// once (cold), and returns the id with the initial view.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the initial estimation.
    pub fn create(
        &self,
        pipeline: &Pipeline,
        design: &PreparedDesign,
        sweep: Vec<SweepPoint>,
        detail_blocks: bool,
    ) -> Result<(u64, SessionView), SessionError> {
        self.create_inner(pipeline, design, sweep, detail_blocks, None)
    }

    /// [`SessionStore::create`] with a caller-assigned id, for tiers
    /// where one process allocates ids and another holds the sessions
    /// (a sharded front assigns ids globally so they stay sequential,
    /// then routes each session to the shard the id hashes to). The
    /// store's own allocator is advanced past `id`, so locally created
    /// sessions can never alias an assigned one.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures from the initial estimation.
    pub fn create_with_id(
        &self,
        pipeline: &Pipeline,
        design: &PreparedDesign,
        sweep: Vec<SweepPoint>,
        detail_blocks: bool,
        id: u64,
    ) -> Result<(u64, SessionView), SessionError> {
        self.create_inner(pipeline, design, sweep, detail_blocks, Some(id))
    }

    fn create_inner(
        &self,
        pipeline: &Pipeline,
        design: &PreparedDesign,
        sweep: Vec<SweepPoint>,
        detail_blocks: bool,
        assigned: Option<u64>,
    ) -> Result<(u64, SessionView), SessionError> {
        let platform = &design.platform;
        let mut processes = Vec::with_capacity(platform.processes.len());
        for (proc, artifact) in platform.processes.iter().zip(design.artifacts()) {
            processes.push(ProcessState {
                name: proc.name.clone(),
                pe: proc.pe.0,
                artifact: artifact.clone(),
                identities: identities_of(pipeline, artifact)?,
            });
        }
        let mut session = Session {
            platform: platform.name.clone(),
            pe_names: platform.pes.iter().map(|pe| pe.name.clone()).collect(),
            pums: platform.pes.iter().map(|pe| pe.pum.clone()).collect(),
            processes,
            sweep,
            detail_blocks,
            views: Vec::new(),
            last_tick: 0,
            last_used: Instant::now(),
        };
        session.views = session
            .sweep
            .iter()
            .map(|point| SweepView {
                label: point.label.clone(),
                icache: point.icache,
                dcache: point.dcache,
                processes: Vec::with_capacity(session.processes.len()),
            })
            .collect();
        for idx in 0..session.processes.len() {
            let column = process_column(pipeline, &session, &session.processes[idx])?;
            for (view, entry) in session.views.iter_mut().zip(column) {
                view.processes.push(entry);
            }
        }
        let view = session.render();
        let id = {
            let mut table = relock(&self.inner);
            self.expire(&mut table);
            let id = match assigned {
                Some(id) => {
                    table.next_id = table.next_id.max(id + 1);
                    id
                }
                None => {
                    let id = table.next_id;
                    table.next_id += 1;
                    id
                }
            };
            table.tick += 1;
            let mut session = session;
            session.last_tick = table.tick;
            table.sessions.insert(id, Arc::new(Mutex::new(session)));
            self.enforce_budget(&mut table, id);
            id
        };
        self.created.fetch_add(1, Ordering::Relaxed);
        Ok((id, view))
    }

    /// Applies an edit to one process of a session: front-end the new
    /// source, diff identities, re-estimate (dirty functions miss in the
    /// rows stage; clean ones splice from retained rows), drop the rows
    /// of identities the edit removed, then commit by swap.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotFound`], [`SessionError::UnknownProcess`],
    /// [`SessionError::PatchMismatch`], or a pipeline failure. On error
    /// the session is unchanged.
    pub fn edit(
        &self,
        pipeline: &Pipeline,
        id: u64,
        process: &str,
        edit: &SourceEdit<'_>,
    ) -> Result<(EditReport, SessionView), SessionError> {
        let session = self.lookup(id)?;
        let mut session = relock(&session);
        let proc_idx = session
            .processes
            .iter()
            .position(|p| p.name == process)
            .ok_or_else(|| SessionError::UnknownProcess(process.to_owned()))?;
        let old = &session.processes[proc_idx];
        // The artifact key is `optimize flag ‖ source bytes`: the session
        // recovers both without storing the source twice.
        let old_key = old.artifact.key();
        let optimize = old_key[0] != 0;
        let current = std::str::from_utf8(&old_key[1..]).expect("session sources are UTF-8");
        let source = match *edit {
            SourceEdit::Full(source) => source.to_owned(),
            SourceEdit::Patch { find, replace } => {
                let matches = current.matches(find).count();
                if matches != 1 {
                    return Err(SessionError::PatchMismatch { matches });
                }
                current.replacen(find, replace, 1)
            }
        };
        let artifact = pipeline.frontend_with(&source, optimize)?;
        let identities = identities_of(pipeline, &artifact)?;

        // Dirty-set diff, by function name.
        let old_by_name: HashMap<&str, u64> =
            old.identities.iter().map(|(n, h, _)| (n.as_str(), *h)).collect();
        let new_names: HashMap<&str, ()> =
            identities.iter().map(|(n, _, _)| (n.as_str(), ())).collect();
        let mut report = EditReport {
            process: process.to_owned(),
            dirty_functions: 0,
            clean_functions: 0,
            dirty_blocks: 0,
            added_functions: 0,
            removed_functions: 0,
        };
        for (name, hash, blocks) in &identities {
            match old_by_name.get(name.as_str()) {
                Some(old_hash) if old_hash == hash => report.clean_functions += 1,
                Some(_) => {
                    report.dirty_functions += 1;
                    report.dirty_blocks += blocks;
                }
                None => {
                    report.added_functions += 1;
                    report.dirty_functions += 1;
                    report.dirty_blocks += blocks;
                }
            }
        }
        report.removed_functions =
            old.identities.iter().filter(|(n, _, _)| !new_names.contains_key(n.as_str())).count();

        // Build the candidate state and estimate its column *before*
        // mutating the session: a failed edit (bad source, transient
        // fault) leaves the accepted state fully intact. Only the edited
        // process is re-estimated — every other entry of the retained
        // report is spliced through untouched.
        let old_artifact = old.artifact.clone();
        let old_identities = old.identities.clone();
        let candidate = ProcessState { name: old.name.clone(), pe: old.pe, artifact, identities };
        let column = process_column(pipeline, &session, &candidate)?;
        session.processes[proc_idx] = candidate;
        for (view, entry) in session.views.iter_mut().zip(column) {
            view.processes[proc_idx] = entry;
        }
        let view = session.render();

        // Targeted invalidation: drop the rows of identities that vanished
        // entirely (structure present before, absent after — deleted or
        // rewritten with no structurally identical survivor). Renames and
        // moves keep their rows; reverts of *this* edit recompute.
        let surviving: HashMap<u64, ()> =
            session.processes[proc_idx].identities.iter().map(|(_, h, _)| (*h, ())).collect();
        let pe = session.processes[proc_idx].pe;
        for (fid, (_, hash, _)) in old_identities.iter().enumerate() {
            if surviving.contains_key(hash) {
                continue;
            }
            for point in &session.sweep {
                let pum = session.pums[pe].with_cache_sizes(point.icache, point.dcache);
                let _ = pipeline.invalidate_function_rows(&old_artifact, &pum, FuncId(fid as u32));
            }
        }

        self.edits.fetch_add(1, Ordering::Relaxed);
        self.dirty_functions.fetch_add(report.dirty_functions as u64, Ordering::Relaxed);
        self.clean_functions.fetch_add(report.clean_functions as u64, Ordering::Relaxed);
        self.dirty_blocks.fetch_add(report.dirty_blocks as u64, Ordering::Relaxed);
        drop(session);
        let mut table = relock(&self.inner);
        self.enforce_budget(&mut table, id);
        Ok((report, view))
    }

    /// The session's current spliced estimate, replayed from the retained
    /// report — no pipeline traffic, immune to pipeline eviction.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotFound`].
    pub fn view(&self, id: u64) -> Result<SessionView, SessionError> {
        let session = self.lookup(id)?;
        let session = relock(&session);
        Ok(session.render())
    }

    /// Closes a session; returns whether it existed.
    pub fn close(&self, id: u64) -> bool {
        let mut table = relock(&self.inner);
        self.expire(&mut table);
        let existed = table.sessions.remove(&id).is_some();
        if existed {
            self.closed.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> SessionStats {
        let (active, resident_bytes) = {
            let table = relock(&self.inner);
            let bytes = table.sessions.values().map(|s| relock(s).resident_bytes()).sum();
            (table.sessions.len(), bytes)
        };
        SessionStats {
            active,
            created: self.created.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            edits: self.edits.load(Ordering::Relaxed),
            dirty_functions: self.dirty_functions.load(Ordering::Relaxed),
            clean_functions: self.clean_functions.load(Ordering::Relaxed),
            dirty_blocks: self.dirty_blocks.load(Ordering::Relaxed),
            resident_bytes,
        }
    }
}

/// Demands every process × sweep-point report through the per-function
/// rows stage and shapes the result for rendering. Pure demand: retained
/// rows hit, dirty rows recompute.
/// Estimates one process at every sweep point through the rows path —
/// one column of the retained report. Dirty functions miss in the rows
/// stage; everything else splices from retained rows.
fn process_column(
    pipeline: &Pipeline,
    session: &Session,
    proc: &ProcessState,
) -> Result<Vec<ProcessView>, PipelineError> {
    let mut column = Vec::with_capacity(session.sweep.len());
    for point in &session.sweep {
        let pum = session.pums[proc.pe].with_cache_sizes(point.icache, point.dcache);
        column.push(ProcessView {
            process: proc.name.clone(),
            pe: session.pe_names[proc.pe].clone(),
            report: pipeline.report_from_rows(&proc.artifact, &pum)?,
        });
    }
    Ok(column)
}

// Compile-time audit: the store is shared across serve workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionStore>();
    assert_send_sync::<SessionView>();
    assert_send_sync::<SessionError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_apps::designs::{mp3_design, Mp3Design, Mp3Params};
    use tlm_apps::mp3;

    fn store() -> SessionStore {
        SessionStore::new(u64::MAX, Duration::from_secs(3600))
    }

    fn sweep_one() -> Vec<SweepPoint> {
        vec![SweepPoint { label: "8k/4k".into(), icache: 8 << 10, dcache: 4 << 10 }]
    }

    fn mp3_session(pipeline: &Pipeline, store: &SessionStore) -> (u64, SessionView) {
        let design = mp3_design(pipeline, Mp3Design::Sw, Mp3Params::training(), 8 << 10, 4 << 10)
            .expect("builds");
        store.create(pipeline, &design, sweep_one(), false).expect("creates")
    }

    #[test]
    fn ids_are_sequential_and_close_forgets() {
        let pipeline = Pipeline::new();
        let store = store();
        let (a, _) = mp3_session(&pipeline, &store);
        let (b, _) = mp3_session(&pipeline, &store);
        assert_eq!((a, b), (1, 2));
        assert!(store.close(a));
        assert!(!store.close(a), "double close is a no-op");
        assert!(matches!(store.view(a), Err(SessionError::NotFound(1))));
        let stats = store.stats();
        assert_eq!((stats.created, stats.closed, stats.active), (2, 1, 1));
    }

    #[test]
    fn patch_edit_dirties_exactly_one_function() {
        let pipeline = Pipeline::new();
        let store = store();
        let (id, cold) = mp3_session(&pipeline, &store);
        let before = pipeline.stats().rows;
        // An op-class change (add → multiply): structurally dirty. A
        // constant-only tweak would be clean — operand values are not part
        // of block identity because Algorithms 1 and 2 never read them.
        let edit = SourceEdit::Patch {
            find: "checksum = (checksum ^ mono) + (mono & 255);",
            replace: "checksum = (checksum ^ mono) * (mono & 255);",
        };
        let (report, view) = store.edit(&pipeline, id, "sink", &edit).expect("edits");
        assert_eq!(report.dirty_functions, 1, "one function structurally changed");
        assert_eq!(report.added_functions + report.removed_functions, 0);
        assert!(report.dirty_blocks > 0);
        let after = pipeline.stats().rows;
        assert_eq!(after.misses, before.misses + 1, "exactly the dirty function recomputed");
        // Untouched processes splice bit-identically from the cold run.
        for (cold_point, warm_point) in cold.sweep.iter().zip(&view.sweep) {
            for (cold_proc, warm_proc) in cold_point.processes.iter().zip(&warm_point.processes) {
                if cold_proc.process != "sink" {
                    assert_eq!(cold_proc.report, warm_proc.report);
                }
            }
        }
    }

    #[test]
    fn whitespace_edit_dirties_nothing() {
        let pipeline = Pipeline::new();
        let store = store();
        let (id, _) = mp3_session(&pipeline, &store);
        let before = pipeline.stats().rows;
        let source = format!("// a comment\n{}", mp3::sink_source());
        let (report, _) =
            store.edit(&pipeline, id, "sink", &SourceEdit::Full(&source)).expect("edits");
        assert_eq!(report.dirty_functions, 0, "comment-only edit is structurally clean");
        assert_eq!(pipeline.stats().rows.misses, before.misses, "nothing recomputed");
    }

    #[test]
    fn patch_must_match_exactly_once() {
        let pipeline = Pipeline::new();
        let store = store();
        let (id, _) = mp3_session(&pipeline, &store);
        let miss = SourceEdit::Patch { find: "no such text", replace: "x" };
        assert_eq!(
            store.edit(&pipeline, id, "sink", &miss).expect_err("rejects"),
            SessionError::PatchMismatch { matches: 0 }
        );
        let broken = SourceEdit::Full("int main( {");
        let err = store.edit(&pipeline, id, "sink", &broken).expect_err("rejects");
        assert!(matches!(err, SessionError::Pipeline(_)));
        // The failed edits left the session intact.
        store.view(id).expect("still serves");
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let pipeline = Pipeline::new();
        // Two mp3 sessions do not fit 20 KiB of key bytes.
        let store = SessionStore::new(20 << 10, Duration::from_secs(3600));
        let (a, _) = mp3_session(&pipeline, &store);
        let (b, _) = mp3_session(&pipeline, &store);
        assert!(matches!(store.view(a), Err(SessionError::NotFound(_))));
        store.view(b).expect("the newest session survives");
        assert!(store.stats().evicted >= 1);
    }

    #[test]
    fn ttl_expires_idle_sessions() {
        let pipeline = Pipeline::new();
        let store = SessionStore::new(u64::MAX, Duration::ZERO);
        let (id, _) = mp3_session(&pipeline, &store);
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(store.view(id), Err(SessionError::NotFound(_))));
        assert_eq!(store.stats().expired, 1);
    }
}
