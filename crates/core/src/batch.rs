//! Batched, data-parallel execution of Algorithm 1 over many blocks.
//!
//! The per-block kernel ([`crate::schedule::schedule_block_prepared`])
//! already runs on flat data; the next step is amortizing the cycle loop
//! across *many* blocks at once. Two independent levers are combined:
//!
//! 1. **Identical-shape dedup.** Algorithm 1 is a pure function of
//!    `(schedule domain, canonical block key)`, and real applications
//!    repeat small blocks heavily (loop headers, glue blocks, empty join
//!    blocks). Before anything is simulated, blocks with bit-identical
//!    canonical DFG encodings ([`tlm_cdfg::dfg::schedule_key`]) are folded
//!    into one representative solve whose result is fanned back out to
//!    every duplicate.
//! 2. **Lane-sliced batches.** The surviving unique blocks are grouped by
//!    op count, and up to [`MAX_LANES`] same-count blocks are simulated in
//!    lockstep by `schedule_lanes`: op-state bitsets are packed one `u64`
//!    word per op with one *bit per lane*, and the per-stage slot counters
//!    are laid out lane-contiguous (`slot * lanes + lane`) so the phase-1
//!    counter decrements run as a branch-free strip across the whole batch
//!    instead of once per block — and the per-solve fixed costs (arena
//!    sizing, pipeline-geometry fills), which dominate on the small blocks
//!    real modules are made of, are paid once per unit instead of once per
//!    block. Blocks in a batch are independent simulations, so lockstep
//!    interleaving is **bit-identical** to per-block execution by
//!    construction; the per-lane phases mirror the scalar kernel's
//!    iteration order exactly (asserted against the reference kernel by
//!    `tests/kernel_differential.rs`).
//!
//! Lanes carry their own op classes, dependence CSRs and issue orders, so
//! *any* same-count blocks may share a batch; correctness never depends on
//! which lanes end up together. Finer *shape classing* — the op-class
//! histogram plus a DFG edge-structure hash — is applied only where it can
//! matter: a group larger than [`MAX_LANES`] is ordered by shape class
//! before it is chunked, so similar blocks (which finish at similar
//! cycles) share a unit and little lockstep time is spent dragging
//! finished lanes. Empty and single-op blocks (which the scalar kernel
//! answers in closed form) and groups or chunk tails under [`MIN_LANES`]
//! (too few lanes to amortize the strip sweep) fall back to the per-block
//! kernel — which still profits from the dedup fold.
//!
//! [`batch_stats`] exposes process-wide dedup and occupancy counters in
//! the same style as [`crate::schedule::scratch_stats`]; `tlm-serve`
//! re-exports them on `/metrics` and `estperf` records them per run.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tlm_cdfg::dfg::Dfg;
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::parallel::par_map;
use crate::pum::SchedulingPolicy;
use crate::schedule::{
    class_index, grow, schedule_block_prepared, IssueTable, ScheduleResult, ScheduleScratch,
    CYCLE_LIMIT, N_CLASSES,
};

/// Lanes per lane-sliced solve: one `u64` state word packs one bit per
/// lane, so a batch is at most the word width.
pub const MAX_LANES: usize = 64;

/// Minimum lanes for the lane-sliced kernel to engage. Below this the
/// per-block kernel wins: its phase 1 walks only *occupied* slots, while
/// the lockstep strip sweeps every slot row across every lane, so the
/// strip needs enough lanes to amortize — measured on the mp3/image mix,
/// units under ~8 lanes cost more than the scalar solves they replace.
/// Representatives in smaller groups fall back to the per-block kernel
/// (which still benefits from dedup).
pub const MIN_LANES: usize = 8;

/// Minimum total op latency (cycles, `IssueTable::class_latency`) for a
/// block to be lane-eligible. The lane kernel's win is turning
/// long-latency *drain* cycles into branch-free phase-1 strips shared
/// across lanes; its cost is the lane-strided state layout, which makes
/// the per-lane phases 2–3 touch one cache line per word where the
/// per-block kernel touches contiguous state. Issue-dominated blocks
/// (every op a few cycles end to end) spend most cycles in phases 2–3, so
/// lanes lose there — measured on 7-op blocks, an all-short-op mix is
/// ~20% slower lane-sliced at 64 lanes while the same shape with one
/// 32-cycle divide breaks even at 16 lanes and wins beyond. A block
/// qualifies when *any* of its ops has total latency at or past this
/// threshold (one long op is enough to drain-dominate a small block);
/// 16 sits between microblaze-like's multiply (7 cycles end to end) and
/// divide (36).
pub const LANE_MIN_DRAIN: u64 = 16;

/// One block submitted to a batch solve. All references are borrowed from
/// the caller's prepared inputs (see
/// [`PreparedModule`](crate::annotate::PreparedModule)); the item itself
/// is a cheap `Copy` bundle.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// The block's canonical schedule key ([`tlm_cdfg::dfg::schedule_key`]);
    /// identical keys are folded into one solve.
    pub key: &'a [u8],
    /// [`key_hash`] of `key`, precomputed at preparation time.
    pub key_hash: u64,
    /// The block itself.
    pub block: &'a BlockData,
    /// The block's dependence graph.
    pub dfg: &'a Dfg,
    /// Dependence heights (read only under the List/ALAP policies; pass
    /// `&[]` otherwise, as for the per-block kernel).
    pub heights: &'a [usize],
    /// Function id, for error reporting.
    pub func: FuncId,
    /// Block id, for error reporting.
    pub block_id: BlockId,
}

/// Occupancy histogram bucket labels, least to most occupied. Bucket `1`
/// counts scalar-fallback solves (singleton units).
pub const OCCUPANCY_BUCKETS: [&str; 5] = ["1", "2-7", "8-31", "32-63", "64"];

#[inline]
fn occupancy_bucket(lanes: usize) -> usize {
    match lanes {
        0..=1 => 0,
        2..=7 => 1,
        8..=31 => 2,
        32..=63 => 3,
        _ => 4,
    }
}

static BATCH_BLOCKS: AtomicU64 = AtomicU64::new(0);
static BATCH_DEDUP_HITS: AtomicU64 = AtomicU64::new(0);
static BATCH_UNIQUE_SOLVES: AtomicU64 = AtomicU64::new(0);
static BATCH_LANE_RUNS: AtomicU64 = AtomicU64::new(0);
static BATCH_OCCUPANCY: [AtomicU64; 5] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Batched-kernel effectiveness counters (process-wide totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Blocks submitted to batch planning.
    pub blocks: u64,
    /// Blocks folded into another block's solve (identical canonical key).
    pub dedup_hits: u64,
    /// Representative solves actually planned (blocks − dedup hits).
    pub unique_solves: u64,
    /// Lane-sliced kernel invocations (units of ≥ [`MIN_LANES`] lanes).
    pub lane_runs: u64,
    /// Solve units per occupancy bucket ([`OCCUPANCY_BUCKETS`]).
    pub occupancy: [u64; 5],
}

/// Snapshot of the batch dedup/occupancy counters, summed over all threads
/// since process start (same contract as
/// [`scratch_stats`](crate::schedule::scratch_stats)).
pub fn batch_stats() -> BatchStats {
    let mut occupancy = [0u64; 5];
    for (slot, counter) in occupancy.iter_mut().zip(&BATCH_OCCUPANCY) {
        *slot = counter.load(Ordering::Relaxed);
    }
    BatchStats {
        blocks: BATCH_BLOCKS.load(Ordering::Relaxed),
        dedup_hits: BATCH_DEDUP_HITS.load(Ordering::Relaxed),
        unique_solves: BATCH_UNIQUE_SOLVES.load(Ordering::Relaxed),
        lane_runs: BATCH_LANE_RUNS.load(Ordering::Relaxed),
        occupancy,
    }
}

/// Hash of a canonical schedule key for [`BatchItem::key_hash`]: FNV-1a
/// folded over 8-byte words. Keys are short (~5 bytes per op) and the
/// dedup table compares full keys on every hit anyway, so a word-granular
/// fold is enough. Callers compute this once per block at preparation
/// time (alongside the key itself) so batch planning — which runs per
/// sweep point — only probes.
pub fn key_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(0x0100_0000_01b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Shape class of a block: op count, op-class histogram and an FNV hash of
/// the DFG edge structure. Used to order oversized same-count groups so
/// statistically similar schedules share a unit (a coherence heuristic —
/// see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ShapeClass {
    n: usize,
    hist: [u16; N_CLASSES],
    edge_hash: u64,
}

#[inline]
fn fnv_step(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn shape_class(item: &BatchItem<'_>) -> ShapeClass {
    let mut hist = [0u16; N_CLASSES];
    for op in &item.block.ops {
        let slot = &mut hist[class_index(op.class())];
        *slot = slot.saturating_add(1);
    }
    let mut edge_hash = 0xcbf2_9ce4_8422_2325u64;
    for preds in &item.dfg.preds {
        edge_hash = fnv_step(edge_hash, preds.len() as u64);
        for &p in preds {
            edge_hash = fnv_step(edge_hash, p as u64);
        }
    }
    ShapeClass { n: item.block.ops.len(), hist, edge_hash }
}

/// The solve plan for a batch of items: which item each duplicate resolves
/// to, and the solve units (lane batches and scalar singletons) covering
/// every representative exactly once.
#[derive(Debug)]
pub struct BatchPlan {
    /// `rep_of[i]` is the dense *rank* — an index into
    /// [`BatchPlan::reps`] — of the item whose solve serves item `i`.
    /// Ranks keep the solve-side result buffer sized by unique solves, not
    /// by batch size (most items are duplicates on real batches).
    rep_of: Vec<u32>,
    /// Representative item indices in first-appearance order; `reps[rank]`
    /// is the item solved on behalf of every item with that `rep_of` rank.
    reps: Vec<u32>,
    /// Representatives solved by the per-block kernel: empty and single-op
    /// blocks (closed-form in the scalar kernel), issue-dominated blocks
    /// (no op reaching [`LANE_MIN_DRAIN`]), groups and chunk tails under
    /// [`MIN_LANES`].
    scalars: Vec<u32>,
    /// Lane units in first-appearance order: [`MIN_LANES`] ..=
    /// [`MAX_LANES`] items of one op count each, run by `schedule_lanes`.
    units: Vec<Vec<u32>>,
}

impl BatchPlan {
    /// Plans `items`: folds identical keys, groups lane-eligible
    /// representatives (≥ 2 ops, drain-dominated per [`LANE_MIN_DRAIN`])
    /// by op count and chunks each group into units of at most
    /// [`MAX_LANES`] (ordering a group by shape class first when it spans
    /// several units). Bumps the process-wide [`batch_stats`] counters.
    pub fn of(table: &IssueTable, items: &[BatchItem<'_>]) -> BatchPlan {
        let mut rep_of = vec![0u32; items.len()];
        // Open-addressed dedup table (linear probing, ≤50% load): slots
        // hold item indices, hashes come precomputed on the items
        // ([`BatchItem::key_hash`]) and every hit compares the full keys,
        // so collisions only cost probes. This replaces a `HashMap` whose
        // per-entry machinery dominated planning time on real batches of
        // tiny keys.
        let cap = (items.len().max(8) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut dedup: Vec<u32> = vec![u32::MAX; cap];
        let mut reps: Vec<u32> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let mut slot = item.key_hash as usize & mask;
            rep_of[i] = loop {
                let rank = dedup[slot];
                if rank == u32::MAX {
                    dedup[slot] = reps.len() as u32;
                    reps.push(i as u32);
                    break dedup[slot];
                }
                if items[reps[rank as usize] as usize].key == item.key {
                    break rank;
                }
                slot = (slot + 1) & mask;
            };
        }
        // Group representatives by op count, keeping first-appearance
        // order so planning is deterministic. Real batches have a handful
        // of distinct op counts, so a linear scan beats a map.
        let mut scalars: Vec<u32> = Vec::new();
        let mut group_of_count: Vec<(usize, usize)> = Vec::new();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for &r in &reps {
            let item = &items[r as usize];
            let n = item.block.ops.len();
            let drained = item
                .block
                .ops
                .iter()
                .any(|op| table.class_latency(class_index(op.class())) >= LANE_MIN_DRAIN);
            if n < 2 || !drained {
                scalars.push(r);
                continue;
            }
            let slot = match group_of_count.iter().find(|&&(count, _)| count == n) {
                Some(&(_, slot)) => slot,
                None => {
                    groups.push(Vec::new());
                    group_of_count.push((n, groups.len() - 1));
                    groups.len() - 1
                }
            };
            groups[slot].push(r);
        }
        let mut units: Vec<Vec<u32>> = Vec::new();
        for mut group in groups {
            if group.len() < MIN_LANES {
                scalars.extend_from_slice(&group);
                continue;
            }
            if group.len() > MAX_LANES {
                // Only a group spanning several units cares which lanes
                // share one: order by shape class so similar blocks (and
                // similar finish cycles) sit together. The index tiebreak
                // keeps the order deterministic.
                group.sort_by_key(|&r| (shape_class(&items[r as usize]), r));
            }
            for chunk in group.chunks(MAX_LANES) {
                if chunk.len() < MIN_LANES {
                    scalars.extend_from_slice(chunk);
                } else {
                    units.push(chunk.to_vec());
                }
            }
        }
        let mut occupancy = [0u64; 5];
        occupancy[0] = scalars.len() as u64;
        for unit in &units {
            occupancy[occupancy_bucket(unit.len())] += 1;
        }
        BATCH_BLOCKS.fetch_add(items.len() as u64, Ordering::Relaxed);
        BATCH_DEDUP_HITS.fetch_add((items.len() - reps.len()) as u64, Ordering::Relaxed);
        BATCH_UNIQUE_SOLVES.fetch_add(reps.len() as u64, Ordering::Relaxed);
        BATCH_LANE_RUNS.fetch_add(units.len() as u64, Ordering::Relaxed);
        for (counter, count) in BATCH_OCCUPANCY.iter().zip(occupancy) {
            if count > 0 {
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
        BatchPlan { rep_of, reps, scalars, units }
    }

    /// The lane units (see [`BatchPlan::units`] layout notes).
    pub fn units(&self) -> &[Vec<u32>] {
        &self.units
    }

    /// Representatives assigned to the per-block kernel.
    pub fn scalars(&self) -> &[u32] {
        &self.scalars
    }

    /// The representative *rank* (index into [`BatchPlan::reps`]) serving
    /// each item.
    pub fn rep_of(&self) -> &[u32] {
        &self.rep_of
    }

    /// Representative item indices, ranked in first-appearance order.
    pub fn reps(&self) -> &[u32] {
        &self.reps
    }
}

/// Reusable lane-sliced simulation state for the lane kernel, plus an
/// inner per-block [`ScheduleScratch`] for the scalar fallback. One arena
/// per worker thread ([`with_batch_scratch`]); buffers grow on first use
/// and are then reused across batches.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Op-state words, one `u64` **per op** (bit = lane), three regions:
    /// committed / done / issued.
    state: Vec<u64>,
    /// Uncommitted-predecessor counts, `[op * lanes + lane]`.
    commit_pending: Vec<u32>,
    /// Dense class index, `[op * lanes + lane]`.
    op_class: Vec<u8>,
    /// Issue order, lane-major `[lane * n + i]` (walked sequentially per
    /// lane in phase 3).
    order: Vec<u32>,
    /// CSR successor offsets, lane-major `[lane * (n + 1) + i]`, relative
    /// to the lane's `succ` base.
    succ_off: Vec<u32>,
    /// CSR successor targets, per-lane regions concatenated.
    succ: Vec<u32>,
    /// CSR fill cursor, one lane at a time.
    cursor: Vec<u32>,
    /// Issue priorities, one lane at a time (List/ALAP only).
    priority: Vec<i64>,
    /// Slot regions, `[(stage_base + k) * lanes + lane]`. Unoccupied slots
    /// keep `slot_rem == 0` — the invariant that lets phase 1 sweep every
    /// slot branch-free.
    slot_op: Vec<u32>,
    slot_rem: Vec<u32>,
    /// Occupied slots per stage, `[stage * lanes + lane]`.
    stage_len: Vec<u32>,
    /// Cross-lane upper bound on `stage_len` per stage, raised at the two
    /// sites that grow a stage and never lowered. Phase 1 sweeps only
    /// `[0, stage_len_ub)` rows — everything past the bound holds
    /// `rem == 0` in every lane, so skipping it is bit-identical, and a
    /// stale-high bound only re-sweeps zero rows (never worse than the
    /// stage-capacity sweep it replaces).
    stage_len_ub: Vec<u32>,
    /// Free FU instances, `[fu * lanes + lane]`.
    fu_free: Vec<u32>,
    /// Per-pipe high-water marks, `[pipe * lanes + lane]`.
    pipe_hi: Vec<u32>,
    /// Cross-lane upper bound on `pipe_hi` per pipe, same contract as
    /// `stage_len_ub`.
    pipe_hi_ub: Vec<u32>,
    /// First slot index of each stage.
    stage_base: Vec<usize>,
    /// Issue/finish cycles, lane-major `[lane * n + i]`; `u64::MAX` means
    /// "never" (transparent ops).
    issue_cycle: Vec<u64>,
    finish_cycle: Vec<u64>,
    /// Per-lane resolved-op counts.
    done_count: Vec<u32>,
    /// Per-lane phase-3 order cursors.
    issue_head: Vec<u32>,
    /// Per-lane latest finish cycle.
    last_finish: Vec<u64>,
    /// Per-lane `succ` region starts (`lanes + 1` entries).
    edge_base: Vec<usize>,
    /// Worklist for the transparent-resolution cascade.
    stack: Vec<u32>,
    /// Scalar fallback arena for singleton units.
    inner: ScheduleScratch,
}

impl BatchScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Sizes every buffer for `lanes` blocks of `n` ops with `edge_total`
    /// dependence edges under `table`'s geometry; fills `stage_base` and
    /// returns the total slot capacity.
    fn prepare(&mut self, table: &IssueTable, n: usize, lanes: usize, edge_total: usize) -> usize {
        let mut grew = false;
        grow(&mut self.state, 3 * n, &mut grew);
        grow(&mut self.commit_pending, n * lanes, &mut grew);
        grow(&mut self.op_class, n * lanes, &mut grew);
        grow(&mut self.order, n * lanes, &mut grew);
        grow(&mut self.succ_off, (n + 1) * lanes, &mut grew);
        grow(&mut self.succ, edge_total, &mut grew);
        grow(&mut self.cursor, n, &mut grew);
        if matches!(table.policy, SchedulingPolicy::List | SchedulingPolicy::Alap) {
            grow(&mut self.priority, n, &mut grew);
        }
        let stages = table.stage_width.len();
        grow(&mut self.stage_base, stages, &mut grew);
        let mut slots = 0usize;
        for (j, &width) in table.stage_width.iter().enumerate() {
            self.stage_base[j] = slots;
            slots += width.min(n);
        }
        grow(&mut self.slot_op, slots * lanes, &mut grew);
        grow(&mut self.slot_rem, slots * lanes, &mut grew);
        grow(&mut self.stage_len, stages * lanes, &mut grew);
        grow(&mut self.stage_len_ub, stages, &mut grew);
        grow(&mut self.fu_free, table.fu_quantity.len() * lanes, &mut grew);
        grow(&mut self.pipe_hi, (table.pipe_first.len() - 1) * lanes, &mut grew);
        grow(&mut self.pipe_hi_ub, table.pipe_first.len() - 1, &mut grew);
        grow(&mut self.issue_cycle, n * lanes, &mut grew);
        grow(&mut self.finish_cycle, n * lanes, &mut grew);
        grow(&mut self.done_count, lanes, &mut grew);
        grow(&mut self.issue_head, lanes, &mut grew);
        grow(&mut self.last_finish, lanes, &mut grew);
        grow(&mut self.edge_base, lanes + 1, &mut grew);
        self.stack.clear();
        let _ = grew;
        slots
    }
}

thread_local! {
    static BATCH_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::new());
}

/// Runs `f` with the calling thread's batch scratch arena.
///
/// # Panics
///
/// Panics if `f` re-enters `with_batch_scratch` on the same thread.
pub fn with_batch_scratch<R>(f: impl FnOnce(&mut BatchScratch) -> R) -> R {
    BATCH_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// The lane-sliced [`publish`](crate::schedule) cascade: marks `op`
/// committed in `lane`'s bit position, decrements its successors' pending
/// counts and resolves transparent dependents whose last predecessor this
/// was. Bit-for-bit the scalar cascade, restricted to one lane.
#[allow(clippy::too_many_arguments)]
#[inline]
fn publish_lane(
    op: usize,
    lane: usize,
    lanes: usize,
    transparent: &[bool; N_CLASSES],
    op_class: &[u8],
    committed: &mut [u64],
    done: &mut [u64],
    issued: &mut [u64],
    commit_pending: &mut [u32],
    succ_off: &[u32],
    succ: &[u32],
    stack: &mut Vec<u32>,
    done_count: &mut u32,
) {
    let lbit = 1u64 << lane;
    if committed[op] & lbit != 0 {
        return; // successors were already notified
    }
    committed[op] |= lbit;
    stack.push(op as u32);
    while let Some(p) = stack.pop() {
        let (lo, hi) = (succ_off[p as usize] as usize, succ_off[p as usize + 1] as usize);
        for &s in &succ[lo..hi] {
            let s = s as usize;
            let pending = &mut commit_pending[s * lanes + lane];
            *pending -= 1;
            if *pending == 0
                && transparent[op_class[s * lanes + lane] as usize]
                && done[s] & lbit == 0
            {
                done[s] |= lbit;
                issued[s] |= lbit;
                *done_count += 1;
                if committed[s] & lbit == 0 {
                    committed[s] |= lbit;
                    stack.push(s as u32);
                }
            }
        }
    }
}

/// Simulates a unit of 2 ..= [`MAX_LANES`] same-op-count blocks in
/// lockstep (the planner only forms units of ≥ [`MIN_LANES`], but any
/// width from 2 up is correct). Results are per lane, in `unit` order,
/// and bit-identical to running the per-block kernel on each lane alone.
fn schedule_lanes(
    table: &IssueTable,
    s: &mut BatchScratch,
    items: &[BatchItem<'_>],
    unit: &[u32],
) -> Vec<Result<ScheduleResult, EstimateError>> {
    let lanes = unit.len();
    let n = items[unit[0] as usize].block.ops.len();
    debug_assert!((2..=MAX_LANES).contains(&lanes));
    debug_assert!(n >= 2);
    let n_stages = table.n_stages;
    let stages = table.stage_width.len();
    let n_pipes = table.pipe_first.len() - 1;
    let fu_n = table.fu_quantity.len();

    let mut edge_total = 0usize;
    for (lane, &u) in unit.iter().enumerate() {
        s.edge_base.resize(lanes + 1, 0);
        s.edge_base[lane] = edge_total;
        edge_total += items[u as usize].dfg.preds.iter().map(Vec::len).sum::<usize>();
    }
    let slots = s.prepare(table, n, lanes, edge_total);
    s.edge_base[lanes] = edge_total;

    // Carve the arenas into named views (distinct struct fields, so the
    // borrows split).
    let state = &mut s.state[..3 * n];
    state.fill(0);
    let (committed, rest) = state.split_at_mut(n);
    let (done, issued) = rest.split_at_mut(n);
    let commit_pending = &mut s.commit_pending[..n * lanes];
    let op_class = &mut s.op_class[..n * lanes];
    let order = &mut s.order[..n * lanes];
    let succ_off = &mut s.succ_off[..(n + 1) * lanes];
    let succ = &mut s.succ[..edge_total];
    let cursor = &mut s.cursor[..n];
    let priority = &mut s.priority[..];
    let slot_op = &mut s.slot_op[..slots * lanes];
    let slot_rem = &mut s.slot_rem[..slots * lanes];
    slot_rem.fill(0);
    let stage_len = &mut s.stage_len[..stages * lanes];
    stage_len.fill(0);
    let stage_len_ub = &mut s.stage_len_ub[..stages];
    stage_len_ub.fill(0);
    let fu_free = &mut s.fu_free[..fu_n * lanes];
    for (f, &quantity) in table.fu_quantity.iter().enumerate() {
        fu_free[f * lanes..(f + 1) * lanes].fill(quantity);
    }
    let pipe_hi = &mut s.pipe_hi[..n_pipes * lanes];
    pipe_hi.fill(0);
    let pipe_hi_ub = &mut s.pipe_hi_ub[..n_pipes];
    pipe_hi_ub.fill(0);
    let stage_base = &s.stage_base[..stages];
    let issue_cycle = &mut s.issue_cycle[..n * lanes];
    issue_cycle.fill(u64::MAX);
    let finish_cycle = &mut s.finish_cycle[..n * lanes];
    finish_cycle.fill(u64::MAX);
    let done_count = &mut s.done_count[..lanes];
    done_count.fill(0);
    let issue_head = &mut s.issue_head[..lanes];
    issue_head.fill(0);
    let last_finish = &mut s.last_finish[..lanes];
    last_finish.fill(0);
    let edge_base = &s.edge_base[..lanes + 1];
    let stack = &mut s.stack;

    let mut results: Vec<Option<Result<ScheduleResult, EstimateError>>> = vec![None; lanes];
    let mut active: u64 = 0;

    // Per-lane setup, mirroring the scalar kernel's preamble: class map
    // (erroring at the first unmapped op), dependence CSR, issue order.
    for (lane, &u) in unit.iter().enumerate() {
        let item = &items[u as usize];
        debug_assert_eq!(item.block.ops.len(), n);
        let mut unmapped = None;
        for (i, op) in item.block.ops.iter().enumerate() {
            let class = op.class();
            let ci = class_index(class);
            if !table.mapped[ci] {
                unmapped = Some(class);
                break;
            }
            op_class[i * lanes + lane] = ci as u8;
        }
        if let Some(class) = unmapped {
            results[lane] = Some(Err(EstimateError::UnmappedClass { class }));
            continue;
        }
        let so = &mut succ_off[lane * (n + 1)..(lane + 1) * (n + 1)];
        so.fill(0);
        for (i, preds) in item.dfg.preds.iter().enumerate() {
            commit_pending[i * lanes + lane] = preds.len() as u32;
            for &p in preds {
                so[p + 1] += 1;
            }
        }
        for j in 1..=n {
            so[j] += so[j - 1];
        }
        cursor.copy_from_slice(&so[..n]);
        let ebase = edge_base[lane];
        for (i, preds) in item.dfg.preds.iter().enumerate() {
            for &p in preds {
                succ[ebase + cursor[p] as usize] = i as u32;
                cursor[p] += 1;
            }
        }
        let lane_order = &mut order[lane * n..(lane + 1) * n];
        for (i, slot) in lane_order.iter_mut().enumerate() {
            *slot = i as u32;
        }
        match table.policy {
            SchedulingPolicy::InOrder | SchedulingPolicy::Asap => {}
            SchedulingPolicy::List => {
                debug_assert_eq!(item.heights.len(), n, "List policy needs per-op heights");
                for (pri, &h) in priority[..n].iter_mut().zip(item.heights) {
                    *pri = -(h as i64);
                }
                lane_order.sort_unstable_by_key(|&i| (priority[i as usize], i));
            }
            SchedulingPolicy::Alap => {
                debug_assert_eq!(item.heights.len(), n, "ALAP policy needs per-op heights");
                for (pri, &h) in priority[..n].iter_mut().zip(item.heights) {
                    *pri = h as i64;
                }
                lane_order.sort_unstable_by_key(|&i| (priority[i as usize], i));
            }
        }
        active |= 1u64 << lane;
    }

    // Source-transparent resolution before the first cycle, per lane.
    for lane in 0..lanes {
        if active & (1u64 << lane) == 0 {
            continue;
        }
        let lbit = 1u64 << lane;
        for i in 0..n {
            if table.transparent[op_class[i * lanes + lane] as usize]
                && commit_pending[i * lanes + lane] == 0
                && done[i] & lbit == 0
            {
                done[i] |= lbit;
                issued[i] |= lbit;
                done_count[lane] += 1;
                publish_lane(
                    i,
                    lane,
                    lanes,
                    &table.transparent,
                    op_class,
                    committed,
                    done,
                    issued,
                    commit_pending,
                    &succ_off[lane * (n + 1)..(lane + 1) * (n + 1)],
                    &succ[edge_base[lane]..edge_base[lane + 1]],
                    stack,
                    &mut done_count[lane],
                );
            }
        }
    }

    let in_order = table.policy == SchedulingPolicy::InOrder;
    let mut any_scheduled: u64 = 0;
    let mut cycle: u64 = 0;
    let mut live: u64 = 0;
    for (lane, &dc) in done_count[..lanes].iter().enumerate() {
        if active & (1u64 << lane) != 0 && (dc as usize) < n {
            live |= 1u64 << lane;
        }
    }
    // Lanes whose phases 2–3 could differ from a no-op this cycle. A
    // lane's advclock/issue state only changes through a slot counter
    // reaching zero (phase 1, tracked per cycle in `completed`) or through
    // its own phase-2/3 action last cycle (tracked here) — any other cycle
    // would re-stall every slot and re-reject every issue identically, so
    // skipping it is bit-identical and turns long-latency drain cycles
    // into a pure phase-1 strip.
    let mut attention: u64 = live;

    while live != 0 {
        if cycle > CYCLE_LIMIT {
            for (lane, &u) in unit.iter().enumerate() {
                if live & (1u64 << lane) != 0 {
                    let item = &items[u as usize];
                    results[lane] = Some(Err(EstimateError::Deadlock {
                        func: item.func,
                        block: item.block_id,
                        cycle,
                    }));
                }
            }
            active &= !live;
            break;
        }
        let mut progress: u64 = 0;
        let mut completed: u64 = 0;

        // Phase 1, lane-sliced: sweep every slot row across all lanes with
        // a branch-free decrement (empty and stalled slots both hold 0, so
        // `rem > 0` is exactly "occupied and still counting"), collecting a
        // completion mask per row; completions at the commit stage publish.
        for (p, &pipe_hi) in pipe_hi_ub[..n_pipes].iter().enumerate() {
            for s_local in 0..pipe_hi as usize {
                let j = table.pipe_first[p] + s_local;
                // Occupied slots are swap-remove compacted into
                // `[0, stage_len)` per lane (phase 2), so rows past the
                // cross-lane bound hold `rem == 0` in every lane and the
                // sweep can stop there — small blocks in wide stages would
                // otherwise pay for capacity they never fill.
                for k in 0..stage_len_ub[j] as usize {
                    let row = (stage_base[j] + k) * lanes;
                    let mut complete: u64 = 0;
                    for (lane, rem) in slot_rem[row..row + lanes].iter_mut().enumerate() {
                        let dec = u32::from(*rem > 0);
                        progress |= u64::from(dec) << lane;
                        complete |= u64::from(*rem == 1) << lane;
                        *rem -= dec;
                    }
                    completed |= complete;
                    while complete != 0 {
                        let lane = complete.trailing_zeros() as usize;
                        complete &= complete - 1;
                        let op = slot_op[row + lane] as usize;
                        if s_local == table.commit_stage[op_class[op * lanes + lane] as usize] {
                            publish_lane(
                                op,
                                lane,
                                lanes,
                                &table.transparent,
                                op_class,
                                committed,
                                done,
                                issued,
                                commit_pending,
                                &succ_off[lane * (n + 1)..(lane + 1) * (n + 1)],
                                &succ[edge_base[lane]..edge_base[lane + 1]],
                                stack,
                                &mut done_count[lane],
                            );
                        }
                    }
                }
            }
        }

        // Phases 2 and 3, per attended live lane: an exact transcription
        // of the scalar kernel's advclock and AssignOps — lanes are
        // independent simulations, so running them back to back inside one
        // cycle is the same interleaving the per-block kernel produces.
        let act = live & (attention | completed);
        attention = 0;
        for lane in 0..lanes {
            let lbit = 1u64 << lane;
            if act & lbit == 0 {
                continue;
            }
            // Temporarily clear the lane's phase-1 progress bit so the
            // action sites below reveal whether *this* lane's phases 2–3
            // changed anything (which earns it attention next cycle).
            let phase1_progress = progress & lbit;
            progress &= !lbit;

            // Phase 2: advclock, last stage backwards, swap-remove order.
            for p in 0..n_pipes {
                let first = table.pipe_first[p];
                let np = table.pipe_first[p + 1] - first;
                let mut hi = pipe_hi[p * lanes + lane] as usize;
                for s_local in (0..hi).rev() {
                    let j = first + s_local;
                    let base = stage_base[j];
                    let mut idx = 0usize;
                    while idx < stage_len[j * lanes + lane] as usize {
                        if slot_rem[(base + idx) * lanes + lane] > 0 {
                            idx += 1;
                            continue;
                        }
                        let op = slot_op[(base + idx) * lanes + lane] as usize;
                        let ci = op_class[op * lanes + lane] as usize;
                        if s_local + 1 == np {
                            // Leaves the pipeline.
                            stage_len[j * lanes + lane] -= 1;
                            let top = stage_len[j * lanes + lane] as usize;
                            slot_op[(base + idx) * lanes + lane] =
                                slot_op[(base + top) * lanes + lane];
                            slot_rem[(base + idx) * lanes + lane] =
                                slot_rem[(base + top) * lanes + lane];
                            // Keep the vacated top slot at 0 for phase 1's
                            // branch-free sweep.
                            slot_rem[(base + top) * lanes + lane] = 0;
                            let fu = table.fu_plus1[ci * n_stages + s_local];
                            if fu != 0 {
                                fu_free[(fu as usize - 1) * lanes + lane] += 1;
                            }
                            done[op] |= lbit;
                            done_count[lane] += 1;
                            finish_cycle[lane * n + op] = cycle;
                            last_finish[lane] = last_finish[lane].max(cycle);
                            progress |= lbit;
                            continue; // same idx now holds the swapped slot
                        }
                        let ns = s_local + 1;
                        let room =
                            (stage_len[(j + 1) * lanes + lane] as usize) < table.stage_width[j + 1];
                        let operands_ok =
                            ns != table.demand_stage[ci] || commit_pending[op * lanes + lane] == 0;
                        let fu_next = table.fu_plus1[ci * n_stages + ns];
                        let fu_ok =
                            fu_next == 0 || fu_free[(fu_next as usize - 1) * lanes + lane] > 0;
                        if room && operands_ok && fu_ok {
                            stage_len[j * lanes + lane] -= 1;
                            let top = stage_len[j * lanes + lane] as usize;
                            slot_op[(base + idx) * lanes + lane] =
                                slot_op[(base + top) * lanes + lane];
                            slot_rem[(base + idx) * lanes + lane] =
                                slot_rem[(base + top) * lanes + lane];
                            slot_rem[(base + top) * lanes + lane] = 0;
                            let fu = table.fu_plus1[ci * n_stages + s_local];
                            if fu != 0 {
                                fu_free[(fu as usize - 1) * lanes + lane] += 1;
                            }
                            if fu_next != 0 {
                                fu_free[(fu_next as usize - 1) * lanes + lane] -= 1;
                            }
                            let nbase = stage_base[j + 1];
                            let nlen = stage_len[(j + 1) * lanes + lane] as usize;
                            slot_op[(nbase + nlen) * lanes + lane] = op as u32;
                            slot_rem[(nbase + nlen) * lanes + lane] =
                                table.durations[ci * n_stages + ns];
                            stage_len[(j + 1) * lanes + lane] += 1;
                            stage_len_ub[j + 1] = stage_len_ub[j + 1].max(nlen as u32 + 1);
                            hi = hi.max(s_local + 2);
                            pipe_hi_ub[p] = pipe_hi_ub[p].max(s_local as u32 + 2);
                            progress |= lbit;
                        } else {
                            idx += 1; // stalled
                        }
                    }
                }
                while hi > 0 && stage_len[(first + hi - 1) * lanes + lane] == 0 {
                    hi -= 1;
                }
                pipe_hi[p * lanes + lane] = hi as u32;
            }

            // Phase 3: AssignOps per the policy.
            let lane_order = &order[lane * n..(lane + 1) * n];
            let mut head = issue_head[lane] as usize;
            while head < n && issued[lane_order[head] as usize] & lbit != 0 {
                head += 1;
            }
            issue_head[lane] = head as u32;
            let mut stage0_open = 0usize;
            for p in 0..n_pipes {
                let j0 = table.pipe_first[p];
                stage0_open +=
                    table.stage_width[j0].saturating_sub(stage_len[j0 * lanes + lane] as usize);
            }
            'issue: for &ord in &lane_order[head..n] {
                if stage0_open == 0 {
                    break;
                }
                let op = ord as usize;
                if issued[op] & lbit != 0 {
                    continue;
                }
                let ci = op_class[op * lanes + lane] as usize;
                let ready = 0 != table.demand_stage[ci] || commit_pending[op * lanes + lane] == 0;
                if !ready {
                    if in_order {
                        break 'issue; // program order: nothing younger may pass
                    }
                    continue;
                }
                let fu0 = table.fu_plus1[ci * n_stages];
                let mut placed = false;
                for p in 0..n_pipes {
                    let j0 = table.pipe_first[p];
                    let room = (stage_len[j0 * lanes + lane] as usize) < table.stage_width[j0];
                    let fu_ok = fu0 == 0 || fu_free[(fu0 as usize - 1) * lanes + lane] > 0;
                    if room && fu_ok {
                        if fu0 != 0 {
                            fu_free[(fu0 as usize - 1) * lanes + lane] -= 1;
                        }
                        let base0 = stage_base[j0];
                        let len0 = stage_len[j0 * lanes + lane] as usize;
                        slot_op[(base0 + len0) * lanes + lane] = op as u32;
                        slot_rem[(base0 + len0) * lanes + lane] = table.durations[ci * n_stages];
                        stage_len[j0 * lanes + lane] += 1;
                        stage_len_ub[j0] = stage_len_ub[j0].max(len0 as u32 + 1);
                        let ph = &mut pipe_hi[p * lanes + lane];
                        *ph = (*ph).max(1);
                        pipe_hi_ub[p] = pipe_hi_ub[p].max(1);
                        stage0_open -= 1;
                        issued[op] |= lbit;
                        issue_cycle[lane * n + op] = cycle;
                        any_scheduled |= lbit;
                        progress |= lbit;
                        placed = true;
                        break;
                    }
                }
                if !placed && in_order {
                    break 'issue;
                }
            }

            if progress & lbit != 0 {
                attention |= lbit;
            }
            progress |= phase1_progress;
        }

        // Deadlocked lanes error out at this cycle, exactly as the scalar
        // kernel's progress check would; finished lanes leave the loop.
        let stalled = live & !progress;
        if stalled != 0 {
            for (lane, &u) in unit.iter().enumerate() {
                if stalled & (1u64 << lane) != 0 {
                    let item = &items[u as usize];
                    results[lane] = Some(Err(EstimateError::Deadlock {
                        func: item.func,
                        block: item.block_id,
                        cycle,
                    }));
                }
            }
            active &= !stalled;
            live &= !stalled;
        }
        for (lane, &dc) in done_count[..lanes].iter().enumerate() {
            if live & (1u64 << lane) != 0 && dc as usize == n {
                live &= !(1u64 << lane);
            }
        }
        cycle += 1;
    }

    for lane in 0..lanes {
        if results[lane].is_some() {
            continue; // already failed
        }
        let lbit = 1u64 << lane;
        debug_assert!(active & lbit != 0, "a successful lane stayed active");
        let raw_cycles = if any_scheduled & lbit != 0 { last_finish[lane] } else { 0 };
        let none_if_max = |c: u64| if c == u64::MAX { None } else { Some(c) };
        results[lane] = Some(Ok(ScheduleResult {
            cycles: raw_cycles.saturating_sub(table.fill_correction),
            raw_cycles,
            issue_cycle: issue_cycle[lane * n..(lane + 1) * n]
                .iter()
                .map(|&c| none_if_max(c))
                .collect(),
            finish_cycle: finish_cycle[lane * n..(lane + 1) * n]
                .iter()
                .map(|&c| none_if_max(c))
                .collect(),
        }));
    }
    results.into_iter().map(|r| r.expect("every lane resolved")).collect()
}

/// Runs the per-block kernel on one item (the closed-form / odd-shape
/// fallback).
fn solve_scalar(
    table: &IssueTable,
    scratch: &mut BatchScratch,
    item: &BatchItem<'_>,
) -> Result<Arc<ScheduleResult>, EstimateError> {
    schedule_block_prepared(
        table,
        &mut scratch.inner,
        item.block,
        item.dfg,
        item.heights,
        item.func,
        item.block_id,
    )
    .map(Arc::new)
}

/// Plans and solves a batch, optionally fanning the lane units out over
/// [`par_map`]. Results are per item, in input order; duplicates receive
/// clones of their representative's result (including cached errors, whose
/// location fields name the representative — the same sharing the schedule
/// cache already performs for identical keys).
pub fn solve_batch(
    table: &IssueTable,
    items: &[BatchItem<'_>],
    parallel: bool,
) -> Vec<Result<Arc<ScheduleResult>, EstimateError>> {
    let plan = BatchPlan::of(table, items);
    // Indexed by representative *rank*, so the buffer scales with unique
    // solves, not batch size.
    let mut rep_result: Vec<Option<Result<Arc<ScheduleResult>, EstimateError>>> =
        vec![None; plan.reps().len()];
    let rank_of = |rep: u32| plan.rep_of()[rep as usize] as usize;
    if parallel && plan.units().len() > 1 {
        let solved = par_map(plan.units(), |unit| {
            with_batch_scratch(|scratch| schedule_lanes(table, scratch, items, unit))
        });
        for (unit, unit_results) in plan.units().iter().zip(solved) {
            for (&rep, result) in unit.iter().zip(unit_results) {
                rep_result[rank_of(rep)] = Some(result.map(Arc::new));
            }
        }
        with_batch_scratch(|scratch| {
            for &rep in plan.scalars() {
                rep_result[rank_of(rep)] = Some(solve_scalar(table, scratch, &items[rep as usize]));
            }
        });
    } else {
        with_batch_scratch(|scratch| {
            for &rep in plan.scalars() {
                rep_result[rank_of(rep)] = Some(solve_scalar(table, scratch, &items[rep as usize]));
            }
            for unit in plan.units() {
                for (&rep, result) in unit.iter().zip(schedule_lanes(table, scratch, items, unit)) {
                    rep_result[rank_of(rep)] = Some(result.map(Arc::new));
                }
            }
        });
    }
    // Fan out: a representative takes (moves) its own result, duplicates
    // clone their representative's. Representatives are first occurrences,
    // so `reps[rank] <= i` and the forward pass always finds the rep's
    // entry already placed in `out`.
    let mut out: Vec<Result<Arc<ScheduleResult>, EstimateError>> = Vec::with_capacity(items.len());
    for (i, &rank) in plan.rep_of().iter().enumerate() {
        let rep = plan.reps()[rank as usize] as usize;
        let result = if rep == i {
            rep_result[rank as usize].take().expect("every representative is solved")
        } else {
            out[rep].clone()
        };
        out.push(result);
    }
    out
}

/// Schedules a batch of blocks on one thread: plan (dedup + shape
/// classing), lane-sliced solves, fan-out. The single-threaded benchmark
/// and test entry point; engine paths use [`solve_batch`] directly.
///
/// Each item's result is exactly what
/// [`schedule_block`](crate::schedule::schedule_block) would return for it
/// alone.
pub fn schedule_batch(
    table: &IssueTable,
    items: &[BatchItem<'_>],
) -> Vec<Result<Arc<ScheduleResult>, EstimateError>> {
    solve_batch(table, items, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::schedule::schedule_block;
    use tlm_cdfg::dfg::{block_dfg, schedule_key};
    use tlm_cdfg::ir::Module;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    /// Batches every block of `module` (with duplicates appended) and
    /// checks each result against the per-block kernel.
    fn batch_matches_scalar(src: &str, repeat: usize) {
        let module = module_of(src);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let table = IssueTable::build(&pum);
        let mut blocks = Vec::new();
        for (fid, func) in module.functions_iter() {
            for (bid, block) in func.blocks_iter() {
                let dfg = block_dfg(block);
                let key = schedule_key(block, &dfg);
                let heights = dfg.heights();
                blocks.push((fid, bid, block, dfg, key, heights));
            }
        }
        let items: Vec<BatchItem<'_>> = blocks
            .iter()
            .flat_map(|(fid, bid, block, dfg, key, heights)| {
                let item = BatchItem {
                    key,
                    key_hash: key_hash(key),
                    block,
                    dfg,
                    heights,
                    func: *fid,
                    block_id: *bid,
                };
                (0..repeat).map(move |_| item)
            })
            .collect();
        let batched = schedule_batch(&table, &items);
        assert_eq!(batched.len(), items.len());
        for (item, result) in items.iter().zip(&batched) {
            let direct = schedule_block(&pum, item.block, item.dfg, item.func, item.block_id);
            assert_eq!(
                direct.as_ref().ok(),
                result.as_ref().ok().map(|arc| &**arc),
                "batched result diverges at {}/{}",
                item.func,
                item.block_id
            );
        }
    }

    const SRC: &str = "
        int t[16];
        int f(int a, int b, int c, int d) { return (a + b) * (c + d) - a / b; }
        int g(int a) { int s = 0; for (int i = 0; i < a; i++) { s += t[i] * i; } return s; }
    ";

    #[test]
    fn batched_results_match_per_block_kernel() {
        batch_matches_scalar(SRC, 1);
    }

    #[test]
    fn duplicates_are_folded_and_fanned_out() {
        let before = batch_stats();
        batch_matches_scalar(SRC, 3);
        let after = batch_stats();
        assert!(after.dedup_hits > before.dedup_hits, "triplicated blocks dedup");
        assert!(after.blocks - before.blocks >= 3 * (after.unique_solves - before.unique_solves));
    }

    #[test]
    fn occupancy_histogram_counts_every_unit() {
        let before = batch_stats();
        batch_matches_scalar(SRC, 1);
        let after = batch_stats();
        let units = after.occupancy.iter().sum::<u64>() - before.occupancy.iter().sum::<u64>();
        assert!(units > 0, "at least one unit planned");
        let solves = after.unique_solves - before.unique_solves;
        assert!(units <= solves, "units never outnumber representative solves");
    }

    #[test]
    fn empty_batch_is_empty() {
        let pum = library::microblaze_like(0, 0);
        let table = IssueTable::build(&pum);
        assert!(schedule_batch(&table, &[]).is_empty());
    }
}
