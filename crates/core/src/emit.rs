//! Timed-code generation: the paper's "annotated C" output (§4.3).
//!
//! The paper regenerates C source for each process with a `wait(pid,
//! cycles)` call appended to every basic block, then links it with a
//! SystemC wrapper. In this reproduction the executable timed TLM is built
//! directly from the [`TimedModule`] (see `tlm-platform`), but the annotated
//! source view is still produced here: it is the artifact a user inspects
//! to see *where* estimated time goes, and it keeps the reproduction's
//! pipeline shape faithful to the original tool.
//!
//! Structured control flow was lowered to a CFG before annotation, so the
//! emitted C uses the standard label/goto form.

use std::fmt::Write as _;

use tlm_cdfg::ir::{Module, Op, OpKind, Terminator};
use tlm_cdfg::{ArrayId, FuncId};

use crate::annotate::TimedModule;

/// Renders the whole timed module as annotated C.
pub fn emit_timed_c(timed: &TimedModule) -> String {
    let module = timed.module();
    let mut out = String::new();
    let _ = writeln!(out, "/* Timed code generated for PE model `{}`.", timed.pum_name());
    let _ = writeln!(out, " * wait(pid, cycles) accumulates the estimated delay of the");
    let _ = writeln!(out, " * preceding basic block (applied at transaction boundaries). */");
    let _ = writeln!(out, "#include \"tlm_wrapper.h\"\n");
    for array in &module.arrays {
        if matches!(array.scope, tlm_cdfg::ir::ArrayScope::Global) {
            if array.init.is_empty() {
                let _ = writeln!(out, "static int {}[{}];", c_name(&array.name), array.len);
            } else {
                let vals: Vec<String> =
                    array.init.iter().map(std::string::ToString::to_string).collect();
                let _ = writeln!(
                    out,
                    "static int {}[{}] = {{{}}};",
                    c_name(&array.name),
                    array.len,
                    vals.join(", ")
                );
            }
        }
    }
    out.push('\n');
    for (fid, _) in module.functions_iter() {
        out.push_str(&emit_function(timed, fid));
        out.push('\n');
    }
    out
}

/// Renders one function as annotated C.
///
/// # Panics
///
/// Panics if `fid` is out of range for the module.
pub fn emit_function(timed: &TimedModule, fid: FuncId) -> String {
    let module = timed.module();
    let func = module.function(fid);
    let mut out = String::new();
    let params: Vec<String> = func.params.iter().map(|p| format!("int {p}")).collect();
    let _ = writeln!(
        out,
        "{} {}({}) {{",
        if func.returns_value { "int" } else { "void" },
        c_name(&func.name),
        params.join(", ")
    );
    if func.num_vregs as usize > func.params.len() {
        let regs: Vec<String> =
            (func.params.len()..func.num_vregs as usize).map(|i| format!("v{i}")).collect();
        let _ = writeln!(out, "    int {};", regs.join(", "));
    }
    for &aid in &func.local_arrays {
        let array = module.array(aid);
        let local = array.name.rsplit("::").next().unwrap_or(&array.name);
        if array.init.is_empty() {
            let _ = writeln!(out, "    int {}[{}];", c_name(local), array.len);
        } else {
            let vals: Vec<String> =
                array.init.iter().map(std::string::ToString::to_string).collect();
            let _ = writeln!(
                out,
                "    int {}[{}] = {{{}}};",
                c_name(local),
                array.len,
                vals.join(", ")
            );
        }
    }
    for (bid, block) in func.blocks_iter() {
        let _ = writeln!(out, "bb{}:", bid.0);
        for op in &block.ops {
            let _ = writeln!(out, "    {};", op_to_c(module, op));
        }
        // The paper's annotation: estimated delay of this block.
        let _ = writeln!(out, "    wait(PID, {});", timed.cycles(fid, bid));
        match &block.term {
            Terminator::Jump(b) => {
                let _ = writeln!(out, "    goto bb{};", b.0);
            }
            Terminator::Branch { cond, then_bb, else_bb } => {
                let _ = writeln!(
                    out,
                    "    if ({cond}) goto bb{}; else goto bb{};",
                    then_bb.0, else_bb.0
                );
            }
            Terminator::Return(Some(v)) => {
                let _ = writeln!(out, "    return {v};");
            }
            Terminator::Return(None) => {
                let _ = writeln!(out, "    return;");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn array_c_name(module: &Module, id: ArrayId) -> String {
    let array = module.array(id);
    c_name(array.name.rsplit("::").next().unwrap_or(&array.name))
}

/// Sanitizes an IR name into a C identifier.
fn c_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

fn op_to_c(module: &Module, op: &Op) -> String {
    use tlm_minic::ast::{BinOp, UnOp};
    let dest = op.result.map(|r| format!("{r} = ")).unwrap_or_default();
    let a = |i: usize| op.args[i].to_string();
    match &op.kind {
        OpKind::Const(v) => format!("{dest}{v}"),
        OpKind::Copy => format!("{dest}{}", a(0)),
        OpKind::Un(u) => {
            let sym = match u {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{dest}{sym}{}", a(0))
        }
        OpKind::Bin(b) => {
            let sym = match b {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::LogAnd => "&&",
                BinOp::LogOr => "||",
            };
            format!("{dest}{} {sym} {}", a(0), a(1))
        }
        OpKind::Load { array } => format!("{dest}{}[{}]", array_c_name(module, *array), a(0)),
        OpKind::Store { array } => {
            format!("{}[{}] = {}", array_c_name(module, *array), a(0), a(1))
        }
        OpKind::Call { func } => {
            let args: Vec<String> = op.args.iter().map(|v| v.to_string()).collect();
            format!("{dest}{}({})", c_name(&module.function(*func).name), args.join(", "))
        }
        OpKind::ChanRecv { chan } => format!("{dest}ch_recv({})", chan.0),
        OpKind::ChanSend { chan } => format!("ch_send({}, {})", chan.0, a(0)),
        OpKind::Output => format!("out({})", a(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::library;

    fn timed(src: &str) -> TimedModule {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        annotate(&module, &library::microblaze_like(8 << 10, 4 << 10)).expect("annotates")
    }

    #[test]
    fn every_block_gets_a_wait_call() {
        let t = timed(
            "int t[8] = {1, 2, 3, 4, 5, 6, 7, 8};
             int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += t[i]; } return s; }
             void main() { out(f(8)); ch_send(0, 1); }",
        );
        let text = emit_timed_c(&t);
        let blocks: usize = t.module().functions.iter().map(|f| f.blocks.len()).sum();
        let waits = text.matches("wait(PID, ").count();
        assert_eq!(waits, blocks, "one wait per basic block:\n{text}");
    }

    #[test]
    fn emitted_text_contains_declarations_and_control_flow() {
        let t = timed(
            "int gain = 3;
             int scale(int x) { if (x > 0) { return x * gain; } return 0; }",
        );
        let text = emit_timed_c(&t);
        for needle in
            ["static int gain[1] = {3}", "int scale(int v0)", "goto bb", "if (v", "return"]
        {
            assert!(text.contains(needle), "missing `{needle}`:\n{text}");
        }
    }

    #[test]
    fn channel_intrinsics_survive_emission() {
        let t = timed("void main() { int v = ch_recv(4); ch_send(5, v); }");
        let text = emit_timed_c(&t);
        assert!(text.contains("ch_recv(4)"));
        assert!(text.contains("ch_send(5, "));
    }

    #[test]
    fn local_arrays_are_declared_with_initializers() {
        let t = timed("int f() { int w[3] = {7, 8, 9}; return w[1]; }");
        let text = emit_timed_c(&t);
        assert!(text.contains("int w[3] = {7, 8, 9};"), "{text}");
    }
}
