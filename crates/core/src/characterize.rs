//! Characterization: filling the PUM's statistical models from measurements.
//!
//! The paper's memory and branch models are *statistical*: average hit
//! rates per cache size, average misprediction ratio. Those numbers come
//! from measuring a reference execution (the paper used on-board runs; this
//! reproduction uses the cycle-accurate board model in `tlm-pcam`) on a
//! *training* input, and are then used to estimate *other* inputs — that
//! separation is what makes Tables 2/3 a genuine accuracy experiment.
//!
//! This module is deliberately independent of where the numbers come from:
//! it consumes plain counters.

use std::collections::BTreeMap;

use crate::error::EstimateError;
use crate::pum::{BranchModel, CacheModel, MemoryPath, Pum};

/// Counters measured on a reference execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCounters {
    /// Instruction fetches issued.
    pub ifetches: u64,
    /// Instruction fetches that missed the i-cache.
    pub imisses: u64,
    /// Data accesses issued.
    pub daccesses: u64,
    /// Data accesses that missed the d-cache.
    pub dmisses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
}

impl ProfileCounters {
    /// Measured i-cache hit rate; 1.0 when no fetches were observed.
    pub fn icache_hit_rate(&self) -> f64 {
        hit_rate(self.ifetches, self.imisses)
    }

    /// Measured d-cache hit rate; 1.0 when no accesses were observed.
    pub fn dcache_hit_rate(&self) -> f64 {
        hit_rate(self.daccesses, self.dmisses)
    }

    /// Measured misprediction ratio; 0.0 when no branches were observed.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

fn hit_rate(accesses: u64, misses: u64) -> f64 {
    if accesses == 0 {
        1.0
    } else {
        1.0 - misses.min(accesses) as f64 / accesses as f64
    }
}

/// A characterized table: cache size in bytes → measured average hit rate.
pub type HitRateTable = BTreeMap<u32, f64>;

/// Replaces the statistical parameters of `pum` with measured values.
///
/// - `icache_rates` / `dcache_rates`: per-size hit rates (sizes missing
///   from the table keep their previous value);
/// - `mispredict_rate`: measured branch misprediction ratio, applied if the
///   PUM has a branch model.
///
/// Paths that are [`MemoryPath::Hardwired`] or [`MemoryPath::Uncached`] are
/// untouched — they have no statistical parameters.
pub fn apply_measurements(
    pum: &mut Pum,
    icache_rates: &HitRateTable,
    dcache_rates: &HitRateTable,
    mispredict_rate: Option<f64>,
) {
    apply_rates(&mut pum.memory.ifetch, icache_rates);
    apply_rates(&mut pum.memory.data, dcache_rates);
    if let (Some(model), Some(rate)) = (&mut pum.branch, mispredict_rate) {
        model.miss_rate = rate.clamp(0.0, 1.0);
    }
}

fn apply_rates(path: &mut MemoryPath, rates: &HitRateTable) {
    if let MemoryPath::Cached(cache) = path {
        for (&size, &rate) in rates {
            cache.hit_rates.insert(size, rate.clamp(0.0, 1.0));
        }
    }
}

/// Builds a branch model from measured counters.
pub fn branch_model_from(counters: &ProfileCounters, penalty: u32) -> BranchModel {
    BranchModel { policy: "characterized".into(), penalty, miss_rate: counters.mispredict_rate() }
}

/// Builds a cache model from a measured hit-rate table.
///
/// # Errors
///
/// Returns [`EstimateError::MissingHitRate`] if `rates` does not contain
/// `size` — a structured error instead of the panic this used to be, so
/// sweep drivers can report which configuration was never characterized.
pub fn cache_model_from(
    size: u32,
    rates: HitRateTable,
    hit_delay: u32,
    miss_penalty: u32,
) -> Result<CacheModel, EstimateError> {
    if !rates.contains_key(&size) {
        return Err(EstimateError::MissingHitRate { size });
    }
    Ok(CacheModel { size, hit_rates: rates, hit_delay, miss_penalty })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn counter_rates() {
        let c = ProfileCounters {
            ifetches: 1000,
            imisses: 50,
            daccesses: 400,
            dmisses: 100,
            branches: 200,
            mispredicts: 30,
        };
        assert!((c.icache_hit_rate() - 0.95).abs() < 1e-12);
        assert!((c.dcache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.mispredict_rate() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_are_benign() {
        let c = ProfileCounters::default();
        assert_eq!(c.icache_hit_rate(), 1.0);
        assert_eq!(c.dcache_hit_rate(), 1.0);
        assert_eq!(c.mispredict_rate(), 0.0);
    }

    #[test]
    fn excess_misses_clamp() {
        let c = ProfileCounters { ifetches: 10, imisses: 50, ..Default::default() };
        assert_eq!(c.icache_hit_rate(), 0.0);
    }

    #[test]
    fn apply_measurements_overrides_placeholders() {
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        let mut irates = HitRateTable::new();
        irates.insert(8 << 10, 0.987);
        let mut drates = HitRateTable::new();
        drates.insert(4 << 10, 0.9);
        apply_measurements(&mut pum, &irates, &drates, Some(0.23));
        let crate::pum::MemoryPath::Cached(ic) = &pum.memory.ifetch else {
            panic!("cached ifetch");
        };
        assert_eq!(ic.hit_rates[&(8 << 10)], 0.987);
        let crate::pum::MemoryPath::Cached(dc) = &pum.memory.data else {
            panic!("cached data");
        };
        assert_eq!(dc.hit_rates[&(4 << 10)], 0.9);
        assert_eq!(pum.branch.as_ref().expect("branch model").miss_rate, 0.23);
        pum.validate().expect("still valid");
    }

    #[test]
    fn hardwired_paths_are_untouched() {
        let mut pum = library::custom_hw("hw", 2, 2);
        let mut rates = HitRateTable::new();
        rates.insert(1024, 0.5);
        apply_measurements(&mut pum, &rates, &rates, Some(0.9));
        assert!(pum.branch.is_none());
        assert!(matches!(pum.memory.ifetch, MemoryPath::Hardwired));
    }

    #[test]
    fn rates_are_clamped_to_unit_interval() {
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        let mut rates = HitRateTable::new();
        rates.insert(8 << 10, 1.7);
        apply_measurements(&mut pum, &rates, &HitRateTable::new(), Some(-0.5));
        pum.validate().expect("clamped values stay valid");
        assert_eq!(pum.branch.as_ref().expect("branch model").miss_rate, 0.0);
    }

    #[test]
    fn model_builders() {
        let counters = ProfileCounters { branches: 100, mispredicts: 25, ..Default::default() };
        let bm = branch_model_from(&counters, 2);
        assert_eq!(bm.penalty, 2);
        assert!((bm.miss_rate - 0.25).abs() < 1e-12);

        let mut rates = HitRateTable::new();
        rates.insert(2048, 0.91);
        let cm = cache_model_from(2048, rates.clone(), 0, 24).expect("rate exists");
        assert!((cm.hit_rate().expect("rate exists") - 0.91).abs() < 1e-12);

        let err = cache_model_from(4096, rates, 0, 24).expect_err("no measured rate");
        assert_eq!(err, EstimateError::MissingHitRate { size: 4096 });
    }
}
