//! Content-addressed memoization of Algorithm 1 schedules.
//!
//! The optimistic schedule of a basic block depends on exactly two inputs:
//! the PUM's *schedule domain* (scheduling policy, operation mapping table
//! and datapath — see [`Pum::schedule_domain`]) and the block's DFG shape
//! (op classes and dependence edges — see
//! [`tlm_cdfg::dfg::schedule_key`]). It is provably independent of the
//! statistical memory and branch models, so a sweep over cache sizes or
//! misprediction ratios re-runs only Algorithm 2; every Algorithm 1 result
//! is computed once per (datapath, block) pair and then served from this
//! cache.
//!
//! Correctness before speed: keys are the full canonical byte encodings,
//! not hashes of them, so two distinct inputs can never alias an entry. A
//! cache hit returns the exact [`ScheduleResult`] the direct call would
//! have produced (asserted bit-identical by `tests/parallel_determinism.rs`
//! over every app in `crates/apps`).
//!
//! The cache is two-level: the (possibly multi-kilobyte) domain encoding is
//! resolved **once per annotation run** to a [`DomainHandle`]; per-block
//! lookups then hash only the small block key. That keeps a hit well under
//! the cost of re-running Algorithm 1 even for three-op glue blocks.
//!
//! **Byte-budgeted eviction.** An unbounded cache is an OOM under an
//! adversarial (or merely diverse) client mix, so the cache can carry a
//! resident-byte budget ([`ScheduleCache::with_budget`]): entries live in
//! two *generations* per domain, and when the accounted resident bytes
//! exceed the budget the older generation is dropped and the newer one
//! ages into its place (second chance — an entry touched since the last
//! rotation is promoted back to the young generation and survives).
//! Exactly-once compute holds *within* a generation (the promoted slot
//! keeps its `OnceLock`, so a survivor never recomputes), and results
//! stay bit-identical across evictions because Algorithm 1 is a pure
//! function of the key — an evicted entry is simply recomputed to the
//! same bytes on next demand (asserted by the eviction tests below).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tlm_cdfg::dfg::{schedule_key, Dfg};
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::batch::{solve_batch, BatchItem};
use crate::error::EstimateError;
use crate::fingerprint::fnv1a_64;
use crate::pum::Pum;
use crate::schedule::{schedule_block_prepared, with_scratch, IssueTable, ScheduleResult};

/// The precomputed cache key half describing a PUM's schedule-relevant
/// sub-models. Compute once per annotation run, reuse for every block.
#[derive(Debug, Clone)]
pub struct ScheduleDomain {
    key: Arc<str>,
    fingerprint: u64,
}

impl ScheduleDomain {
    /// Derives the domain of a PUM.
    pub fn of(pum: &Pum) -> ScheduleDomain {
        let key = pum.schedule_domain();
        let fingerprint = fnv1a_64(key.as_bytes());
        ScheduleDomain { key: key.into(), fingerprint }
    }

    /// 64-bit fingerprint for display/reporting.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran Algorithm 1.
    pub misses: u64,
    /// Resident entries.
    pub entries: usize,
    /// Approximate resident key bytes (domain encodings + block keys).
    /// Values are excluded: they are shared `Arc`s whose footprint the
    /// cache does not own exclusively.
    pub bytes: u64,
    /// Entries dropped by budget-driven generation rotation.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A slot holds the outcome of the single Algorithm 1 run for its key.
/// Errors are cached too: they are deterministic properties of the same
/// inputs, so re-running could not change them.
type Slot = Arc<OnceLock<Result<Arc<ScheduleResult>, EstimateError>>>;

/// Two generations of one domain's entries (second cache level). Young
/// holds everything inserted or touched since the last rotation; old is
/// the previous young, awaiting either a second-chance promotion or the
/// next rotation.
#[derive(Debug, Default)]
struct Generations {
    young: HashMap<Vec<u8>, Slot>,
    old: HashMap<Vec<u8>, Slot>,
    young_bytes: u64,
    old_bytes: u64,
}

/// The per-domain entry table (second cache level).
#[derive(Debug, Default)]
struct DomainEntries {
    entries: Mutex<Generations>,
    /// The domain's precompiled [`IssueTable`], built on first use. A pure
    /// function of the domain encoding this entry is keyed by, so it never
    /// needs invalidation.
    table: OnceLock<Arc<IssueTable>>,
}

/// A thread-safe, content-addressed cache of [`ScheduleResult`]s.
#[derive(Debug)]
pub struct ScheduleCache {
    domains: Mutex<HashMap<Arc<str>, Arc<DomainEntries>>>,
    /// Resident-byte budget; `u64::MAX` means unbounded.
    budget: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    key_bytes: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache {
            domains: Mutex::new(HashMap::new()),
            budget: AtomicU64::new(u64::MAX),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            key_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl ScheduleCache {
    /// An empty, unbounded cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// An empty cache that evicts once its resident key bytes exceed
    /// `bytes` (see the module docs for the generational semantics).
    pub fn with_budget(bytes: u64) -> ScheduleCache {
        let cache = ScheduleCache::new();
        cache.set_budget(bytes);
        cache
    }

    /// Changes the resident-byte budget; `u64::MAX` disables eviction.
    /// Takes effect on the next insertion.
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Drops every old generation and ages the young ones in their place.
    /// Called when the resident bytes exceed the budget; may run twice in
    /// a row if one generation alone exceeds it.
    fn rotate(&self) {
        let mut domains = self.domains.lock().expect("schedule cache poisoned");
        let mut dropped_domains = Vec::new();
        for (key, domain) in domains.iter() {
            let mut gens = domain.entries.lock().expect("schedule cache poisoned");
            let evicted = gens.old.len() as u64;
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                self.key_bytes.fetch_sub(gens.old_bytes, Ordering::Relaxed);
            }
            gens.old = std::mem::take(&mut gens.young);
            gens.old_bytes = std::mem::replace(&mut gens.young_bytes, 0);
            // Both generations empty and no live handle: the domain is
            // dead weight. A live handle keeps its table registered —
            // dropping it would detach the handle's inserts from future
            // rotations and leak them from the byte accounting.
            if gens.old.is_empty() && Arc::strong_count(domain) == 1 {
                dropped_domains.push(Arc::clone(key));
            }
        }
        for key in dropped_domains {
            self.key_bytes.fetch_sub(key.len() as u64, Ordering::Relaxed);
            domains.remove(&key);
        }
    }

    /// Rotates while the young generations exceed half the budget or the
    /// resident total exceeds the whole budget — each generation is
    /// bounded by budget/2, so the resident total stays within the
    /// budget. At most two rotations (the second empties the cache).
    fn enforce_budget(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == u64::MAX {
            return;
        }
        for _ in 0..2 {
            let (mut young, mut total) = (0u64, 0u64);
            {
                let domains = self.domains.lock().expect("schedule cache poisoned");
                for (key, domain) in domains.iter() {
                    let gens = domain.entries.lock().expect("schedule cache poisoned");
                    young += gens.young_bytes;
                    total += gens.young_bytes + gens.old_bytes + key.len() as u64;
                }
            }
            if young <= budget / 2 && total <= budget {
                return;
            }
            self.rotate();
        }
    }

    /// The process-wide cache used by
    /// [`annotate`](crate::annotate::annotate). Sweep binaries that
    /// estimate the same design under many statistical configurations get
    /// cross-configuration reuse through this instance for free.
    pub fn global() -> &'static ScheduleCache {
        static GLOBAL: OnceLock<ScheduleCache> = OnceLock::new();
        GLOBAL.get_or_init(ScheduleCache::new)
    }

    /// Resolves a domain to its entry table. Call once per annotation run;
    /// the returned handle makes per-block lookups independent of the
    /// domain encoding's size.
    pub fn domain(&self, domain: &ScheduleDomain) -> DomainHandle<'_> {
        let entries = {
            let mut domains = self.domains.lock().expect("schedule cache poisoned");
            if !domains.contains_key(&domain.key) {
                self.key_bytes.fetch_add(domain.key.len() as u64, Ordering::Relaxed);
            }
            Arc::clone(domains.entry(Arc::clone(&domain.key)).or_default())
        };
        DomainHandle { cache: self, entries, fingerprint: domain.fingerprint }
    }

    /// One-shot convenience: [`ScheduleCache::domain`] +
    /// [`DomainHandle::schedule`].
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from Algorithm 1.
    pub fn schedule(
        &self,
        domain: &ScheduleDomain,
        pum: &Pum,
        block: &BlockData,
        dfg: &Dfg,
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        self.domain(domain).schedule(pum, block, dfg, func, block_id)
    }

    /// Snapshot of hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .domains
            .lock()
            .expect("schedule cache poisoned")
            .values()
            .map(|d| {
                let gens = d.entries.lock().expect("schedule cache poisoned");
                gens.young.len() + gens.old.len()
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.key_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.domains.lock().expect("schedule cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.key_bytes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// A borrowed view of one domain's entry table inside a [`ScheduleCache`].
///
/// Resolving a domain hashes its full (possibly multi-kilobyte) canonical
/// encoding, so sweep drivers should resolve once per datapath and reuse
/// the handle across every sweep point that shares it (see
/// [`annotate_in_domain`](crate::annotate::annotate_in_domain)).
#[derive(Debug)]
pub struct DomainHandle<'a> {
    cache: &'a ScheduleCache,
    entries: Arc<DomainEntries>,
    fingerprint: u64,
}

impl DomainHandle<'_> {
    /// Fingerprint of the domain this handle was resolved from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The domain's precompiled [`IssueTable`], built from `pum` on first
    /// use and shared by every block scheduled in this domain. The caller
    /// asserts that `pum` belongs to this handle's domain (the same
    /// contract as [`annotate_in_domain`](crate::annotate::annotate_in_domain)).
    pub fn issue_table(&self, pum: &Pum) -> Arc<IssueTable> {
        Arc::clone(self.entries.table.get_or_init(|| Arc::new(IssueTable::build(pum))))
    }

    /// Schedules a block through the cache. Returns the result and whether
    /// it was served from the cache.
    ///
    /// Algorithm 1 runs **exactly once** per key, even under concurrency:
    /// each key owns a [`OnceLock`] slot, so a thread that loses the
    /// initialization race blocks on the winner and then reads its result
    /// (counted as a hit — it did not run the algorithm). The miss counter
    /// therefore always equals the number of resident entries.
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from Algorithm 1 (errors are cached
    /// like successes; the same inputs deterministically fail the same
    /// way).
    pub fn schedule(
        &self,
        pum: &Pum,
        block: &BlockData,
        dfg: &Dfg,
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        let table = self.issue_table(pum);
        let heights = dfg.heights();
        self.schedule_keyed(&schedule_key(block, dfg), &table, block, dfg, &heights, func, block_id)
    }

    /// [`DomainHandle::schedule`] with the block's canonical key, the
    /// domain's [`IssueTable`] and the DFG's heights already computed (see
    /// [`PreparedModule`](crate::annotate::PreparedModule) — all three are
    /// sweep-invariant, so sweep loops build them once).
    ///
    /// # Errors
    ///
    /// Same as [`DomainHandle::schedule`].
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_keyed(
        &self,
        block_key: &[u8],
        table: &IssueTable,
        block: &BlockData,
        dfg: &Dfg,
        heights: &[usize],
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        let mut inserted = false;
        let slot: Slot = {
            let mut gens = self.entries.entries.lock().expect("schedule cache poisoned");
            if let Some(slot) = gens.young.get(block_key) {
                Arc::clone(slot)
            } else if let Some(slot) = gens.old.remove(block_key) {
                // Second chance: a touch since the last rotation promotes
                // the entry (and its already-initialized slot) back into
                // the young generation, so it survives the next rotation
                // without recomputing.
                gens.old_bytes -= block_key.len() as u64;
                gens.young_bytes += block_key.len() as u64;
                gens.young.insert(block_key.to_vec(), Arc::clone(&slot));
                slot
            } else {
                inserted = true;
                gens.young_bytes += block_key.len() as u64;
                self.cache.key_bytes.fetch_add(block_key.len() as u64, Ordering::Relaxed);
                Arc::clone(gens.young.entry(block_key.to_vec()).or_default())
            }
        };
        if inserted {
            self.cache.enforce_budget();
        }
        // Compute outside the map lock: other keys proceed concurrently.
        let mut ran = false;
        let outcome = slot.get_or_init(|| {
            ran = true;
            with_scratch(|scratch| {
                schedule_block_prepared(table, scratch, block, dfg, heights, func, block_id)
            })
            .map(Arc::new)
        });
        if ran {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
        }
        match outcome {
            Ok(result) => Ok((Arc::clone(result), !ran)),
            Err(error) => Err(error.clone()),
        }
    }

    /// Batch-fill: resolves every item's slot in **one** pass over the
    /// entry map, then solves all uninitialized slots together through the
    /// batched kernel ([`crate::batch`]) — identical keys share a slot, so
    /// duplicates fold into one representative solve, and the surviving
    /// misses are lane-sliced by shape class. Returns one
    /// `(result, served-from-cache)` pair per item, in input order, with
    /// exactly the accounting the per-item [`DomainHandle::schedule_keyed`]
    /// loop would have produced: every initialized-by-us slot counts one
    /// miss, everything else (prior entries, in-batch duplicates, lost
    /// races) counts a hit.
    pub fn schedule_batch_keyed(
        &self,
        table: &IssueTable,
        items: &[BatchItem<'_>],
        parallel: bool,
    ) -> Vec<Result<(Arc<ScheduleResult>, bool), EstimateError>> {
        let mut inserted = false;
        let slots: Vec<Slot> = {
            let mut gens = self.entries.entries.lock().expect("schedule cache poisoned");
            items
                .iter()
                .map(|item| {
                    if let Some(slot) = gens.young.get(item.key) {
                        Arc::clone(slot)
                    } else if let Some(slot) = gens.old.remove(item.key) {
                        gens.old_bytes -= item.key.len() as u64;
                        gens.young_bytes += item.key.len() as u64;
                        gens.young.insert(item.key.to_vec(), Arc::clone(&slot));
                        slot
                    } else {
                        inserted = true;
                        gens.young_bytes += item.key.len() as u64;
                        self.cache.key_bytes.fetch_add(item.key.len() as u64, Ordering::Relaxed);
                        Arc::clone(gens.young.entry(item.key.to_vec()).or_default())
                    }
                })
                .collect()
        };
        if inserted {
            self.cache.enforce_budget();
        }
        // Solve the misses as one batch. Duplicate keys appear as multiple
        // miss items sharing a slot; the batch planner folds them, and only
        // the first `get_or_init` below wins the slot (counted as the one
        // miss — the rest are hits, exactly as sequential lookups would
        // have resolved).
        let miss_idx: Vec<usize> = (0..items.len()).filter(|&i| slots[i].get().is_none()).collect();
        let mut ran = vec![false; items.len()];
        if !miss_idx.is_empty() {
            let miss_items: Vec<BatchItem<'_>> = miss_idx.iter().map(|&i| items[i]).collect();
            let solved = solve_batch(table, &miss_items, parallel);
            for (&i, result) in miss_idx.iter().zip(solved) {
                slots[i].get_or_init(|| {
                    ran[i] = true;
                    result
                });
            }
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        let out = slots
            .iter()
            .zip(&ran)
            .map(|(slot, &ran)| {
                if ran {
                    misses += 1;
                } else {
                    hits += 1;
                }
                match slot.get().expect("every slot resolved above") {
                    Ok(result) => Ok((Arc::clone(result), !ran)),
                    Err(error) => Err(error.clone()),
                }
            })
            .collect();
        self.cache.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache.misses.fetch_add(misses, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use tlm_cdfg::dfg::block_dfg;
    use tlm_cdfg::ir::Module;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    const SRC: &str = "int f(int a, int b) { return a * b + a - b; }";

    #[test]
    fn hit_after_miss_returns_identical_result() {
        let cache = ScheduleCache::new();
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);

        let (first, hit1) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        let (second, hit2) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(!hit1, "first lookup is a miss");
        assert!(hit2, "second lookup hits");
        assert_eq!(*first, *second);
        let direct = crate::schedule::schedule_block(&pum, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        assert_eq!(*second, direct, "cached result identical to direct call");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0, "resident keys are accounted for");
    }

    #[test]
    fn statistical_models_share_entries() {
        // Two PUMs differing only in cache size / branch rate — Algorithm 1
        // cannot see the difference, so the second one must hit.
        let cache = ScheduleCache::new();
        let small = library::microblaze_like(2 << 10, 2 << 10);
        let mut large = library::microblaze_like(32 << 10, 16 << 10);
        if let Some(b) = &mut large.branch {
            b.miss_rate = 0.42;
        }
        assert_eq!(
            ScheduleDomain::of(&small).fingerprint(),
            ScheduleDomain::of(&large).fingerprint(),
            "schedule domain excludes memory/branch models"
        );
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        let d1 = ScheduleDomain::of(&small);
        let d2 = ScheduleDomain::of(&large);
        cache.schedule(&d1, &small, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        let (_, hit) =
            cache.schedule(&d2, &large, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(hit, "sweep configurations share Algorithm 1 results");
    }

    #[test]
    fn different_policies_do_not_share_entries() {
        let cache = ScheduleCache::new();
        let mut asap = library::custom_hw("hw", 2, 2);
        asap.execution.policy = crate::pum::SchedulingPolicy::Asap;
        let mut alap = asap.clone();
        alap.execution.policy = crate::pum::SchedulingPolicy::Alap;
        assert_ne!(
            ScheduleDomain::of(&asap).fingerprint(),
            ScheduleDomain::of(&alap).fingerprint()
        );
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        cache
            .schedule(&ScheduleDomain::of(&asap), &asap, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        let (_, hit) = cache
            .schedule(&ScheduleDomain::of(&alap), &alap, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        assert!(!hit, "policy is part of the schedule domain");
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let cache = ScheduleCache::new();
        let mut pum = library::custom_hw("hw", 2, 2);
        pum.execution.op_map.clear(); // every op class is now unmapped
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        let first = cache
            .schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0))
            .expect_err("unmapped class");
        let second = cache
            .schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0))
            .expect_err("unmapped class");
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "error was served from the cache");
    }

    /// Schedules every block of `module` once, returning the results.
    fn schedule_all(cache: &ScheduleCache, pum: &Pum, module: &Module) -> Vec<Arc<ScheduleResult>> {
        let domain = ScheduleDomain::of(pum);
        let handle = cache.domain(&domain);
        let mut out = Vec::new();
        for (f, func) in module.functions.iter().enumerate() {
            for (b, block) in func.blocks.iter().enumerate() {
                let dfg = block_dfg(block);
                let (result, _) = handle
                    .schedule(pum, block, &dfg, FuncId(f as u32), BlockId(b as u32))
                    .expect("schedules");
                out.push(result);
            }
        }
        out
    }

    #[test]
    fn budget_eviction_drops_entries_and_recompute_is_bit_identical() {
        // A budget far below one generation's keys: every enforcement
        // rotates, so earlier blocks are evicted as later ones arrive.
        let cache = ScheduleCache::with_budget(1);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let module = module_of(
            "int f(int a, int b) { int s = 0; for (int i = 0; i < a; i++) { s += i * b; } return s; }
             int g(int x) { if (x > 3) { x = x * 7; } else { x = x - 2; } return x; }",
        );
        let first = schedule_all(&cache, &pum, &module);
        let evicted = cache.stats().evictions;
        assert!(evicted > 0, "tiny budget must evict, stats: {:?}", cache.stats());
        // Recompute after eviction: bit-identical results.
        let second = schedule_all(&cache, &pum, &module);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(**a, **b, "re-scheduled result identical across eviction");
        }
        // After the final over-budget enforcement at most the domain key
        // (kept registered while handles are live) remains resident.
        let domain_key_bytes = pum.schedule_domain().len() as u64;
        assert!(
            cache.stats().bytes <= domain_key_bytes + 64,
            "resident bytes bounded near the budget: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn second_chance_survives_one_rotation() {
        let cache = ScheduleCache::new();
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        cache.rotate(); // entry ages into the old generation
        assert_eq!(cache.stats().evictions, 0, "first rotation drops nothing");
        let (_, hit) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(hit, "aged entry is promoted, not recomputed");
        cache.rotate();
        assert_eq!(cache.stats().evictions, 0, "promoted entry survives the next rotation");
        let (_, hit) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(hit, "still resident after two rotations with a touch between");
        cache.rotate();
        cache.rotate(); // two untouched rotations: now it is gone
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(!hit, "evicted entry recomputes");
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ScheduleCache::new();
        let pum = library::generic_risc();
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
