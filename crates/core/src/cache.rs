//! Content-addressed memoization of Algorithm 1 schedules.
//!
//! The optimistic schedule of a basic block depends on exactly two inputs:
//! the PUM's *schedule domain* (scheduling policy, operation mapping table
//! and datapath — see [`Pum::schedule_domain`]) and the block's DFG shape
//! (op classes and dependence edges — see
//! [`tlm_cdfg::dfg::schedule_key`]). It is provably independent of the
//! statistical memory and branch models, so a sweep over cache sizes or
//! misprediction ratios re-runs only Algorithm 2; every Algorithm 1 result
//! is computed once per (datapath, block) pair and then served from this
//! cache.
//!
//! Correctness before speed: keys are the full canonical byte encodings,
//! not hashes of them, so two distinct inputs can never alias an entry. A
//! cache hit returns the exact [`ScheduleResult`] the direct call would
//! have produced (asserted bit-identical by `tests/parallel_determinism.rs`
//! over every app in `crates/apps`).
//!
//! The cache is two-level: the (possibly multi-kilobyte) domain encoding is
//! resolved **once per annotation run** to a [`DomainHandle`]; per-block
//! lookups then hash only the small block key. That keeps a hit well under
//! the cost of re-running Algorithm 1 even for three-op glue blocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tlm_cdfg::dfg::{schedule_key, Dfg};
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::fingerprint::fnv1a_64;
use crate::pum::Pum;
use crate::schedule::{schedule_block, ScheduleResult};

/// The precomputed cache key half describing a PUM's schedule-relevant
/// sub-models. Compute once per annotation run, reuse for every block.
#[derive(Debug, Clone)]
pub struct ScheduleDomain {
    key: Arc<str>,
    fingerprint: u64,
}

impl ScheduleDomain {
    /// Derives the domain of a PUM.
    pub fn of(pum: &Pum) -> ScheduleDomain {
        let key = pum.schedule_domain();
        let fingerprint = fnv1a_64(key.as_bytes());
        ScheduleDomain { key: key.into(), fingerprint }
    }

    /// 64-bit fingerprint for display/reporting.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran Algorithm 1.
    pub misses: u64,
    /// Resident entries.
    pub entries: usize,
    /// Approximate resident key bytes (domain encodings + block keys).
    /// Values are excluded: they are shared `Arc`s whose footprint the
    /// cache does not own exclusively.
    pub bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A slot holds the outcome of the single Algorithm 1 run for its key.
/// Errors are cached too: they are deterministic properties of the same
/// inputs, so re-running could not change them.
type Slot = Arc<OnceLock<Result<Arc<ScheduleResult>, EstimateError>>>;

/// The per-domain entry table (second cache level).
#[derive(Debug, Default)]
struct DomainEntries {
    entries: Mutex<HashMap<Vec<u8>, Slot>>,
}

/// A thread-safe, content-addressed cache of [`ScheduleResult`]s.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    domains: Mutex<HashMap<Arc<str>, Arc<DomainEntries>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    key_bytes: AtomicU64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// The process-wide cache used by
    /// [`annotate`](crate::annotate::annotate). Sweep binaries that
    /// estimate the same design under many statistical configurations get
    /// cross-configuration reuse through this instance for free.
    pub fn global() -> &'static ScheduleCache {
        static GLOBAL: OnceLock<ScheduleCache> = OnceLock::new();
        GLOBAL.get_or_init(ScheduleCache::new)
    }

    /// Resolves a domain to its entry table. Call once per annotation run;
    /// the returned handle makes per-block lookups independent of the
    /// domain encoding's size.
    pub fn domain(&self, domain: &ScheduleDomain) -> DomainHandle<'_> {
        let entries = {
            let mut domains = self.domains.lock().expect("schedule cache poisoned");
            if !domains.contains_key(&domain.key) {
                self.key_bytes.fetch_add(domain.key.len() as u64, Ordering::Relaxed);
            }
            Arc::clone(domains.entry(Arc::clone(&domain.key)).or_default())
        };
        DomainHandle { cache: self, entries, fingerprint: domain.fingerprint }
    }

    /// One-shot convenience: [`ScheduleCache::domain`] +
    /// [`DomainHandle::schedule`].
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from Algorithm 1.
    pub fn schedule(
        &self,
        domain: &ScheduleDomain,
        pum: &Pum,
        block: &BlockData,
        dfg: &Dfg,
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        self.domain(domain).schedule(pum, block, dfg, func, block_id)
    }

    /// Snapshot of hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .domains
            .lock()
            .expect("schedule cache poisoned")
            .values()
            .map(|d| d.entries.lock().expect("schedule cache poisoned").len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.key_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.domains.lock().expect("schedule cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.key_bytes.store(0, Ordering::Relaxed);
    }
}

/// A borrowed view of one domain's entry table inside a [`ScheduleCache`].
///
/// Resolving a domain hashes its full (possibly multi-kilobyte) canonical
/// encoding, so sweep drivers should resolve once per datapath and reuse
/// the handle across every sweep point that shares it (see
/// [`annotate_in_domain`](crate::annotate::annotate_in_domain)).
#[derive(Debug)]
pub struct DomainHandle<'a> {
    cache: &'a ScheduleCache,
    entries: Arc<DomainEntries>,
    fingerprint: u64,
}

impl DomainHandle<'_> {
    /// Fingerprint of the domain this handle was resolved from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Schedules a block through the cache. Returns the result and whether
    /// it was served from the cache.
    ///
    /// Algorithm 1 runs **exactly once** per key, even under concurrency:
    /// each key owns a [`OnceLock`] slot, so a thread that loses the
    /// initialization race blocks on the winner and then reads its result
    /// (counted as a hit — it did not run the algorithm). The miss counter
    /// therefore always equals the number of resident entries.
    ///
    /// # Errors
    ///
    /// Propagates [`EstimateError`] from Algorithm 1 (errors are cached
    /// like successes; the same inputs deterministically fail the same
    /// way).
    pub fn schedule(
        &self,
        pum: &Pum,
        block: &BlockData,
        dfg: &Dfg,
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        self.schedule_keyed(&schedule_key(block, dfg), pum, block, dfg, func, block_id)
    }

    /// [`DomainHandle::schedule`] with the block's canonical key already
    /// computed (see [`PreparedModule`](crate::annotate::PreparedModule) —
    /// the key depends only on the block, so sweep loops build it once).
    ///
    /// # Errors
    ///
    /// Same as [`DomainHandle::schedule`].
    pub fn schedule_keyed(
        &self,
        block_key: &[u8],
        pum: &Pum,
        block: &BlockData,
        dfg: &Dfg,
        func: FuncId,
        block_id: BlockId,
    ) -> Result<(Arc<ScheduleResult>, bool), EstimateError> {
        let slot: Slot = {
            let mut entries = self.entries.entries.lock().expect("schedule cache poisoned");
            match entries.get(block_key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    self.cache.key_bytes.fetch_add(block_key.len() as u64, Ordering::Relaxed);
                    Arc::clone(entries.entry(block_key.to_vec()).or_default())
                }
            }
        };
        // Compute outside the map lock: other keys proceed concurrently.
        let mut ran = false;
        let outcome = slot.get_or_init(|| {
            ran = true;
            schedule_block(pum, block, dfg, func, block_id).map(Arc::new)
        });
        if ran {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
        }
        match outcome {
            Ok(result) => Ok((Arc::clone(result), !ran)),
            Err(error) => Err(error.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use tlm_cdfg::dfg::block_dfg;
    use tlm_cdfg::ir::Module;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    const SRC: &str = "int f(int a, int b) { return a * b + a - b; }";

    #[test]
    fn hit_after_miss_returns_identical_result() {
        let cache = ScheduleCache::new();
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);

        let (first, hit1) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        let (second, hit2) =
            cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(!hit1, "first lookup is a miss");
        assert!(hit2, "second lookup hits");
        assert_eq!(*first, *second);
        let direct = crate::schedule::schedule_block(&pum, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        assert_eq!(*second, direct, "cached result identical to direct call");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0, "resident keys are accounted for");
    }

    #[test]
    fn statistical_models_share_entries() {
        // Two PUMs differing only in cache size / branch rate — Algorithm 1
        // cannot see the difference, so the second one must hit.
        let cache = ScheduleCache::new();
        let small = library::microblaze_like(2 << 10, 2 << 10);
        let mut large = library::microblaze_like(32 << 10, 16 << 10);
        if let Some(b) = &mut large.branch {
            b.miss_rate = 0.42;
        }
        assert_eq!(
            ScheduleDomain::of(&small).fingerprint(),
            ScheduleDomain::of(&large).fingerprint(),
            "schedule domain excludes memory/branch models"
        );
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        let d1 = ScheduleDomain::of(&small);
        let d2 = ScheduleDomain::of(&large);
        cache.schedule(&d1, &small, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        let (_, hit) =
            cache.schedule(&d2, &large, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert!(hit, "sweep configurations share Algorithm 1 results");
    }

    #[test]
    fn different_policies_do_not_share_entries() {
        let cache = ScheduleCache::new();
        let mut asap = library::custom_hw("hw", 2, 2);
        asap.execution.policy = crate::pum::SchedulingPolicy::Asap;
        let mut alap = asap.clone();
        alap.execution.policy = crate::pum::SchedulingPolicy::Alap;
        assert_ne!(
            ScheduleDomain::of(&asap).fingerprint(),
            ScheduleDomain::of(&alap).fingerprint()
        );
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        cache
            .schedule(&ScheduleDomain::of(&asap), &asap, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        let (_, hit) = cache
            .schedule(&ScheduleDomain::of(&alap), &alap, block, &dfg, FuncId(0), BlockId(0))
            .expect("schedules");
        assert!(!hit, "policy is part of the schedule domain");
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let cache = ScheduleCache::new();
        let mut pum = library::custom_hw("hw", 2, 2);
        pum.execution.op_map.clear(); // every op class is now unmapped
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        let first = cache
            .schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0))
            .expect_err("unmapped class");
        let second = cache
            .schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0))
            .expect_err("unmapped class");
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "error was served from the cache");
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ScheduleCache::new();
        let pum = library::generic_risc();
        let domain = ScheduleDomain::of(&pum);
        let module = module_of(SRC);
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        cache.schedule(&domain, &pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
