//! Timing annotation: attach a [`BlockDelay`] to every basic block.
//!
//! This is the "Timing Annotator" box of the paper's Fig. 2/3: the CDFG of
//! an application process plus a PUM go in; a [`TimedModule`] comes out,
//! carrying the estimated delay of every basic block. The TLM generator in
//! `tlm-platform` uses it to accumulate `wait()` time as the interpreter
//! enters blocks, and [`crate::emit`] renders it as annotated C text.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tlm_cdfg::dfg::block_dfg;
use tlm_cdfg::ir::Module;
use tlm_cdfg::{BlockId, FuncId};
use tlm_desim::SimTime;

use crate::delay::{block_delay, BlockDelay};
use crate::error::EstimateError;
use crate::pum::Pum;

/// A module whose basic blocks carry estimated delays for one PUM.
#[derive(Debug, Clone)]
pub struct TimedModule {
    module: Arc<Module>,
    /// `delays[func][block]`.
    delays: Vec<Vec<BlockDelay>>,
    pum_name: String,
    clock_period: SimTime,
    report: AnnotationReport,
}

/// Cost accounting of an annotation run (the paper's Table 1 reports the
/// annotation time per design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationReport {
    /// Basic blocks annotated.
    pub blocks: usize,
    /// Operations scheduled.
    pub ops: usize,
    /// Wall-clock time the annotation took.
    pub elapsed: Duration,
}

/// Runs Algorithms 1 and 2 over every basic block of `module`.
///
/// # Errors
///
/// Fails if the PUM is invalid or cannot execute some block; see
/// [`EstimateError`].
pub fn annotate(module: &Module, pum: &Pum) -> Result<TimedModule, EstimateError> {
    annotate_arc(Arc::new(module.clone()), pum)
}

/// Like [`annotate`] but shares an existing module.
///
/// # Errors
///
/// Same as [`annotate`].
pub fn annotate_arc(module: Arc<Module>, pum: &Pum) -> Result<TimedModule, EstimateError> {
    pum.validate()?;
    let start = Instant::now();
    let mut delays = Vec::with_capacity(module.functions.len());
    let mut blocks = 0usize;
    let mut ops = 0usize;
    for (fid, func) in module.functions_iter() {
        let mut func_delays = Vec::with_capacity(func.blocks.len());
        for (bid, block) in func.blocks_iter() {
            let dfg = block_dfg(block);
            func_delays.push(block_delay(pum, block, &dfg, fid, bid)?);
            blocks += 1;
            ops += block.ops.len();
        }
        delays.push(func_delays);
    }
    Ok(TimedModule {
        module,
        delays,
        pum_name: pum.name.clone(),
        clock_period: SimTime::from_ps(pum.clock_period_ps),
        report: AnnotationReport { blocks, ops, elapsed: start.elapsed() },
    })
}

impl TimedModule {
    /// The underlying module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The PE model the delays were estimated for.
    pub fn pum_name(&self) -> &str {
        &self.pum_name
    }

    /// The PE clock period, for converting cycles to simulated time.
    pub fn clock_period(&self) -> SimTime {
        self.clock_period
    }

    /// The delay annotated onto one block.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range for the module.
    pub fn delay(&self, func: FuncId, block: BlockId) -> &BlockDelay {
        &self.delays[func.0 as usize][block.0 as usize]
    }

    /// Estimated cycles of one block (the value the generated `wait()`
    /// call carries).
    pub fn cycles(&self, func: FuncId, block: BlockId) -> u64 {
        self.delay(func, block).cycles
    }

    /// Number of annotated basic blocks.
    pub fn total_annotated_blocks(&self) -> usize {
        self.report.blocks
    }

    /// Annotation cost accounting.
    pub fn report(&self) -> &AnnotationReport {
        &self.report
    }

    /// Sum of annotated cycles over all blocks, weighted by an execution
    /// count profile (`counts[func][block]`). Useful to predict total
    /// cycles from a block-frequency profile without re-running.
    ///
    /// # Panics
    ///
    /// Panics if the profile's shape does not match the module.
    pub fn weighted_total(&self, counts: &[Vec<u64>]) -> u64 {
        assert_eq!(counts.len(), self.delays.len(), "profile shape mismatch");
        let mut total = 0u64;
        for (f, func_counts) in counts.iter().enumerate() {
            assert_eq!(func_counts.len(), self.delays[f].len(), "profile shape mismatch");
            for (b, &count) in func_counts.iter().enumerate() {
                total += count * self.delays[f][b].cycles;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    const SRC: &str = "
        int t[16];
        int sum(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += t[i] * i; }
            return s;
        }
        void main() { out(sum(16)); }
    ";

    #[test]
    fn annotates_every_block() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        let expected: usize = module.functions.iter().map(|f| f.blocks.len()).sum();
        assert_eq!(timed.total_annotated_blocks(), expected);
        assert_eq!(timed.pum_name(), pum.name);
    }

    #[test]
    fn nonempty_blocks_get_nonzero_cycles() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        for (fid, func) in module.functions_iter() {
            for (bid, block) in func.blocks_iter() {
                if !block.ops.is_empty() {
                    assert!(
                        timed.cycles(fid, bid) > 0,
                        "block {fid}/{bid} with {} ops got 0 cycles",
                        block.ops.len()
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_pum_is_rejected_up_front() {
        let module = module_of(SRC);
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        pum.clock_period_ps = 0;
        assert!(matches!(
            annotate(&module, &pum),
            Err(EstimateError::BadPum { .. })
        ));
    }

    #[test]
    fn weighted_total_matches_manual_sum() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        // A profile that enters each block exactly once.
        let counts: Vec<Vec<u64>> =
            module.functions.iter().map(|f| vec![1; f.blocks.len()]).collect();
        let manual: u64 = module
            .functions_iter()
            .flat_map(|(fid, f)| {
                f.blocks_iter().map(move |(bid, _)| (fid, bid))
            })
            .map(|(fid, bid)| timed.cycles(fid, bid))
            .sum();
        assert_eq!(timed.weighted_total(&counts), manual);
    }

    #[test]
    fn different_pums_give_different_annotations() {
        let module = module_of(SRC);
        let cpu = annotate(&module, &library::microblaze_like(8 << 10, 4 << 10))
            .expect("annotates");
        let hw =
            annotate(&module, &library::custom_hw("hw", 2, 2)).expect("annotates");
        let total = |t: &TimedModule| {
            module
                .functions_iter()
                .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
                .map(|(fid, bid)| t.cycles(fid, bid))
                .sum::<u64>()
        };
        assert!(total(&hw) < total(&cpu), "HW estimate beats the soft core");
    }
}
