//! Timing annotation: attach a [`BlockDelay`] to every basic block.
//!
//! This is the "Timing Annotator" box of the paper's Fig. 2/3: the CDFG of
//! an application process plus a PUM go in; a [`TimedModule`] comes out,
//! carrying the estimated delay of every basic block. The TLM generator in
//! `tlm-platform` uses it to accumulate `wait()` time as the interpreter
//! enters blocks, and [`crate::emit`] renders it as annotated C text.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tlm_cdfg::dfg::{block_dfg, schedule_key, Dfg};
use tlm_cdfg::ir::Module;
use tlm_cdfg::{BlockId, FuncId};
use tlm_desim::SimTime;

use crate::batch::{solve_batch, BatchItem};
use crate::cache::{DomainHandle, ScheduleCache, ScheduleDomain};
use crate::delay::{block_delay_with_costs, BlockDelay, MemoryCosts};
use crate::error::EstimateError;
use crate::parallel::par_map;
use crate::pum::Pum;
use crate::schedule::{schedule_block_prepared, with_scratch, IssueTable};

/// A module whose basic blocks carry estimated delays for one PUM.
#[derive(Debug, Clone)]
pub struct TimedModule {
    module: Arc<Module>,
    /// `delays[func][block]`.
    delays: Vec<Vec<BlockDelay>>,
    pum_name: String,
    clock_period: SimTime,
    report: AnnotationReport,
}

/// Cost accounting of an annotation run (the paper's Table 1 reports the
/// annotation time per design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnotationReport {
    /// Basic blocks annotated.
    pub blocks: usize,
    /// Operations scheduled.
    pub ops: usize,
    /// Wall-clock time the annotation took.
    pub elapsed: Duration,
    /// Blocks whose Algorithm 1 schedule was served from the
    /// [`ScheduleCache`] (0 when annotating uncached).
    pub cache_hits: usize,
    /// Blocks whose schedule was computed by running Algorithm 1.
    pub cache_misses: usize,
}

/// Runs Algorithms 1 and 2 over every basic block of `module`.
///
/// Uses the process-wide [`ScheduleCache`] and fans block scheduling out
/// over the available cores; the result is bit-identical to the sequential
/// uncached path ([`annotate_uncached`]) — see `tests/parallel_determinism.rs`.
///
/// # Errors
///
/// Fails if the PUM is invalid or cannot execute some block; see
/// [`EstimateError`].
pub fn annotate(module: &Module, pum: &Pum) -> Result<TimedModule, EstimateError> {
    annotate_arc(Arc::new(module.clone()), pum)
}

/// Like [`annotate`] but shares an existing module.
///
/// # Errors
///
/// Same as [`annotate`].
pub fn annotate_arc(module: Arc<Module>, pum: &Pum) -> Result<TimedModule, EstimateError> {
    annotate_arc_with(module, pum, Some(ScheduleCache::global()), true)
}

/// Reference path: sequential, no memoization. Exists so the cached and
/// parallel engine has an oracle to be checked against.
///
/// # Errors
///
/// Same as [`annotate`].
pub fn annotate_uncached(module: &Module, pum: &Pum) -> Result<TimedModule, EstimateError> {
    annotate_arc_with(Arc::new(module.clone()), pum, None, false)
}

/// The full reference engine: sequential, no memoization, and every block
/// scheduled by the retained pre-rewrite kernel
/// ([`crate::reference::schedule_block_reference`]). The strongest oracle
/// available — nothing it runs is shared with the production path — used
/// by the `estperf` benchmark as both baseline and bit-identity check.
///
/// # Errors
///
/// Same as [`annotate`].
#[cfg(feature = "reference-kernel")]
pub fn annotate_reference(module: &Module, pum: &Pum) -> Result<TimedModule, EstimateError> {
    annotate_inner(&PreparedModule::new(Arc::new(module.clone())), pum, None, false, true)
}

/// The fully-general entry point: annotate with an explicit schedule cache
/// (or none) and with or without parallel fan-out.
///
/// Results are deterministic across all four combinations: the block order,
/// the delays and the first reported error are identical whether blocks are
/// scheduled sequentially or concurrently, cached or direct.
///
/// # Errors
///
/// Fails if the PUM is invalid or cannot execute some block. When several
/// blocks fail, the error of the first failing block in module order is
/// returned, regardless of thread interleaving.
pub fn annotate_arc_with(
    module: Arc<Module>,
    pum: &Pum,
    cache: Option<&ScheduleCache>,
    parallel: bool,
) -> Result<TimedModule, EstimateError> {
    annotate_prepared(&PreparedModule::new(module), pum, cache, parallel)
}

/// The PUM-invariant half of the estimation inputs: every block's DFG and
/// canonical schedule key, flattened into one work list.
///
/// A sweep driver annotates the same module under many PUM configurations;
/// building this once and calling [`annotate_prepared`] per configuration
/// hoists the DFG construction and key encoding out of the sweep loop
/// (they depend only on the module). [`annotate_arc_with`] is exactly
/// `annotate_prepared(&PreparedModule::new(module), ..)`, so prepared and
/// unprepared estimation take identical code paths.
#[derive(Debug)]
pub struct PreparedModule {
    module: Arc<Module>,
    /// Flattened block list — load balancing sees every block of every
    /// function, not one function at a time.
    work: Vec<(FuncId, BlockId)>,
    /// Per-`work`-entry DFG.
    dfgs: Vec<Dfg>,
    /// Per-`work`-entry canonical schedule key.
    keys: Vec<Vec<u8>>,
    /// Per-`work`-entry [`crate::batch::key_hash`] of the key, so batch
    /// planning never re-hashes on the sweep hot path.
    key_hashes: Vec<u64>,
    /// Per-`work`-entry dependence heights — DFG-invariant list-scheduling
    /// priorities, hoisted here so Algorithm 1 never recomputes them.
    heights: Vec<Vec<usize>>,
    ops: usize,
    /// Per-function `work` index range — `work` is flattened function by
    /// function, so each function's blocks are one contiguous slice.
    func_ranges: Vec<std::ops::Range<usize>>,
    /// Per-function structural identity key: the length-prefixed
    /// concatenation of every block's *estimate identity* (canonical
    /// schedule key plus the conditional-terminator flag — everything
    /// Algorithms 1 and 2 read from a block besides the op census already
    /// inside the schedule key). Invariant under renaming, reordering of
    /// functions, and whitespace/comment edits; changes whenever an op,
    /// a dependence edge or a terminator kind changes.
    func_keys: Vec<Vec<u8>>,
    /// FNV-1a of `func_keys[f]`, for cheap session-side diffing. Equality
    /// decisions on cache keys always use the full bytes.
    func_hashes: Vec<u64>,
}

impl PreparedModule {
    /// Builds the per-block DFGs and schedule keys.
    pub fn new(module: Arc<Module>) -> PreparedModule {
        let work: Vec<(FuncId, BlockId)> = module
            .functions_iter()
            .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
            .collect();
        let mut dfgs = Vec::with_capacity(work.len());
        let mut keys = Vec::with_capacity(work.len());
        let mut key_hashes = Vec::with_capacity(work.len());
        let mut heights = Vec::with_capacity(work.len());
        for &(fid, bid) in &work {
            let block = &module.functions[fid.0 as usize].blocks[bid.0 as usize];
            let dfg = block_dfg(block);
            let key = schedule_key(block, &dfg);
            key_hashes.push(crate::batch::key_hash(&key));
            keys.push(key);
            heights.push(dfg.heights());
            dfgs.push(dfg);
        }
        let ops = module.functions.iter().flat_map(|f| &f.blocks).map(|b| b.ops.len()).sum();
        let mut func_ranges = Vec::with_capacity(module.functions.len());
        let mut func_keys = Vec::with_capacity(module.functions.len());
        let mut func_hashes = Vec::with_capacity(module.functions.len());
        let mut start = 0usize;
        for func in &module.functions {
            let end = start + func.blocks.len();
            let mut fkey = Vec::new();
            for i in start..end {
                let (fid, bid) = work[i];
                let block = &module.functions[fid.0 as usize].blocks[bid.0 as usize];
                // Length-prefixed so block boundaries can never blur:
                // schedule key ‖ conditional-terminator flag.
                fkey.extend_from_slice(&((keys[i].len() + 1) as u32).to_le_bytes());
                fkey.extend_from_slice(&keys[i]);
                fkey.push(block.term.is_conditional() as u8);
            }
            func_hashes.push(crate::fingerprint::fnv1a_64(&fkey));
            func_keys.push(fkey);
            func_ranges.push(start..end);
            start = end;
        }
        PreparedModule {
            module,
            work,
            dfgs,
            keys,
            key_hashes,
            heights,
            ops,
            func_ranges,
            func_keys,
            func_hashes,
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// Total operations across all blocks.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Total basic blocks across all functions (the length of the
    /// flattened work list).
    pub fn total_blocks(&self) -> usize {
        self.work.len()
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.func_ranges.len()
    }

    /// Number of basic blocks in one function.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn function_blocks(&self, func: FuncId) -> usize {
        self.func_ranges[func.0 as usize].len()
    }

    /// The structural identity key of one function: a canonical encoding
    /// of everything block-level estimation reads from it. Two functions
    /// with equal keys produce bit-identical per-block delay rows under
    /// any PUM.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn function_structural_key(&self, func: FuncId) -> &[u8] {
        &self.func_keys[func.0 as usize]
    }

    /// FNV-1a fingerprint of [`PreparedModule::function_structural_key`] —
    /// for fast dirty-set diffing only; never used as a cache key.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn function_structural_hash(&self, func: FuncId) -> u64 {
        self.func_hashes[func.0 as usize]
    }

    /// `(name, structural hash)` of every function, in module order.
    pub fn function_identities(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.module
            .functions
            .iter()
            .zip(&self.func_hashes)
            .map(|(f, &hash)| (f.name.as_str(), hash))
    }
}

/// Annotates the blocks of a *single function* through the batched engine,
/// returning the per-block delays in block order — the dirty-subset form
/// incremental (edit-to-estimate) sessions re-estimate with.
///
/// Runs the exact floating-point path of the whole-module engine
/// ([`annotate_in_domain`]) — same issue table, same batched Algorithm 1
/// kernel, same [`block_delay_with_costs`] — so the rows it produces are
/// bit-identical to the corresponding slice of a full annotation run.
///
/// # Errors
///
/// Same as [`annotate_in_domain`]; when several blocks fail, the first
/// failing block in block order wins.
///
/// # Panics
///
/// Panics if `func` is out of range for the prepared module.
pub fn annotate_function_in_domain(
    prep: &PreparedModule,
    pum: &Pum,
    handle: &DomainHandle<'_>,
    func: FuncId,
    parallel: bool,
) -> Result<Vec<BlockDelay>, EstimateError> {
    debug_assert_eq!(
        ScheduleDomain::of(pum).fingerprint(),
        handle.fingerprint(),
        "PUM {} does not belong to the resolved schedule domain",
        pum.name
    );
    pum.validate()?;
    let costs = MemoryCosts::of(pum)?;
    let table: Arc<IssueTable> = handle.issue_table(pum);
    let module = &prep.module;
    let range = prep.func_ranges[func.0 as usize].clone();
    let items: Vec<BatchItem<'_>> = range
        .map(|i| {
            let (fid, bid) = prep.work[i];
            BatchItem {
                key: &prep.keys[i],
                key_hash: prep.key_hashes[i],
                block: &module.functions[fid.0 as usize].blocks[bid.0 as usize],
                dfg: &prep.dfgs[i],
                heights: &prep.heights[i],
                func: fid,
                block_id: bid,
            }
        })
        .collect();
    let scheduled = handle.schedule_batch_keyed(&table, &items, parallel);
    items
        .iter()
        .zip(scheduled)
        .map(|(item, result)| {
            result.map(|(sched, _hit)| block_delay_with_costs(&costs, item.block, sched.cycles))
        })
        .collect()
}

/// [`annotate_arc_with`] over a [`PreparedModule`] — the sweep-loop form.
///
/// # Errors
///
/// Same as [`annotate_arc_with`].
pub fn annotate_prepared(
    prep: &PreparedModule,
    pum: &Pum,
    cache: Option<&ScheduleCache>,
    parallel: bool,
) -> Result<TimedModule, EstimateError> {
    // Resolve the PUM's schedule domain once; per-block lookups then only
    // hash the block's own key.
    let handle: Option<DomainHandle<'_>> = cache.map(|c| c.domain(&ScheduleDomain::of(pum)));
    annotate_inner(prep, pum, handle.as_ref(), parallel, false)
}

/// [`annotate_prepared`] with the cache's [`DomainHandle`] already resolved.
///
/// Resolving a domain serializes the PUM's scheduling sub-models, which
/// costs more than annotating a small module from a warm cache. A sweep
/// driver that varies only the statistical models (cache sizes, branch
/// rates) resolves the handle **once per datapath** and passes it to every
/// sweep point. The caller asserts that `pum` belongs to the handle's
/// domain; debug builds verify it.
///
/// # Errors
///
/// Same as [`annotate_prepared`].
pub fn annotate_in_domain(
    prep: &PreparedModule,
    pum: &Pum,
    handle: &DomainHandle<'_>,
    parallel: bool,
) -> Result<TimedModule, EstimateError> {
    debug_assert_eq!(
        ScheduleDomain::of(pum).fingerprint(),
        handle.fingerprint(),
        "PUM {} does not belong to the resolved schedule domain",
        pum.name
    );
    annotate_inner(prep, pum, Some(handle), parallel, false)
}

fn annotate_inner(
    prep: &PreparedModule,
    pum: &Pum,
    handle: Option<&DomainHandle<'_>>,
    parallel: bool,
    reference: bool,
) -> Result<TimedModule, EstimateError> {
    pum.validate()?;
    let start = Instant::now();
    let module = &prep.module;
    // Algorithm 2's block-independent factors, derived once per run.
    let costs = MemoryCosts::of(pum)?;
    // Algorithm 1's per-domain facts, precompiled once per run (served
    // from the cache's domain entry when there is one, so sweeps share a
    // single table per datapath).
    let table: Arc<IssueTable> = match handle {
        Some(handle) => handle.issue_table(pum),
        None => Arc::new(IssueTable::build(pum)),
    };
    #[cfg(not(feature = "reference-kernel"))]
    let _ = reference;

    // The engine paths submit the whole module as one batch: identical
    // blocks fold into one solve, same-shape blocks lane-slice, and
    // `par_map` fans out *solve units* instead of blocks (see
    // [`crate::batch`]). Results stay bit-identical to the sequential
    // per-block oracle below — asserted by `tests/parallel_determinism.rs`
    // and the `reference-kernel` differential tests.
    // The sequential uncached path stays strictly per block, so
    // `annotate_uncached` remains an oracle with nothing shared with the
    // batch planner.
    let batched = !reference && (parallel || handle.is_some());
    let results: Vec<Result<(BlockDelay, bool), EstimateError>> = if batched {
        let items: Vec<BatchItem<'_>> = prep
            .work
            .iter()
            .enumerate()
            .map(|(i, &(fid, bid))| BatchItem {
                key: &prep.keys[i],
                key_hash: prep.key_hashes[i],
                block: &module.functions[fid.0 as usize].blocks[bid.0 as usize],
                dfg: &prep.dfgs[i],
                heights: &prep.heights[i],
                func: fid,
                block_id: bid,
            })
            .collect();
        let scheduled: Vec<Result<(Arc<crate::schedule::ScheduleResult>, bool), EstimateError>> =
            match handle {
                Some(handle) => handle.schedule_batch_keyed(&table, &items, parallel),
                None => solve_batch(&table, &items, parallel)
                    .into_iter()
                    .map(|r| r.map(|sched| (sched, false)))
                    .collect(),
            };
        items
            .iter()
            .zip(scheduled)
            .map(|(item, result)| {
                result.map(|(sched, hit)| {
                    (block_delay_with_costs(&costs, item.block, sched.cycles), hit)
                })
            })
            .collect()
    } else {
        // The reference engine: strictly per block, nothing shared with
        // the batched path — the oracle the batched engine is differenced
        // against.
        let estimate = |&(fid, bid): &(FuncId, BlockId),
                        dfg: &Dfg,
                        heights: &[usize]|
         -> Result<(BlockDelay, bool), EstimateError> {
            let block = &module.functions[fid.0 as usize].blocks[bid.0 as usize];
            #[cfg(feature = "reference-kernel")]
            if reference {
                let sched = crate::reference::schedule_block_reference(pum, block, dfg, fid, bid)?;
                return Ok((block_delay_with_costs(&costs, block, sched.cycles), false));
            }
            let sched = with_scratch(|scratch| {
                schedule_block_prepared(&table, scratch, block, dfg, heights, fid, bid)
            })?;
            Ok((block_delay_with_costs(&costs, block, sched.cycles), false))
        };
        let indices: Vec<usize> = (0..prep.work.len()).collect();
        let run_one = |&i: &usize| estimate(&prep.work[i], &prep.dfgs[i], &prep.heights[i]);
        if parallel {
            par_map(&indices, run_one)
        } else {
            indices.iter().map(run_one).collect()
        }
    };

    let mut delays: Vec<Vec<BlockDelay>> =
        module.functions.iter().map(|f| Vec::with_capacity(f.blocks.len())).collect();
    let mut report = AnnotationReport::default();
    // `results` is in `work` order (par_map merges by index), so scanning it
    // front to back makes the first error deterministic in module order.
    for (&(fid, _), result) in prep.work.iter().zip(results) {
        let (delay, hit) = result?;
        delays[fid.0 as usize].push(delay);
        if hit {
            report.cache_hits += 1;
        } else {
            report.cache_misses += 1;
        }
    }
    report.blocks = prep.work.len();
    report.ops = prep.ops;
    report.elapsed = start.elapsed();
    Ok(TimedModule {
        module: Arc::clone(module),
        delays,
        pum_name: pum.name.clone(),
        clock_period: SimTime::from_ps(pum.clock_period_ps),
        report,
    })
}

impl TimedModule {
    /// The underlying module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The PE model the delays were estimated for.
    pub fn pum_name(&self) -> &str {
        &self.pum_name
    }

    /// The PE clock period, for converting cycles to simulated time.
    pub fn clock_period(&self) -> SimTime {
        self.clock_period
    }

    /// The delay annotated onto one block.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range for the module.
    pub fn delay(&self, func: FuncId, block: BlockId) -> &BlockDelay {
        &self.delays[func.0 as usize][block.0 as usize]
    }

    /// Estimated cycles of one block (the value the generated `wait()`
    /// call carries).
    pub fn cycles(&self, func: FuncId, block: BlockId) -> u64 {
        self.delay(func, block).cycles
    }

    /// Number of annotated basic blocks.
    pub fn total_annotated_blocks(&self) -> usize {
        self.report.blocks
    }

    /// Annotation cost accounting.
    pub fn report(&self) -> &AnnotationReport {
        &self.report
    }

    /// Sum of annotated cycles over all blocks, weighted by an execution
    /// count profile (`counts[func][block]`). Useful to predict total
    /// cycles from a block-frequency profile without re-running.
    ///
    /// # Panics
    ///
    /// Panics if the profile's shape does not match the module.
    pub fn weighted_total(&self, counts: &[Vec<u64>]) -> u64 {
        assert_eq!(counts.len(), self.delays.len(), "profile shape mismatch");
        let mut total = 0u64;
        for (f, func_counts) in counts.iter().enumerate() {
            assert_eq!(func_counts.len(), self.delays[f].len(), "profile shape mismatch");
            for (b, &count) in func_counts.iter().enumerate() {
                total += count * self.delays[f][b].cycles;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    const SRC: &str = "
        int t[16];
        int sum(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += t[i] * i; }
            return s;
        }
        void main() { out(sum(16)); }
    ";

    #[test]
    fn annotates_every_block() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        let expected: usize = module.functions.iter().map(|f| f.blocks.len()).sum();
        assert_eq!(timed.total_annotated_blocks(), expected);
        assert_eq!(timed.pum_name(), pum.name);
    }

    #[test]
    fn nonempty_blocks_get_nonzero_cycles() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        for (fid, func) in module.functions_iter() {
            for (bid, block) in func.blocks_iter() {
                if !block.ops.is_empty() {
                    assert!(
                        timed.cycles(fid, bid) > 0,
                        "block {fid}/{bid} with {} ops got 0 cycles",
                        block.ops.len()
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_pum_is_rejected_up_front() {
        let module = module_of(SRC);
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        pum.clock_period_ps = 0;
        assert!(matches!(annotate(&module, &pum), Err(EstimateError::BadPum { .. })));
    }

    #[test]
    fn weighted_total_matches_manual_sum() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let timed = annotate(&module, &pum).expect("annotates");
        // A profile that enters each block exactly once.
        let counts: Vec<Vec<u64>> =
            module.functions.iter().map(|f| vec![1; f.blocks.len()]).collect();
        let manual: u64 = module
            .functions_iter()
            .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
            .map(|(fid, bid)| timed.cycles(fid, bid))
            .sum();
        assert_eq!(timed.weighted_total(&counts), manual);
    }

    #[test]
    fn all_engine_paths_agree() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let reference = annotate_uncached(&module, &pum).expect("annotates");
        let cache = ScheduleCache::new();
        let arc = Arc::new(module.clone());
        for parallel in [false, true] {
            for use_cache in [false, true] {
                let timed = annotate_arc_with(
                    Arc::clone(&arc),
                    &pum,
                    use_cache.then_some(&cache),
                    parallel,
                )
                .expect("annotates");
                for (fid, func) in module.functions_iter() {
                    for (bid, _) in func.blocks_iter() {
                        assert_eq!(
                            timed.delay(fid, bid),
                            reference.delay(fid, bid),
                            "parallel={parallel} cache={use_cache} differs at {fid}/{bid}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repeat_annotation_is_served_from_cache() {
        let module = module_of(SRC);
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let cache = ScheduleCache::new();
        let arc = Arc::new(module);
        let first =
            annotate_arc_with(Arc::clone(&arc), &pum, Some(&cache), false).expect("annotates");
        assert_eq!(first.report().cache_hits, 0, "cold cache");
        assert_eq!(first.report().cache_misses, first.report().blocks);
        // Sweep point two: different cache size, same datapath — Algorithm 1
        // must not run again for any block.
        let swept = library::microblaze_like(32 << 10, 16 << 10);
        let second = annotate_arc_with(arc, &swept, Some(&cache), false).expect("annotates");
        assert_eq!(second.report().cache_misses, 0, "warm cache");
        assert_eq!(second.report().cache_hits, second.report().blocks);
    }

    #[test]
    fn first_error_is_deterministic() {
        // A module with several blocks that all fail (unmapped class):
        // whichever engine path runs, the reported error is the same.
        let module = module_of(SRC);
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        pum.execution.op_map.clear();
        let cache = ScheduleCache::new();
        let arc = Arc::new(module);
        let reference = annotate_arc_with(Arc::clone(&arc), &pum, None, false)
            .expect_err("unmapped classes fail");
        for parallel in [false, true] {
            for use_cache in [false, true] {
                let err = annotate_arc_with(
                    Arc::clone(&arc),
                    &pum,
                    use_cache.then_some(&cache),
                    parallel,
                )
                .expect_err("unmapped classes fail");
                assert_eq!(err, reference);
            }
        }
    }

    #[test]
    fn different_pums_give_different_annotations() {
        let module = module_of(SRC);
        let cpu =
            annotate(&module, &library::microblaze_like(8 << 10, 4 << 10)).expect("annotates");
        let hw = annotate(&module, &library::custom_hw("hw", 2, 2)).expect("annotates");
        let total = |t: &TimedModule| {
            module
                .functions_iter()
                .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
                .map(|(fid, bid)| t.cycles(fid, bid))
                .sum::<u64>()
        };
        assert!(total(&hw) < total(&cpu), "HW estimate beats the soft core");
    }

    /// Structural hash of a named function, straight from source text.
    fn hash_of(src: &str, name: &str) -> u64 {
        let module = Arc::new(module_of(src));
        let fid = module.function_id(name).expect("function exists");
        PreparedModule::new(module).function_structural_hash(fid)
    }

    #[test]
    fn structural_hash_survives_reordering_and_formatting() {
        let base = "
            int helper(int x) { return x * 3 + 1; }
            void main() { out(helper(ch_recv(0))); }
        ";
        // Functions swapped, whitespace mangled, comments added: every
        // function keeps its structural identity.
        let shuffled = "
            /* moved main up */
            void main() { out(helper(ch_recv(0))); }
            int helper(int x) {
                // same ops, different layout
                return x * 3 + 1;
            }
        ";
        for name in ["helper", "main"] {
            assert_eq!(
                hash_of(base, name),
                hash_of(shuffled, name),
                "{name} identity must survive reorder + formatting"
            );
        }
    }

    #[test]
    fn structural_hash_tracks_op_and_dependency_edits() {
        let base = "int f(int x) { int a = x + 1; int b = x * 2; return a + b; }";
        // Op edit: multiply becomes shift.
        let op_edit = "int f(int x) { int a = x + 1; int b = x << 2; return a + b; }";
        // Dependency edit: same op census, but `b` now consumes `a`.
        let dep_edit = "int f(int x) { int a = x + 1; int b = a * 2; return a + b; }";
        let h = hash_of(base, "f");
        assert_ne!(h, hash_of(op_edit, "f"), "op class change must re-key");
        assert_ne!(h, hash_of(dep_edit, "f"), "dependence change must re-key");
    }

    #[test]
    fn function_identities_enumerate_in_module_order() {
        let module = Arc::new(module_of(SRC));
        let prep = PreparedModule::new(Arc::clone(&module));
        let names: Vec<&str> = prep.function_identities().map(|(n, _)| n).collect();
        let expected: Vec<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, expected);
        assert_eq!(prep.function_count(), module.functions.len());
        assert_eq!(
            (0..prep.function_count())
                .map(|f| prep.function_blocks(FuncId(f as u32)))
                .sum::<usize>(),
            prep.total_blocks()
        );
    }

    #[test]
    fn per_function_annotation_matches_full_run() {
        let module = Arc::new(module_of(SRC));
        let prep = PreparedModule::new(Arc::clone(&module));
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let full = annotate_prepared(&prep, &pum, None, true).expect("annotates");
        let cache = ScheduleCache::new();
        let handle = cache.domain(&ScheduleDomain::of(&pum));
        for (fid, func) in module.functions_iter() {
            let rows = annotate_function_in_domain(&prep, &pum, &handle, fid, true)
                .expect("annotates one function");
            assert_eq!(rows.len(), func.blocks.len());
            for (bid, _) in func.blocks_iter() {
                assert_eq!(
                    rows[bid.0 as usize],
                    *full.delay(fid, bid),
                    "per-function row must be bit-identical to the full run"
                );
            }
        }
    }
}
