//! Hotspot attribution: where does estimated time go?
//!
//! Combines a [`TimedModule`] (per-block estimated cycles) with a measured
//! [`BlockProfile`] (per-block entry counts) into a ranked list of the
//! blocks that dominate the estimate — the report a designer reads before
//! deciding *which* function to move to custom hardware (the decision the
//! paper's SW+N designs encode).

use tlm_cdfg::profile::BlockProfile;
use tlm_cdfg::{BlockId, FuncId};

use crate::annotate::TimedModule;

/// One line of the hotspot report.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Owning function.
    pub func: FuncId,
    /// Function name.
    pub func_name: String,
    /// The block.
    pub block: BlockId,
    /// Times the block was entered.
    pub entries: u64,
    /// Estimated cycles per entry.
    pub cycles_each: u64,
    /// `entries × cycles_each`.
    pub cycles_total: u64,
    /// Fraction of the whole estimate, in `[0, 1]`.
    pub share: f64,
}

/// Ranks blocks by total estimated cycles under the given profile.
/// Blocks that were never entered are omitted.
///
/// # Panics
///
/// Panics if the profile's shape does not match the timed module.
pub fn hotspots(timed: &TimedModule, profile: &BlockProfile) -> Vec<Hotspot> {
    let module = timed.module();
    let grand_total: u64 = module
        .functions_iter()
        .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
        .map(|(fid, bid)| profile.count(fid, bid) * timed.cycles(fid, bid))
        .sum();
    let mut out = Vec::new();
    for (fid, func) in module.functions_iter() {
        for (bid, _) in func.blocks_iter() {
            let entries = profile.count(fid, bid);
            if entries == 0 {
                continue;
            }
            let cycles_each = timed.cycles(fid, bid);
            let cycles_total = entries * cycles_each;
            out.push(Hotspot {
                func: fid,
                func_name: func.name.clone(),
                block: bid,
                entries,
                cycles_each,
                cycles_total,
                share: if grand_total == 0 {
                    0.0
                } else {
                    cycles_total as f64 / grand_total as f64
                },
            });
        }
    }
    out.sort_by_key(|h| std::cmp::Reverse(h.cycles_total));
    out
}

/// Aggregates [`hotspots`] per function — the granularity HW-offload
/// decisions are made at.
pub fn function_shares(timed: &TimedModule, profile: &BlockProfile) -> Vec<(String, f64)> {
    let mut per_func: std::collections::BTreeMap<String, f64> = Default::default();
    for h in hotspots(timed, profile) {
        *per_func.entry(h.func_name).or_insert(0.0) += h.share;
    }
    let mut out: Vec<(String, f64)> = per_func.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::library;
    use tlm_cdfg::interp::{Exec, Machine};
    use tlm_cdfg::ir::Module;
    use tlm_cdfg::profile::ProfileHook;

    fn setup(src: &str) -> (Module, TimedModule, BlockProfile) {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let timed =
            annotate(&module, &library::microblaze_like(8 << 10, 4 << 10)).expect("annotates");
        let main = module.function_id("main").expect("main");
        let mut profile = BlockProfile::new(&module);
        let mut machine = Machine::new(&module, main, &[]);
        assert_eq!(machine.run(&mut ProfileHook::new(&mut profile)), Exec::Done);
        (module, timed, profile)
    }

    const SRC: &str = "
        int heavy(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) { s += i * j; }
            }
            return s;
        }
        int light(int x) { return x + 1; }
        void main() { out(heavy(24)); out(light(3)); }
    ";

    #[test]
    fn shares_sum_to_one_and_rank_correctly() {
        let (_m, timed, profile) = setup(SRC);
        let spots = hotspots(&timed, &profile);
        assert!(!spots.is_empty());
        let total: f64 = spots.iter().map(|h| h.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // Sorted descending.
        assert!(spots.windows(2).all(|w| w[0].cycles_total >= w[1].cycles_total));
        // The inner-loop block of `heavy` dominates.
        assert_eq!(spots[0].func_name, "heavy");
        assert!(spots[0].entries >= 24 * 24);
    }

    #[test]
    fn function_aggregation_identifies_the_offload_candidate() {
        let (_m, timed, profile) = setup(SRC);
        let shares = function_shares(&timed, &profile);
        assert_eq!(shares[0].0, "heavy");
        assert!(shares[0].1 > 0.9, "heavy holds {:.3} of the estimate", shares[0].1);
        let light = shares.iter().find(|(n, _)| n == "light").expect("light ran");
        assert!(light.1 < 0.05);
    }

    #[test]
    fn never_entered_blocks_are_absent() {
        let (_m, timed, profile) =
            setup("void main() { if (0) { out(1); out(2); out(3); } out(0); }");
        for h in hotspots(&timed, &profile) {
            assert!(h.entries > 0);
        }
    }
}
