//! The original Algorithm 1 kernel, retained verbatim as a differential
//! oracle (`reference-kernel` feature, default on).
//!
//! [`crate::schedule::schedule_block`] was rewritten around flat, reusable
//! data structures (issue table, scratch arena, incremental ready set —
//! see the module docs there). This module keeps the straightforward
//! pre-rewrite implementation: per-op `Vec`s rebuilt from [`Pum::binding`]
//! on every call, nested `Vec<Vec<Vec<Slot>>>` pipeline state, a fixpoint
//! scan for transparent ops and a candidate list re-filtered and re-sorted
//! every simulated cycle. It is slow by design and exists so the production
//! kernel can be checked bit-for-bit against an independently simple
//! implementation:
//!
//! - `tests/kernel_differential.rs` fuzzes random DFGs across every
//!   scheduling policy and pipeline shape against it;
//! - `annotate_reference` runs whole modules through it, which the
//!   `estperf` benchmark both asserts against and uses as its sequential
//!   baseline.
//!
//! Do not optimize this file: its value is that it has not changed.

use tlm_cdfg::dfg::Dfg;
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::pum::{Pum, SchedulingPolicy};
use crate::schedule::{ScheduleResult, CYCLE_LIMIT};

/// Per-op scheduling facts precomputed from the PUM.
struct OpInfo {
    /// Cycles spent per stage (index by stage).
    durations: Vec<u32>,
    /// Functional unit used per stage, if any.
    fu_at: Vec<Option<usize>>,
    demand_stage: usize,
    commit_stage: usize,
    transparent: bool,
    /// Issue priority (smaller issues first among ready ops).
    priority: i64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    op: usize,
    remaining: u32,
}

/// The pre-rewrite [`schedule_block`](crate::schedule::schedule_block):
/// schedules one basic block's DFG on the PUM (Algorithm 1).
///
/// # Errors
///
/// Same as [`schedule_block`](crate::schedule::schedule_block).
pub fn schedule_block_reference(
    pum: &Pum,
    block: &BlockData,
    dfg: &Dfg,
    func: FuncId,
    block_id: BlockId,
) -> Result<ScheduleResult, EstimateError> {
    let n = block.ops.len();
    if n == 0 {
        return Ok(ScheduleResult {
            cycles: 0,
            raw_cycles: 0,
            issue_cycle: Vec::new(),
            finish_cycle: Vec::new(),
        });
    }

    let n_stages = pum.max_stages();
    let heights = dfg.heights();
    let infos: Vec<OpInfo> = block
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let b = pum.binding(op.class())?;
            let mut durations = vec![1u32; n_stages];
            let mut fu_at = vec![None; n_stages];
            for u in &b.usage {
                durations[u.stage] = pum.datapath.units[u.fu].modes[u.mode].delay;
                fu_at[u.stage] = Some(u.fu);
            }
            let priority = match pum.execution.policy {
                SchedulingPolicy::InOrder | SchedulingPolicy::Asap => i as i64,
                // List: longest chain first; ALAP: least critical first.
                SchedulingPolicy::List => -(heights[i] as i64),
                SchedulingPolicy::Alap => heights[i] as i64,
            };
            Ok(OpInfo {
                durations,
                fu_at,
                demand_stage: b.demand_stage,
                commit_stage: b.commit_stage,
                transparent: b.transparent,
                priority,
            })
        })
        .collect::<Result<_, EstimateError>>()?;

    let mut committed = vec![false; n];
    let mut done = vec![false; n];
    let mut issued = vec![false; n];
    let mut issue_cycle = vec![None; n];
    let mut finish_cycle = vec![None; n];
    let mut done_count = 0usize;

    let mut fu_free: Vec<u32> = pum.datapath.units.iter().map(|u| u.quantity).collect();
    // pipelines × stages × resident ops
    let mut pipes: Vec<Vec<Vec<Slot>>> =
        pum.datapath.pipelines.iter().map(|p| vec![Vec::new(); p.stages.len()]).collect();

    // Transparent ops whose predecessors are all committed resolve for free.
    let resolve_transparent = |committed: &mut Vec<bool>,
                               done: &mut Vec<bool>,
                               issued: &mut Vec<bool>,
                               done_count: &mut usize| {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if infos[i].transparent && !done[i] && dfg.preds[i].iter().all(|&p| committed[p]) {
                    committed[i] = true;
                    done[i] = true;
                    issued[i] = true;
                    *done_count += 1;
                    changed = true;
                }
            }
        }
    };
    resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

    let mut cycle: u64 = 0;
    let mut last_finish: u64 = 0;
    let mut any_scheduled = false;

    while done_count < n {
        if cycle > CYCLE_LIMIT {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        let mut progress = false;

        // Phase 1: decrement counters; completions at the commit stage
        // publish their results.
        for pipe in pipes.iter_mut() {
            for (stage_idx, stage) in pipe.iter_mut().enumerate() {
                for slot in stage.iter_mut() {
                    if slot.remaining > 0 {
                        slot.remaining -= 1;
                        progress = true;
                        if slot.remaining == 0 && stage_idx == infos[slot.op].commit_stage {
                            committed[slot.op] = true;
                        }
                    }
                }
            }
        }
        resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

        // Phase 2: advclock — advance ops whose stage time elapsed, from
        // the last stage backwards so a vacated stage can be refilled in
        // the same cycle.
        for (pipe_idx, pipe) in pipes.iter_mut().enumerate() {
            let stages = &pum.datapath.pipelines[pipe_idx].stages;
            let n_pipe_stages = pipe.len();
            for s in (0..n_pipe_stages).rev() {
                let mut idx = 0;
                while idx < pipe[s].len() {
                    let slot = pipe[s][idx];
                    if slot.remaining > 0 {
                        idx += 1;
                        continue;
                    }
                    if s + 1 == n_pipe_stages {
                        // Leaves the pipeline.
                        pipe[s].swap_remove(idx);
                        if let Some(fu) = infos[slot.op].fu_at[s] {
                            fu_free[fu] += 1;
                        }
                        done[slot.op] = true;
                        done_count += 1;
                        finish_cycle[slot.op] = Some(cycle);
                        last_finish = last_finish.max(cycle);
                        progress = true;
                        continue; // same idx now holds the swapped element
                    }
                    let ns = s + 1;
                    let info = &infos[slot.op];
                    let room = pipe[ns].len() < stages[ns].width as usize;
                    let operands_ok =
                        ns != info.demand_stage || dfg.preds[slot.op].iter().all(|&p| committed[p]);
                    let fu_ok = info.fu_at[ns].is_none_or(|fu| fu_free[fu] > 0);
                    if room && operands_ok && fu_ok {
                        pipe[s].swap_remove(idx);
                        if let Some(fu) = info.fu_at[s] {
                            fu_free[fu] += 1;
                        }
                        if let Some(fu) = info.fu_at[ns] {
                            fu_free[fu] -= 1;
                        }
                        pipe[ns].push(Slot { op: slot.op, remaining: info.durations[ns] });
                        progress = true;
                    } else {
                        idx += 1; // stalled
                    }
                }
            }
        }
        resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

        // Phase 3: AssignOps — issue into stage 0 per the policy.
        let in_order = pum.execution.policy == SchedulingPolicy::InOrder;
        let mut candidates: Vec<usize> = (0..n).filter(|&i| !issued[i]).collect();
        candidates.sort_by_key(|&i| (infos[i].priority, i));
        'issue: for &op in &candidates {
            let info = &infos[op];
            // Dataflow policies require operands before issue when stage 0
            // demands them; in-order CPUs issue blindly and stall at the
            // demand stage.
            let ready = 0 != info.demand_stage || dfg.preds[op].iter().all(|&p| committed[p]);
            if !ready {
                if in_order {
                    break 'issue; // program order: nothing younger may pass
                }
                continue;
            }
            let mut placed = false;
            for (pipe_idx, pipe) in pipes.iter_mut().enumerate() {
                let width0 = pum.datapath.pipelines[pipe_idx].stages[0].width as usize;
                let room = pipe[0].len() < width0;
                let fu_ok = info.fu_at[0].is_none_or(|fu| fu_free[fu] > 0);
                if room && fu_ok {
                    if let Some(fu) = info.fu_at[0] {
                        fu_free[fu] -= 1;
                    }
                    pipe[0].push(Slot { op, remaining: info.durations[0] });
                    issued[op] = true;
                    issue_cycle[op] = Some(cycle);
                    any_scheduled = true;
                    progress = true;
                    placed = true;
                    break;
                }
            }
            if !placed && in_order {
                break 'issue;
            }
        }

        if !progress {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        cycle += 1;
    }

    let raw_cycles = if any_scheduled { last_finish } else { 0 };
    let cycles = raw_cycles.saturating_sub(pum.fill_correction());
    Ok(ScheduleResult { cycles, raw_cycles, issue_cycle, finish_cycle })
}
