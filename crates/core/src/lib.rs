//! Cycle-approximate retargetable performance estimation at the transaction
//! level — the estimation engine of the paper (Hwang, Abdi, Gajski,
//! DATE 2008).
//!
//! Given an application process as a CDFG (`tlm-cdfg`) and a **Processing
//! Unit Model** ([`pum::Pum`]) describing the PE it is mapped to, this crate
//! computes a cycle-approximate delay for every basic block:
//!
//! 1. [`schedule`] implements **Algorithm 1 (Optimistic Scheduling)**: the
//!    block's DFG is simulated cycle by cycle on the PUM's pipelines,
//!    assuming 100 % cache hits and perfect branch prediction.
//! 2. [`delay`] implements **Algorithm 2**: statistical cache-miss and
//!    branch-misprediction terms are added from the PUM's memory and branch
//!    models.
//! 3. [`annotate()`](annotate::annotate) attaches the delays to the module, producing a
//!    [`annotate::TimedModule`] that the TLM assembly (`tlm-platform`)
//!    consumes, and [`emit`] renders the paper's "timed C" view of it.
//!
//! Retargetability comes from the PUM being *data*: [`library`] provides
//! built-in models (a MicroBlaze-like soft core, non-pipelined custom HW, a
//! 2-issue superscalar, ...) and every model serializes to/from JSON.
//!
//! # Example
//!
//! ```
//! use tlm_core::annotate::annotate;
//! use tlm_core::library;
//!
//! let program = tlm_minic::parse(
//!     "int acc(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * i; } return s; }",
//! )?;
//! let module = tlm_cdfg::lower::lower(&program)?;
//! let pum = library::microblaze_like(8 * 1024, 4 * 1024);
//! let timed = annotate(&module, &pum)?;
//! // Every basic block now carries an estimated cycle delay.
//! assert!(timed.total_annotated_blocks() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod batch;
pub mod cache;
pub mod characterize;
pub mod delay;
pub mod emit;
mod error;
pub mod fingerprint;
pub mod library;
pub mod parallel;
pub mod pum;
#[cfg(feature = "reference-kernel")]
pub mod reference;
pub mod report;
pub mod schedule;

pub use annotate::{annotate, TimedModule};
pub use cache::ScheduleCache;
pub use error::EstimateError;
pub use pum::Pum;

/// Compile-time thread-safety audit. The serving layer (`tlm-serve`)
/// shares one [`ScheduleCache`] across a worker pool and hands
/// [`annotate::PreparedModule`]s, [`Pum`]s and results between threads;
/// these assertions turn an accidental `Rc`/`RefCell`/raw-pointer
/// regression in any of those types into a build error instead of a
/// runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScheduleCache>();
    assert_send_sync::<cache::ScheduleDomain>();
    assert_send_sync::<cache::CacheStats>();
    assert_send_sync::<annotate::PreparedModule>();
    assert_send_sync::<TimedModule>();
    assert_send_sync::<Pum>();
    assert_send_sync::<EstimateError>();
    assert_send_sync::<delay::BlockDelay>();
    assert_send_sync::<delay::MemoryCosts>();
};
