//! Built-in PUM presets: the PE models used by the paper's evaluation.
//!
//! The paper models a MicroBlaze soft core (Fig. 5) and non-pipelined custom
//! HW units (Fig. 4, a DCT datapath). Both are reproduced here, plus a
//! plain 3-stage RISC and a dual-issue superscalar to demonstrate
//! generality. All presets validate; their *statistical* parameters (cache
//! hit rates, branch misprediction ratio) are placeholders that
//! [`crate::characterize`] replaces with measured values.

use std::collections::BTreeMap;

use crate::pum::{
    BranchModel, CacheModel, Datapath, ExecutionModel, FuMode, FuncUnit, MemoryModel, MemoryPath,
    OpBinding, OpClassKey, Pipeline, Pum, SchedulingPolicy, Stage, StageUsage,
};

/// External (off-chip) memory latency used by all presets, in cycles.
pub const EXTERNAL_LATENCY: u32 = 24;

/// Cache sizes (bytes) for which presets carry placeholder hit rates.
pub const CHARACTERIZED_SIZES: [u32; 7] =
    [1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10];

/// A plausible default hit-rate curve used until characterization replaces
/// it: larger caches asymptotically approach 1.
pub fn synthetic_hit_rate(size_bytes: u32) -> f64 {
    let kib = f64::from(size_bytes) / 1024.0;
    (1.0 - 0.22 / kib.sqrt()).clamp(0.0, 1.0)
}

fn default_rates() -> BTreeMap<u32, f64> {
    CHARACTERIZED_SIZES.iter().map(|&s| (s, synthetic_hit_rate(s))).collect()
}

fn cache(size: u32, miss_penalty: u32) -> MemoryPath {
    if size == 0 {
        MemoryPath::Uncached
    } else {
        let mut hit_rates = default_rates();
        hit_rates.entry(size).or_insert_with(|| synthetic_hit_rate(size));
        MemoryPath::Cached(CacheModel { size, hit_rates, hit_delay: 0, miss_penalty })
    }
}

fn mode(name: &str, delay: u32) -> FuMode {
    FuMode { name: name.to_string(), delay }
}

fn unit(name: &str, quantity: u32, modes: Vec<FuMode>) -> FuncUnit {
    FuncUnit { name: name.to_string(), quantity, modes }
}

fn usage(stage: usize, fu: usize, mode: usize) -> Vec<StageUsage> {
    vec![StageUsage { stage, fu, mode }]
}

fn binding(demand: usize, commit: usize, usage: Vec<StageUsage>) -> OpBinding {
    OpBinding { demand_stage: demand, commit_stage: commit, usage, transparent: false }
}

/// A MicroBlaze-like single-issue in-order 5-stage soft core (Fig. 5 of the
/// paper): IF / ID / EX / MEM / WB, one ALU, a 3-cycle multiplier, an
/// iterative divider, one load/store unit, static branch handling with a
/// 2-cycle refill, and configurable i-/d-caches (`0` bytes = no cache; every
/// access then pays the external latency).
pub fn microblaze_like(icache_bytes: u32, dcache_bytes: u32) -> Pum {
    // Unit indices.
    const ALU: usize = 0;
    const SHIFT: usize = 1;
    const MUL: usize = 2;
    const DIV: usize = 3;
    const LSU: usize = 4;
    // Stage indices.
    const EX: usize = 2;
    const MEM: usize = 3;

    let mut op_map = BTreeMap::new();
    op_map.insert(OpClassKey::Alu, binding(EX, EX, usage(EX, ALU, 0)));
    op_map.insert(OpClassKey::Move, binding(EX, EX, usage(EX, ALU, 0)));
    op_map.insert(OpClassKey::Shift, binding(EX, EX, usage(EX, SHIFT, 0)));
    op_map.insert(OpClassKey::Mul, binding(EX, EX, usage(EX, MUL, 0)));
    op_map.insert(OpClassKey::Div, binding(EX, EX, usage(EX, DIV, 0)));
    op_map.insert(OpClassKey::Load, binding(EX, MEM, usage(MEM, LSU, 0)));
    op_map.insert(OpClassKey::Store, binding(MEM, MEM, usage(MEM, LSU, 0)));
    op_map.insert(OpClassKey::Control, binding(EX, EX, usage(EX, ALU, 0)));

    Pum {
        name: format!("microblaze-like i{}k/d{}k", icache_bytes / 1024, dcache_bytes / 1024),
        clock_period_ps: 10_000, // 100 MHz
        execution: ExecutionModel { policy: SchedulingPolicy::InOrder, op_map },
        datapath: Datapath {
            units: vec![
                unit("alu", 1, vec![mode("int", 1)]),
                unit("bshift", 1, vec![mode("shift", 1)]),
                unit("mul", 1, vec![mode("mul32", 3)]),
                unit("div", 1, vec![mode("div32", 32)]),
                unit("lsu", 1, vec![mode("word", 1)]),
            ],
            pipelines: vec![Pipeline {
                name: "main".into(),
                stages: ["IF", "ID", "EX", "MEM", "WB"]
                    .into_iter()
                    .map(|n| Stage { name: n.into(), width: 1 })
                    .collect(),
            }],
        },
        branch: Some(BranchModel {
            policy: "static".into(),
            penalty: 2,
            miss_rate: 0.5, // placeholder; characterization replaces it
        }),
        memory: MemoryModel {
            ifetch: cache(icache_bytes, EXTERNAL_LATENCY),
            data: cache(dcache_bytes, EXTERNAL_LATENCY),
            external_latency: EXTERNAL_LATENCY,
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

/// A non-pipelined custom hardware datapath (Fig. 4 of the paper): modelled,
/// as the paper prescribes, as an equivalent single-issue pipeline with one
/// stage. `n_alu` ALUs and `n_mac` multiply-accumulate units operate in
/// parallel under list scheduling; storage is dual-ported single-cycle
/// block RAM; control is hardwired so there is no instruction fetch and no
/// branch speculation.
pub fn custom_hw(name: &str, n_alu: u32, n_mac: u32) -> Pum {
    const ALU: usize = 0;
    const MAC: usize = 1;
    const DIVIDER: usize = 2;
    const SRAM: usize = 3;

    let mut op_map = BTreeMap::new();
    op_map.insert(OpClassKey::Alu, binding(0, 0, usage(0, ALU, 0)));
    op_map.insert(OpClassKey::Shift, binding(0, 0, usage(0, ALU, 0)));
    op_map.insert(OpClassKey::Mul, binding(0, 0, usage(0, MAC, 0)));
    op_map.insert(OpClassKey::Div, binding(0, 0, usage(0, DIVIDER, 0)));
    op_map.insert(OpClassKey::Load, binding(0, 0, usage(0, SRAM, 0)));
    op_map.insert(OpClassKey::Store, binding(0, 0, usage(0, SRAM, 0)));
    // Constants and copies are hardwired in a custom datapath.
    op_map.insert(
        OpClassKey::Move,
        OpBinding { demand_stage: 0, commit_stage: 0, usage: vec![], transparent: true },
    );
    op_map.insert(OpClassKey::Control, binding(0, 0, usage(0, ALU, 0)));

    Pum {
        name: name.to_string(),
        clock_period_ps: 10_000, // same clock domain as the CPU
        execution: ExecutionModel { policy: SchedulingPolicy::List, op_map },
        datapath: Datapath {
            units: vec![
                unit("alu", n_alu, vec![mode("int", 1)]),
                unit("mac", n_mac, vec![mode("mul", 2)]),
                unit("divider", 1, vec![mode("div", 8)]),
                unit("blockram", 2, vec![mode("word", 1)]),
            ],
            pipelines: vec![Pipeline {
                name: "datapath".into(),
                stages: vec![Stage { name: "exec".into(), width: 64 }],
            }],
        },
        branch: None,
        memory: MemoryModel {
            ifetch: MemoryPath::Hardwired,
            data: MemoryPath::Hardwired,
            external_latency: EXTERNAL_LATENCY,
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

/// A minimal 3-stage (IF/EX/WB) cacheless RISC, showing that small embedded
/// cores are describable too.
pub fn generic_risc() -> Pum {
    const ALU: usize = 0;
    const LSU: usize = 1;
    const EX: usize = 1;

    let mut op_map = BTreeMap::new();
    for key in [OpClassKey::Alu, OpClassKey::Move, OpClassKey::Shift, OpClassKey::Control] {
        op_map.insert(key, binding(EX, EX, usage(EX, ALU, 0)));
    }
    op_map.insert(OpClassKey::Mul, binding(EX, EX, usage(EX, ALU, 1)));
    op_map.insert(OpClassKey::Div, binding(EX, EX, usage(EX, ALU, 2)));
    op_map.insert(OpClassKey::Load, binding(EX, EX, usage(EX, LSU, 0)));
    op_map.insert(OpClassKey::Store, binding(EX, EX, usage(EX, LSU, 0)));

    Pum {
        name: "generic-risc".into(),
        clock_period_ps: 20_000, // 50 MHz
        execution: ExecutionModel { policy: SchedulingPolicy::InOrder, op_map },
        datapath: Datapath {
            units: vec![
                unit("alu", 1, vec![mode("int", 1), mode("mul", 4), mode("div", 16)]),
                unit("lsu", 1, vec![mode("word", 2)]),
            ],
            pipelines: vec![Pipeline {
                name: "main".into(),
                stages: ["IF", "EX", "WB"]
                    .into_iter()
                    .map(|n| Stage { name: n.into(), width: 1 })
                    .collect(),
            }],
        },
        branch: Some(BranchModel { policy: "static".into(), penalty: 1, miss_rate: 0.5 }),
        memory: MemoryModel {
            ifetch: MemoryPath::Uncached,
            data: MemoryPath::Uncached,
            external_latency: 4, // on-chip scratchpad
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

/// A dual-issue in-order superscalar with two symmetric 5-stage pipelines —
/// the paper's "multiple pipelines are allowed for superscalar
/// architectures".
pub fn superscalar2() -> Pum {
    const ALU: usize = 0;
    const MUL: usize = 1;
    const LSU: usize = 2;
    const EX: usize = 2;
    const MEM: usize = 3;

    let mut op_map = BTreeMap::new();
    for key in [OpClassKey::Alu, OpClassKey::Move, OpClassKey::Shift, OpClassKey::Control] {
        op_map.insert(key, binding(EX, EX, usage(EX, ALU, 0)));
    }
    op_map.insert(OpClassKey::Mul, binding(EX, EX, usage(EX, MUL, 0)));
    op_map.insert(OpClassKey::Div, binding(EX, EX, usage(EX, MUL, 1)));
    op_map.insert(OpClassKey::Load, binding(EX, MEM, usage(MEM, LSU, 0)));
    op_map.insert(OpClassKey::Store, binding(MEM, MEM, usage(MEM, LSU, 0)));

    let five_stage = |name: &str| Pipeline {
        name: name.into(),
        stages: ["IF", "ID", "EX", "MEM", "WB"]
            .into_iter()
            .map(|n| Stage { name: n.into(), width: 1 })
            .collect(),
    };

    Pum {
        name: "superscalar-2issue".into(),
        clock_period_ps: 5_000, // 200 MHz
        execution: ExecutionModel { policy: SchedulingPolicy::InOrder, op_map },
        datapath: Datapath {
            units: vec![
                unit("alu", 2, vec![mode("int", 1)]),
                unit("mul", 1, vec![mode("mul32", 3), mode("div32", 20)]),
                unit("lsu", 1, vec![mode("word", 1)]),
            ],
            pipelines: vec![five_stage("u"), five_stage("v")],
        },
        branch: Some(BranchModel { policy: "bimodal".into(), penalty: 3, miss_rate: 0.1 }),
        memory: MemoryModel {
            ifetch: cache(16 << 10, EXTERNAL_LATENCY),
            data: cache(16 << 10, EXTERNAL_LATENCY),
            external_latency: EXTERNAL_LATENCY,
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

/// A 4-slot VLIW DSP: four symmetric 3-stage pipelines fed by list
/// scheduling (a static-scheduled machine exposes its ILP to the
/// compiler/estimator rather than to hardware), two MAC units, two ALUs,
/// dual-ported data memory, scratchpad-based (no caches).
pub fn vliw4() -> Pum {
    const ALU: usize = 0;
    const MAC: usize = 1;
    const LSU: usize = 2;
    const EX: usize = 1;

    let mut op_map = BTreeMap::new();
    for key in [OpClassKey::Alu, OpClassKey::Move, OpClassKey::Shift, OpClassKey::Control] {
        op_map.insert(key, binding(EX, EX, usage(EX, ALU, 0)));
    }
    op_map.insert(OpClassKey::Mul, binding(EX, EX, usage(EX, MAC, 0)));
    op_map.insert(OpClassKey::Div, binding(EX, EX, usage(EX, MAC, 1)));
    op_map.insert(OpClassKey::Load, binding(EX, EX, usage(EX, LSU, 0)));
    op_map.insert(OpClassKey::Store, binding(EX, EX, usage(EX, LSU, 0)));

    let slot = |name: &str| Pipeline {
        name: name.into(),
        stages: ["FE", "EX", "WB"]
            .into_iter()
            .map(|n| Stage { name: n.into(), width: 1 })
            .collect(),
    };

    Pum {
        name: "vliw-4slot".into(),
        clock_period_ps: 5_000, // 200 MHz
        execution: ExecutionModel { policy: SchedulingPolicy::List, op_map },
        datapath: Datapath {
            units: vec![
                unit("alu", 2, vec![mode("int", 1)]),
                unit("mac", 2, vec![mode("mul", 2), mode("div", 12)]),
                unit("lsu", 2, vec![mode("word", 1)]),
            ],
            pipelines: vec![slot("s0"), slot("s1"), slot("s2"), slot("s3")],
        },
        // Static scheduling: untaken paths are compiled around, but a
        // taken-branch bubble remains.
        branch: Some(BranchModel { policy: "static-vliw".into(), penalty: 1, miss_rate: 0.3 }),
        memory: MemoryModel {
            ifetch: MemoryPath::Uncached,
            data: MemoryPath::Hardwired, // dual-ported scratchpad in the LSU delay
            external_latency: 2,         // wide on-chip program memory
            fetch_expansion: 1.0,
            data_expansion: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vliw_extracts_parallelism_beyond_single_issue() {
        use crate::annotate::annotate;
        let src = "int f(int a, int b, int c, int d) {
            return (a * a + b * b) + (c * c + d * d);
        }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let total = |pum: &Pum| -> u64 {
            let timed = annotate(&module, pum).expect("annotates");
            module
                .functions_iter()
                .flat_map(|(fid, f)| f.blocks_iter().map(move |(bid, _)| (fid, bid)))
                .map(|(fid, bid)| timed.delay(fid, bid).sched)
                .sum()
        };
        let mut risc = generic_risc();
        // Compare schedules only: align the memory paths.
        risc.memory.ifetch = MemoryPath::Uncached;
        let vliw = vliw4();
        assert!(total(&vliw) < total(&risc), "vliw {} vs risc {}", total(&vliw), total(&risc));
        vliw.validate().expect("valid");
    }

    #[test]
    fn synthetic_curve_is_monotone() {
        let mut last = 0.0;
        for &s in &CHARACTERIZED_SIZES {
            let r = synthetic_hit_rate(s);
            assert!(r >= last, "hit rate decreases at {s}");
            assert!((0.0..=1.0).contains(&r));
            last = r;
        }
    }

    #[test]
    fn zero_cache_sizes_mean_uncached() {
        let pum = microblaze_like(0, 0);
        assert!(matches!(pum.memory.ifetch, MemoryPath::Uncached));
        assert!(matches!(pum.memory.data, MemoryPath::Uncached));
    }

    #[test]
    fn nonstandard_cache_size_gets_a_rate() {
        let pum = microblaze_like(3 << 10, 4 << 10);
        let MemoryPath::Cached(cache) = &pum.memory.ifetch else {
            panic!("expected cached ifetch");
        };
        assert!(cache.hit_rates.contains_key(&(3 << 10)));
        pum.validate().expect("valid");
    }

    #[test]
    fn hw_preset_has_no_speculation_or_fetch() {
        let pum = custom_hw("imdct", 4, 2);
        assert!(pum.branch.is_none());
        assert!(matches!(pum.memory.ifetch, MemoryPath::Hardwired));
        assert_eq!(pum.max_stages(), 1);
    }

    #[test]
    fn superscalar_has_two_pipelines() {
        let pum = superscalar2();
        assert_eq!(pum.datapath.pipelines.len(), 2);
        pum.validate().expect("valid");
    }
}
