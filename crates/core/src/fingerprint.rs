//! Stable content fingerprints for the schedule cache.
//!
//! The cache is *content-addressed*: entries are keyed by the canonical
//! byte encodings of the PUM's schedule domain and the block's DFG, so two
//! configurations that agree on everything Algorithm 1 reads share entries
//! no matter how they were constructed. The 64-bit FNV-1a hash here is used
//! only for reporting and for the `HashMap` bucket hash — equality is always
//! decided on the full canonical bytes, so hash collisions can never alias
//! two different schedules.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs
/// (unlike `DefaultHasher`, which is randomly seeded per process).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinguishes_neighbours() {
        assert_ne!(fnv1a_64(b"block-0"), fnv1a_64(b"block-1"));
    }
}
