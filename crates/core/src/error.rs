//! Errors of the estimation engine.

use std::error::Error;
use std::fmt;

use tlm_cdfg::{BlockId, FuncId, OpClass};

/// Errors produced while estimating delays.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The PUM's operation mapping table has no entry for an op class that
    /// occurs in the application.
    UnmappedClass {
        /// The class with no binding.
        class: OpClass,
    },
    /// The PUM description is internally inconsistent.
    BadPum {
        /// What is wrong with it.
        message: String,
    },
    /// A cache model is configured with a size that has no characterized
    /// hit rate; Algorithm 2 cannot price its accesses.
    MissingHitRate {
        /// The configured cache size in bytes.
        size: u32,
    },
    /// The pipeline simulation of Algorithm 1 stopped making progress —
    /// the PUM's resources cannot execute this block (e.g. an op's
    /// functional unit has quantity 0 at its only usable stage).
    Deadlock {
        /// Function containing the block.
        func: FuncId,
        /// The block that could not be scheduled.
        block: BlockId,
        /// Cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::UnmappedClass { class } => {
                write!(f, "operation class `{class}` has no PUM mapping")
            }
            EstimateError::BadPum { message } => write!(f, "invalid PUM: {message}"),
            EstimateError::MissingHitRate { size } => write!(
                f,
                "cache size {size} has no characterized hit rate; \
                 characterize it or pick a configured size"
            ),
            EstimateError::Deadlock { func, block, cycle } => write!(
                f,
                "schedule deadlock in {func}/{block} at cycle {cycle}: \
                 PUM resources cannot execute this block"
            ),
        }
    }
}

impl Error for EstimateError {}
