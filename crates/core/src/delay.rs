//! Algorithm 2 — **Compute BB Delay** (§4.2 of the paper).
//!
//! Combines the optimistic schedule of Algorithm 1 with the PUM's
//! statistical branch and memory models:
//!
//! ```text
//! BB_delay  = OptimisticSchedule()
//! if PE is pipelined:   BB_delay += BP_miss_rate × Br_penalty      (†)
//! if PE fetches code:   BB_delay += #ops × ifetch_cost_per_access
//! if PE accesses data:  BB_delay += #mem_operands × data_cost_per_access
//! return round(BB_delay)
//! ```
//!
//! (†) refinement: the branch term is charged only to blocks that actually
//! end in a conditional branch; blocks ending in an unconditional jump,
//! call or return cannot mispredict on the modelled cores.

use tlm_cdfg::dfg::Dfg;
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::pum::{MemoryPath, Pum};
use crate::schedule::schedule_block;

/// The estimated delay of one basic block, with its components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockDelay {
    /// Cycles from the optimistic schedule (Algorithm 1).
    pub sched: u64,
    /// Expected branch misprediction cycles.
    pub branch: f64,
    /// Expected instruction-fetch cycles (cache/statistical model).
    pub ifetch: f64,
    /// Expected data-access cycles (cache/statistical model).
    pub data: f64,
    /// Total, rounded to whole cycles as in the paper.
    pub cycles: u64,
    /// Total before rounding.
    pub exact: f64,
}

impl BlockDelay {
    /// A zero delay (empty block).
    pub const ZERO: BlockDelay =
        BlockDelay { sched: 0, branch: 0.0, ifetch: 0.0, data: 0.0, cycles: 0, exact: 0.0 };
}

/// Expected extra cycles per access through a memory path.
///
/// # Errors
///
/// Returns [`EstimateError::MissingHitRate`] for a cache whose configured
/// size was never characterized (instead of panicking mid-estimation).
fn cost_per_access(path: &MemoryPath, external_latency: u32) -> Result<f64, EstimateError> {
    Ok(match path {
        MemoryPath::Hardwired => 0.0,
        MemoryPath::Uncached => f64::from(external_latency),
        MemoryPath::Cached(cache) => {
            let hit = cache.hit_rate()?;
            hit * f64::from(cache.hit_delay) + (1.0 - hit) * f64::from(cache.miss_penalty)
        }
    })
}

/// The block-independent factors of Algorithm 2, hoisted out of the
/// per-block loop: per-access memory costs and the misprediction penalty
/// are properties of the PUM alone, so an annotation run (or a sweep
/// point) derives them once and applies them to every block.
///
/// [`block_delay_with_costs`] with the same `MemoryCosts` value performs
/// exactly the floating-point operations the one-shot [`block_delay`]
/// performs, so hoisting cannot change a single bit of any delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryCosts {
    /// Expected cycles per instruction fetch; `None` on hardwired control.
    ifetch: Option<f64>,
    /// Expected cycles per data access; `None` on hardwired data paths.
    data: Option<f64>,
    /// Expected misprediction cycles charged to conditional terminators.
    branch: f64,
    /// Issue-slot/fetch expansion factor (1.0 on hardwired control).
    fetch_expansion: f64,
    data_expansion: f64,
}

impl MemoryCosts {
    /// Derives the per-access costs of a PUM.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::MissingHitRate`] for an uncharacterized
    /// cache size — detected once up front instead of once per block.
    pub fn of(pum: &Pum) -> Result<MemoryCosts, EstimateError> {
        let ifetch = if matches!(pum.memory.ifetch, MemoryPath::Hardwired) {
            None
        } else {
            Some(cost_per_access(&pum.memory.ifetch, pum.memory.external_latency)?)
        };
        let data = if matches!(pum.memory.data, MemoryPath::Hardwired) {
            None
        } else {
            Some(cost_per_access(&pum.memory.data, pum.memory.external_latency)?)
        };
        let branch = match &pum.branch {
            Some(model) if pum.is_pipelined() => model.miss_rate * f64::from(model.penalty),
            _ => 0.0,
        };
        Ok(MemoryCosts {
            ifetch,
            data,
            branch,
            fetch_expansion: pum.memory.fetch_expansion,
            data_expansion: pum.memory.data_expansion,
        })
    }
}

/// Computes the delay of one basic block (Algorithm 2).
///
/// # Errors
///
/// Propagates [`EstimateError`] from Algorithm 1.
pub fn block_delay(
    pum: &Pum,
    block: &BlockData,
    dfg: &Dfg,
    func: FuncId,
    block_id: BlockId,
) -> Result<BlockDelay, EstimateError> {
    let sched = schedule_block(pum, block, dfg, func, block_id)?.cycles;
    block_delay_with_schedule(pum, block, sched)
}

/// Algorithm 2 alone: combines an already-computed optimistic schedule
/// (Algorithm 1, possibly served by the
/// [`ScheduleCache`](crate::cache::ScheduleCache)) with the PUM's
/// statistical branch and memory models. [`block_delay`] is exactly
/// `schedule_block` followed by this function, so cached and uncached
/// estimation take the same floating-point path and agree bit-for-bit.
///
/// # Errors
///
/// Returns [`EstimateError::MissingHitRate`] for an uncharacterized cache
/// size.
pub fn block_delay_with_schedule(
    pum: &Pum,
    block: &BlockData,
    sched: u64,
) -> Result<BlockDelay, EstimateError> {
    Ok(block_delay_with_costs(&MemoryCosts::of(pum)?, block, sched))
}

/// Algorithm 2 with the PUM-dependent costs already derived — the form the
/// annotation loop uses so the per-block work is pure arithmetic.
pub fn block_delay_with_costs(costs: &MemoryCosts, block: &BlockData, sched: u64) -> BlockDelay {
    // On an instruction-fetching PE the block's terminator is a real
    // control-transfer instruction occupying an issue slot, and the
    // characterized back-end expansion factor applies to issue slots just
    // as it does to fetches (single-issue: one fetch = one slot). Custom
    // hardware has hardwired control: neither applies.
    let mut exact = if costs.ifetch.is_none() {
        sched as f64
    } else {
        (sched as f64 + 1.0) * costs.fetch_expansion
    };

    // Branch misprediction term.
    let mut branch = 0.0;
    if costs.branch != 0.0 && block.term.is_conditional() {
        branch = costs.branch;
        exact += branch;
    }

    // Instruction fetch term: one fetch per op plus one for the
    // terminator's control-transfer instruction.
    let mut ifetch = 0.0;
    if let Some(cost) = costs.ifetch {
        let fetches = (block.ops.len() + 1) as f64 * costs.fetch_expansion;
        ifetch = fetches * cost;
        exact += ifetch;
    }

    // Data access term: one per memory operand.
    let mut data = 0.0;
    if let Some(cost) = costs.data {
        let operands =
            block.ops.iter().filter(|op| op.is_memory()).count() as f64 * costs.data_expansion;
        data = operands * cost;
        exact += data;
    }

    BlockDelay { sched, branch, ifetch, data, cycles: exact.round() as u64, exact }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::pum::MemoryPath;
    use tlm_cdfg::dfg::block_dfg;
    use tlm_cdfg::ir::Module;

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    fn delay_of(pum: &Pum, src: &str) -> BlockDelay {
        let module = module_of(src);
        let func = &module.functions[0];
        let (bid, block) = func.blocks_iter().max_by_key(|(_, b)| b.ops.len()).expect("has blocks");
        block_delay(pum, block, &block_dfg(block), FuncId(0), bid).expect("estimates")
    }

    #[test]
    fn uncached_fetches_dominate() {
        // With no i-cache every instruction fetch pays the external
        // latency; the memory term dwarfs the schedule.
        let d = delay_of(&library::microblaze_like(0, 0), "int f(int a) { return a + 1; }");
        assert!(d.ifetch > d.sched as f64);
        assert_eq!(d.cycles, d.exact.round() as u64);
    }

    #[test]
    fn bigger_cache_means_smaller_delay() {
        let src = "int t[64]; int f(int i) { return t[i] + t[i + 1]; }";
        let small = delay_of(&library::microblaze_like(1 << 10, 1 << 10), src);
        let large = delay_of(&library::microblaze_like(32 << 10, 16 << 10), src);
        assert!(large.exact < small.exact, "large {} small {}", large.exact, small.exact);
    }

    #[test]
    fn hardwired_hw_pays_no_memory_terms() {
        let d = delay_of(
            &library::custom_hw("dct", 2, 2),
            "int t[8]; int f(int i) { return t[i] * 3; }",
        );
        assert_eq!(d.ifetch, 0.0);
        assert_eq!(d.data, 0.0);
        assert_eq!(d.branch, 0.0, "no speculation on HW");
    }

    #[test]
    fn branch_term_only_on_conditional_blocks() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let module = module_of("int f(int a) { if (a > 0) { a += 1; } return a; }");
        let func = &module.functions[0];
        let mut saw_branch_term = false;
        let mut saw_zero_branch = false;
        for (bid, block) in func.blocks_iter() {
            let d = block_delay(&pum, block, &block_dfg(block), FuncId(0), bid).expect("estimates");
            if block.term.is_conditional() {
                assert!(d.branch > 0.0);
                saw_branch_term = true;
            } else {
                assert_eq!(d.branch, 0.0);
                saw_zero_branch = true;
            }
        }
        assert!(saw_branch_term && saw_zero_branch);
    }

    #[test]
    fn branch_term_scales_with_miss_rate() {
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        let src = "int f(int a) { if (a > 0) { a += 1; } return a; }";
        pum.branch.as_mut().expect("has branch model").miss_rate = 0.0;
        let perfect = delay_of(&pum, src);
        pum.branch.as_mut().expect("has branch model").miss_rate = 1.0;
        let terrible = delay_of(&pum, src);
        assert!(terrible.exact >= perfect.exact);
    }

    #[test]
    fn data_term_counts_memory_operands_only() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let no_mem = delay_of(&pum, "int f(int a) { return a + a; }");
        assert_eq!(no_mem.data, 0.0);
        let with_mem = delay_of(&pum, "int t[4]; int f(int i) { return t[i]; }");
        assert!(with_mem.data > 0.0);
    }

    #[test]
    fn uncharacterized_cache_size_is_an_error_not_a_panic() {
        use crate::EstimateError;
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        if let MemoryPath::Cached(c) = &mut pum.memory.data {
            c.size = 1234; // swept past the characterized sizes
        }
        let module = module_of("int t[4]; int f(int i) { return t[i]; }");
        let block = &module.functions[0].blocks[0];
        let err = block_delay(&pum, block, &block_dfg(block), FuncId(0), BlockId(0))
            .expect_err("missing rate is structured");
        assert_eq!(err, EstimateError::MissingHitRate { size: 1234 });
    }

    #[test]
    fn hit_rate_one_with_zero_hit_delay_is_free() {
        let mut pum = library::microblaze_like(8 << 10, 4 << 10);
        for path in [&mut pum.memory.ifetch, &mut pum.memory.data] {
            if let MemoryPath::Cached(c) = path {
                c.hit_rates.insert(c.size, 1.0);
                c.hit_delay = 0;
            }
        }
        let d = delay_of(&pum, "int t[4]; int f(int i) { return t[i] + 1; }");
        assert_eq!(d.ifetch, 0.0);
        assert_eq!(d.data, 0.0);
        // Only the schedule plus the terminator's issue slot remains.
        assert_eq!(d.cycles, d.sched + 1);
    }
}
