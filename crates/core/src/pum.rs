//! The Processing Unit Model (PUM) — §4.1 of the paper.
//!
//! A PUM characterizes a processing element with four sub-models:
//!
//! 1. **Execution model** — the operation scheduling policy and the
//!    operation mapping table (demand-operand stage, commit-result stage and
//!    per-stage functional-unit usage for every operation class);
//! 2. **Datapath model** — functional units (type, quantity, modes with
//!    per-mode delays) and one or more pipelines (multiple pipelines model
//!    superscalar issue);
//! 3. **Branch delay model** — statistical: misprediction penalty and
//!    average misprediction ratio;
//! 4. **Memory model** — statistical: i-/d-cache hit rates for a set of
//!    cache sizes, access latencies and the external memory latency.
//!
//! Everything here is plain serializable data: retargeting the estimator to
//! a new PE means writing a new PUM, not new code (the paper's Figs. 4–5
//! show a custom DCT datapath and a MicroBlaze described in the same form).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tlm_cdfg::OpClass;

use crate::error::EstimateError;

/// Operation scheduling policies the execution model supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Issue strictly in program order (one op per pipeline per cycle);
    /// the policy of in-order processors.
    InOrder,
    /// Issue any data-ready op, oldest first — classic ASAP dataflow
    /// scheduling, natural for custom hardware.
    Asap,
    /// Issue data-ready ops, least critical first (largest slack). Mostly
    /// useful as an ablation baseline; produces the worst schedules.
    Alap,
    /// List scheduling: issue data-ready ops, longest dependence chain
    /// (height) first. The usual choice for custom HW datapaths.
    List,
}

/// One operating mode of a functional unit, e.g. an ALU's `add` vs `mul`
/// mode, with the cycles the unit is occupied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuMode {
    /// Mode name (diagnostic only).
    pub name: String,
    /// Cycles an operation occupies the unit in this mode (≥ 1).
    pub delay: u32,
}

/// A functional unit type with a replication count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncUnit {
    /// Unit name, e.g. `"alu"`, `"mac"`, `"lsu"`.
    pub name: String,
    /// How many identical instances exist.
    pub quantity: u32,
    /// Available modes.
    pub modes: Vec<FuMode>,
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage name, e.g. `"IF"`, `"EX"`.
    pub name: String,
    /// Maximum operations resident in the stage simultaneously. CPU stages
    /// use 1; a non-pipelined HW datapath models its single stage with a
    /// width bounded by its functional units.
    pub width: u32,
}

/// One pipeline: an ordered list of stages. Superscalar PEs have several.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    /// Stages in flow order.
    pub stages: Vec<Stage>,
}

/// The datapath model: functional units plus pipelines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datapath {
    /// Functional unit inventory.
    pub units: Vec<FuncUnit>,
    /// Pipelines (≥ 1). All pipelines share the stage structure
    /// requirements of the operation mapping table.
    pub pipelines: Vec<Pipeline>,
}

/// Functional-unit usage of an operation at one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageUsage {
    /// Stage index the unit is used in.
    pub stage: usize,
    /// Index into [`Datapath::units`].
    pub fu: usize,
    /// Index into that unit's modes; the mode delay is how long the op
    /// occupies the stage.
    pub mode: usize,
}

/// Operation mapping table entry for one op class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpBinding {
    /// Stage at which operands must be available (the *demand operand*
    /// flag of the paper).
    pub demand_stage: usize,
    /// Stage whose completion makes the result available to dependents
    /// (the *commit result* flag).
    pub commit_stage: usize,
    /// Per-stage functional-unit usage; stages not listed take one cycle
    /// and no unit.
    pub usage: Vec<StageUsage>,
    /// A transparent op costs nothing: it never enters the pipeline and its
    /// result is available immediately (e.g. constants that are hardwired
    /// in a custom datapath).
    #[serde(default)]
    pub transparent: bool,
}

/// The execution model: scheduling policy + operation mapping table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionModel {
    /// How ready operations are picked for issue.
    pub policy: SchedulingPolicy,
    /// Binding for each op class that can occur. Missing classes make
    /// estimation fail with [`EstimateError::UnmappedClass`].
    pub op_map: BTreeMap<OpClassKey, OpBinding>,
}

/// Serializable key wrapper for [`OpClass`] (serde maps need string keys).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum OpClassKey {
    /// [`OpClass::Alu`]
    Alu,
    /// [`OpClass::Mul`]
    Mul,
    /// [`OpClass::Div`]
    Div,
    /// [`OpClass::Shift`]
    Shift,
    /// [`OpClass::Load`]
    Load,
    /// [`OpClass::Store`]
    Store,
    /// [`OpClass::Move`]
    Move,
    /// [`OpClass::Control`]
    Control,
}

impl From<OpClass> for OpClassKey {
    fn from(value: OpClass) -> Self {
        match value {
            OpClass::Alu => OpClassKey::Alu,
            OpClass::Mul => OpClassKey::Mul,
            OpClass::Div => OpClassKey::Div,
            OpClass::Shift => OpClassKey::Shift,
            OpClass::Load => OpClassKey::Load,
            OpClass::Store => OpClassKey::Store,
            OpClass::Move => OpClassKey::Move,
            OpClass::Control => OpClassKey::Control,
        }
    }
}

/// Statistical branch delay model (§4.1, item 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchModel {
    /// Prediction scheme name (informational; the *rate* carries the
    /// statistics).
    pub policy: String,
    /// Cycles lost on a misprediction.
    pub penalty: u32,
    /// Average misprediction ratio in `[0, 1]`.
    pub miss_rate: f64,
}

/// How instruction fetches or data accesses reach memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemoryPath {
    /// No memory traffic at all: custom HW with hardwired control (for
    /// instructions) or dedicated single-cycle SRAM already accounted in
    /// the functional-unit delay (for data).
    Hardwired,
    /// Every access pays the external memory latency (cacheless CPU).
    Uncached,
    /// Statistical cache model.
    Cached(CacheModel),
}

/// Statistical cache model (§4.1, item 4): average hit rates per cache
/// size, plus latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    /// Configured cache size in bytes; must be a key of `hit_rates`.
    pub size: u32,
    /// Average hit rate per cache size (bytes → rate in `[0, 1]`). Obtained
    /// by characterization (see [`crate::characterize`]).
    pub hit_rates: BTreeMap<u32, f64>,
    /// Extra cycles of a hit beyond what the pipeline already overlaps
    /// (usually 0 for an L1 integrated into the pipeline).
    pub hit_delay: u32,
    /// Cycles lost on a miss.
    pub miss_penalty: u32,
}

impl CacheModel {
    /// The hit rate at the configured size.
    ///
    /// # Panics
    ///
    /// Panics if the configured size has no characterized rate; construct
    /// through [`Pum::validate`]d models to avoid this.
    pub fn hit_rate(&self) -> f64 {
        self.hit_rates[&self.size]
    }
}

fn one() -> f64 {
    1.0
}

/// The memory model: instruction and data paths plus external latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Instruction fetch path.
    pub ifetch: MemoryPath,
    /// Data access path.
    pub data: MemoryPath,
    /// External (off-chip) memory latency in cycles.
    pub external_latency: u32,
    /// Average target instructions fetched per CDFG operation (the paper's
    /// LLVM ops map ~1:1 to MicroBlaze instructions; a higher-level IR
    /// carries a characterized expansion ratio instead). Default 1.0.
    #[serde(default = "one")]
    pub fetch_expansion: f64,
    /// Average data-memory accesses per CDFG memory operand (register
    /// spills and reloads add traffic the IR does not show). Default 1.0.
    #[serde(default = "one")]
    pub data_expansion: f64,
}

/// A complete Processing Unit Model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pum {
    /// PE name, e.g. `"microblaze"` or `"dct_hw"`.
    pub name: String,
    /// Clock period in picoseconds (for converting cycles to time).
    pub clock_period_ps: u64,
    /// Execution model.
    pub execution: ExecutionModel,
    /// Datapath model.
    pub datapath: Datapath,
    /// Branch delay model; `None` for PEs without speculation (Alg. 2
    /// adds no branch term then).
    pub branch: Option<BranchModel>,
    /// Memory model.
    pub memory: MemoryModel,
}

impl Pum {
    /// Deepest pipeline length, in stages.
    pub fn max_stages(&self) -> usize {
        self.datapath.pipelines.iter().map(|p| p.stages.len()).max().unwrap_or(0)
    }

    /// Whether the PE is pipelined in the sense of Algorithm 2 (more than
    /// one stage ⇒ branch penalties exist).
    pub fn is_pipelined(&self) -> bool {
        self.max_stages() > 1
    }

    /// Steady-state correction subtracted from each block's schedule: the
    /// pipeline fill of `depth - 1` cycles is paid once per mispredicted
    /// branch (Algorithm 2's penalty), not once per basic block.
    pub fn fill_correction(&self) -> u64 {
        self.max_stages().saturating_sub(1) as u64
    }

    /// Looks up the binding of an op class.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnmappedClass`] if the PUM does not map it.
    pub fn binding(&self, class: OpClass) -> Result<&OpBinding, EstimateError> {
        self.execution
            .op_map
            .get(&OpClassKey::from(class))
            .ok_or(EstimateError::UnmappedClass { class })
    }

    /// Serializes the PUM to pretty JSON (the tool's interchange format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PUM serialization cannot fail")
    }

    /// Parses a PUM from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::BadPum`] on malformed JSON or on a model
    /// that fails [`Pum::validate`].
    pub fn from_json(text: &str) -> Result<Pum, EstimateError> {
        let pum: Pum = serde_json::from_str(text)
            .map_err(|e| EstimateError::BadPum { message: e.to_string() })?;
        pum.validate()?;
        Ok(pum)
    }

    /// Checks internal consistency of the model.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::BadPum`] describing the first violation:
    /// empty pipelines, zero-delay modes, out-of-range stage/unit/mode
    /// references, rates outside `[0, 1]`, or a cache whose configured size
    /// has no characterized hit rate.
    pub fn validate(&self) -> Result<(), EstimateError> {
        let bad = |message: String| Err(EstimateError::BadPum { message });
        if self.clock_period_ps == 0 {
            return bad("clock period must be non-zero".into());
        }
        if self.datapath.pipelines.is_empty() {
            return bad("datapath needs at least one pipeline".into());
        }
        for p in &self.datapath.pipelines {
            if p.stages.is_empty() {
                return bad(format!("pipeline `{}` has no stages", p.name));
            }
            for s in &p.stages {
                if s.width == 0 {
                    return bad(format!("stage `{}` has zero width", s.name));
                }
            }
        }
        for u in &self.datapath.units {
            if u.quantity == 0 {
                return bad(format!("unit `{}` has zero quantity", u.name));
            }
            if u.modes.is_empty() {
                return bad(format!("unit `{}` has no modes", u.name));
            }
            for m in &u.modes {
                if m.delay == 0 {
                    return bad(format!("mode `{}.{}` has zero delay", u.name, m.name));
                }
            }
        }
        let n_stages = self.max_stages();
        for (key, b) in &self.execution.op_map {
            if b.transparent {
                continue;
            }
            if b.demand_stage >= n_stages || b.commit_stage >= n_stages {
                return bad(format!("binding {key:?} references stage out of range"));
            }
            if b.demand_stage > b.commit_stage {
                return bad(format!("binding {key:?} demands operands after committing"));
            }
            for usage in &b.usage {
                if usage.stage >= n_stages {
                    return bad(format!("binding {key:?} uses out-of-range stage"));
                }
                let Some(unit) = self.datapath.units.get(usage.fu) else {
                    return bad(format!("binding {key:?} uses unknown unit {}", usage.fu));
                };
                if usage.mode >= unit.modes.len() {
                    return bad(format!(
                        "binding {key:?} uses unknown mode {} of `{}`",
                        usage.mode, unit.name
                    ));
                }
            }
        }
        if let Some(branch) = &self.branch {
            if !(0.0..=1.0).contains(&branch.miss_rate) {
                return bad("branch miss rate outside [0, 1]".into());
            }
        }
        if self.memory.fetch_expansion <= 0.0 || self.memory.data_expansion <= 0.0 {
            return bad("memory expansion factors must be positive".into());
        }
        for (label, path) in
            [("ifetch", &self.memory.ifetch), ("data", &self.memory.data)]
        {
            if let MemoryPath::Cached(cache) = path {
                if !cache.hit_rates.contains_key(&cache.size) {
                    return bad(format!(
                        "{label} cache size {} has no characterized hit rate",
                        cache.size
                    ));
                }
                for (&size, &rate) in &cache.hit_rates {
                    if !(0.0..=1.0).contains(&rate) {
                        return bad(format!(
                            "{label} cache hit rate for size {size} outside [0, 1]"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn library_models_validate() {
        for pum in [
            library::microblaze_like(8 * 1024, 4 * 1024),
            library::microblaze_like(0, 0),
            library::custom_hw("dct", 2, 2),
            library::generic_risc(),
            library::superscalar2(),
            library::vliw4(),
        ] {
            pum.validate().unwrap_or_else(|e| panic!("{}: {e}", pum.name));
        }
    }

    #[test]
    fn json_round_trip() {
        let pum = library::microblaze_like(8 * 1024, 4 * 1024);
        let text = pum.to_json();
        let back = Pum::from_json(&text).expect("round-trips");
        assert_eq!(pum, back);
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(matches!(
            Pum::from_json("{ not json"),
            Err(EstimateError::BadPum { .. })
        ));
    }

    #[test]
    fn zero_delay_mode_is_rejected() {
        let mut pum = library::custom_hw("bad", 1, 1);
        pum.datapath.units[0].modes[0].delay = 0;
        assert!(pum.validate().is_err());
    }

    #[test]
    fn bad_stage_reference_is_rejected() {
        let mut pum = library::generic_risc();
        if let Some(binding) = pum.execution.op_map.get_mut(&OpClassKey::Alu) {
            binding.commit_stage = 99;
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn missing_hit_rate_for_size_is_rejected() {
        let mut pum = library::microblaze_like(8 * 1024, 4 * 1024);
        if let MemoryPath::Cached(cache) = &mut pum.memory.ifetch {
            cache.size = 1234; // size with no characterized rate
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn branch_rate_out_of_range_is_rejected() {
        let mut pum = library::microblaze_like(8 * 1024, 4 * 1024);
        if let Some(b) = &mut pum.branch {
            b.miss_rate = 1.5;
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn pipelining_predicates() {
        let cpu = library::microblaze_like(8 * 1024, 4 * 1024);
        assert!(cpu.is_pipelined());
        assert_eq!(cpu.fill_correction(), cpu.max_stages() as u64 - 1);
        let hw = library::custom_hw("dct", 2, 2);
        assert!(!hw.is_pipelined(), "single-stage HW is not pipelined");
        assert_eq!(hw.fill_correction(), 0);
    }
}
