//! The Processing Unit Model (PUM) — §4.1 of the paper.
//!
//! A PUM characterizes a processing element with four sub-models:
//!
//! 1. **Execution model** — the operation scheduling policy and the
//!    operation mapping table (demand-operand stage, commit-result stage and
//!    per-stage functional-unit usage for every operation class);
//! 2. **Datapath model** — functional units (type, quantity, modes with
//!    per-mode delays) and one or more pipelines (multiple pipelines model
//!    superscalar issue);
//! 3. **Branch delay model** — statistical: misprediction penalty and
//!    average misprediction ratio;
//! 4. **Memory model** — statistical: i-/d-cache hit rates for a set of
//!    cache sizes, access latencies and the external memory latency.
//!
//! Everything here is plain serializable data: retargeting the estimator to
//! a new PE means writing a new PUM, not new code (the paper's Figs. 4–5
//! show a custom DCT datapath and a MicroBlaze described in the same form).

use std::collections::BTreeMap;

use tlm_cdfg::OpClass;
use tlm_json::{JsonError, ObjectBuilder, Value};

use crate::error::EstimateError;

/// Operation scheduling policies the execution model supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Issue strictly in program order (one op per pipeline per cycle);
    /// the policy of in-order processors.
    InOrder,
    /// Issue any data-ready op, oldest first — classic ASAP dataflow
    /// scheduling, natural for custom hardware.
    Asap,
    /// Issue data-ready ops, least critical first (largest slack). Mostly
    /// useful as an ablation baseline; produces the worst schedules.
    Alap,
    /// List scheduling: issue data-ready ops, longest dependence chain
    /// (height) first. The usual choice for custom HW datapaths.
    List,
}

/// One operating mode of a functional unit, e.g. an ALU's `add` vs `mul`
/// mode, with the cycles the unit is occupied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuMode {
    /// Mode name (diagnostic only).
    pub name: String,
    /// Cycles an operation occupies the unit in this mode (≥ 1).
    pub delay: u32,
}

/// A functional unit type with a replication count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncUnit {
    /// Unit name, e.g. `"alu"`, `"mac"`, `"lsu"`.
    pub name: String,
    /// How many identical instances exist.
    pub quantity: u32,
    /// Available modes.
    pub modes: Vec<FuMode>,
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Stage name, e.g. `"IF"`, `"EX"`.
    pub name: String,
    /// Maximum operations resident in the stage simultaneously. CPU stages
    /// use 1; a non-pipelined HW datapath models its single stage with a
    /// width bounded by its functional units.
    pub width: u32,
}

/// One pipeline: an ordered list of stages. Superscalar PEs have several.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    /// Stages in flow order.
    pub stages: Vec<Stage>,
}

/// The datapath model: functional units plus pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datapath {
    /// Functional unit inventory.
    pub units: Vec<FuncUnit>,
    /// Pipelines (≥ 1). All pipelines share the stage structure
    /// requirements of the operation mapping table.
    pub pipelines: Vec<Pipeline>,
}

/// Functional-unit usage of an operation at one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageUsage {
    /// Stage index the unit is used in.
    pub stage: usize,
    /// Index into [`Datapath::units`].
    pub fu: usize,
    /// Index into that unit's modes; the mode delay is how long the op
    /// occupies the stage.
    pub mode: usize,
}

/// Operation mapping table entry for one op class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBinding {
    /// Stage at which operands must be available (the *demand operand*
    /// flag of the paper).
    pub demand_stage: usize,
    /// Stage whose completion makes the result available to dependents
    /// (the *commit result* flag).
    pub commit_stage: usize,
    /// Per-stage functional-unit usage; stages not listed take one cycle
    /// and no unit.
    pub usage: Vec<StageUsage>,
    /// A transparent op costs nothing: it never enters the pipeline and its
    /// result is available immediately (e.g. constants that are hardwired
    /// in a custom datapath).
    pub transparent: bool,
}

/// The execution model: scheduling policy + operation mapping table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionModel {
    /// How ready operations are picked for issue.
    pub policy: SchedulingPolicy,
    /// Binding for each op class that can occur. Missing classes make
    /// estimation fail with [`EstimateError::UnmappedClass`].
    pub op_map: BTreeMap<OpClassKey, OpBinding>,
}

/// Serializable key wrapper for [`OpClass`] (JSON maps need string keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClassKey {
    /// [`OpClass::Alu`]
    Alu,
    /// [`OpClass::Mul`]
    Mul,
    /// [`OpClass::Div`]
    Div,
    /// [`OpClass::Shift`]
    Shift,
    /// [`OpClass::Load`]
    Load,
    /// [`OpClass::Store`]
    Store,
    /// [`OpClass::Move`]
    Move,
    /// [`OpClass::Control`]
    Control,
}

impl From<OpClass> for OpClassKey {
    fn from(value: OpClass) -> Self {
        match value {
            OpClass::Alu => OpClassKey::Alu,
            OpClass::Mul => OpClassKey::Mul,
            OpClass::Div => OpClassKey::Div,
            OpClass::Shift => OpClassKey::Shift,
            OpClass::Load => OpClassKey::Load,
            OpClass::Store => OpClassKey::Store,
            OpClass::Move => OpClassKey::Move,
            OpClass::Control => OpClassKey::Control,
        }
    }
}

/// Statistical branch delay model (§4.1, item 3).
#[derive(Debug, Clone, PartialEq)]
pub struct BranchModel {
    /// Prediction scheme name (informational; the *rate* carries the
    /// statistics).
    pub policy: String,
    /// Cycles lost on a misprediction.
    pub penalty: u32,
    /// Average misprediction ratio in `[0, 1]`.
    pub miss_rate: f64,
}

/// How instruction fetches or data accesses reach memory.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryPath {
    /// No memory traffic at all: custom HW with hardwired control (for
    /// instructions) or dedicated single-cycle SRAM already accounted in
    /// the functional-unit delay (for data).
    Hardwired,
    /// Every access pays the external memory latency (cacheless CPU).
    Uncached,
    /// Statistical cache model.
    Cached(CacheModel),
}

/// Statistical cache model (§4.1, item 4): average hit rates per cache
/// size, plus latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    /// Configured cache size in bytes; must be a key of `hit_rates`.
    pub size: u32,
    /// Average hit rate per cache size (bytes → rate in `[0, 1]`). Obtained
    /// by characterization (see [`crate::characterize`]).
    pub hit_rates: BTreeMap<u32, f64>,
    /// Extra cycles of a hit beyond what the pipeline already overlaps
    /// (usually 0 for an L1 integrated into the pipeline).
    pub hit_delay: u32,
    /// Cycles lost on a miss.
    pub miss_penalty: u32,
}

impl CacheModel {
    /// The hit rate at the configured size.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::MissingHitRate`] if the configured size has
    /// no characterized rate. Models that passed [`Pum::validate`] never
    /// hit this, but a size swept or mutated after validation can.
    pub fn hit_rate(&self) -> Result<f64, EstimateError> {
        self.hit_rates
            .get(&self.size)
            .copied()
            .ok_or(EstimateError::MissingHitRate { size: self.size })
    }
}

/// The memory model: instruction and data paths plus external latency.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModel {
    /// Instruction fetch path.
    pub ifetch: MemoryPath,
    /// Data access path.
    pub data: MemoryPath,
    /// External (off-chip) memory latency in cycles.
    pub external_latency: u32,
    /// Average target instructions fetched per CDFG operation (the paper's
    /// LLVM ops map ~1:1 to MicroBlaze instructions; a higher-level IR
    /// carries a characterized expansion ratio instead). Default 1.0.
    pub fetch_expansion: f64,
    /// Average data-memory accesses per CDFG memory operand (register
    /// spills and reloads add traffic the IR does not show). Default 1.0.
    pub data_expansion: f64,
}

/// A complete Processing Unit Model.
#[derive(Debug, Clone, PartialEq)]
pub struct Pum {
    /// PE name, e.g. `"microblaze"` or `"dct_hw"`.
    pub name: String,
    /// Clock period in picoseconds (for converting cycles to time).
    pub clock_period_ps: u64,
    /// Execution model.
    pub execution: ExecutionModel,
    /// Datapath model.
    pub datapath: Datapath,
    /// Branch delay model; `None` for PEs without speculation (Alg. 2
    /// adds no branch term then).
    pub branch: Option<BranchModel>,
    /// Memory model.
    pub memory: MemoryModel,
}

impl Pum {
    /// Deepest pipeline length, in stages.
    pub fn max_stages(&self) -> usize {
        self.datapath.pipelines.iter().map(|p| p.stages.len()).max().unwrap_or(0)
    }

    /// Whether the PE is pipelined in the sense of Algorithm 2 (more than
    /// one stage ⇒ branch penalties exist).
    pub fn is_pipelined(&self) -> bool {
        self.max_stages() > 1
    }

    /// Steady-state correction subtracted from each block's schedule: the
    /// pipeline fill of `depth - 1` cycles is paid once per mispredicted
    /// branch (Algorithm 2's penalty), not once per basic block.
    pub fn fill_correction(&self) -> u64 {
        self.max_stages().saturating_sub(1) as u64
    }

    /// Looks up the binding of an op class.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnmappedClass`] if the PUM does not map it.
    pub fn binding(&self, class: OpClass) -> Result<&OpBinding, EstimateError> {
        self.execution
            .op_map
            .get(&OpClassKey::from(class))
            .ok_or(EstimateError::UnmappedClass { class })
    }

    /// Serializes the PUM to pretty JSON (the tool's interchange format).
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parses a PUM from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::BadPum`] on malformed JSON or on a model
    /// that fails [`Pum::validate`].
    pub fn from_json(text: &str) -> Result<Pum, EstimateError> {
        let value =
            tlm_json::parse(text).map_err(|e| EstimateError::BadPum { message: e.to_string() })?;
        let pum = Pum::from_value(&value)
            .map_err(|e| EstimateError::BadPum { message: e.to_string() })?;
        pum.validate()?;
        Ok(pum)
    }

    /// Checks internal consistency of the model.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::BadPum`] describing the first violation:
    /// empty pipelines, zero-delay modes, out-of-range stage/unit/mode
    /// references, rates outside `[0, 1]`, or a cache whose configured size
    /// has no characterized hit rate.
    pub fn validate(&self) -> Result<(), EstimateError> {
        let bad = |message: String| Err(EstimateError::BadPum { message });
        if self.clock_period_ps == 0 {
            return bad("clock period must be non-zero".into());
        }
        if self.datapath.pipelines.is_empty() {
            return bad("datapath needs at least one pipeline".into());
        }
        for p in &self.datapath.pipelines {
            if p.stages.is_empty() {
                return bad(format!("pipeline `{}` has no stages", p.name));
            }
            for s in &p.stages {
                if s.width == 0 {
                    return bad(format!("stage `{}` has zero width", s.name));
                }
            }
        }
        for u in &self.datapath.units {
            if u.quantity == 0 {
                return bad(format!("unit `{}` has zero quantity", u.name));
            }
            if u.modes.is_empty() {
                return bad(format!("unit `{}` has no modes", u.name));
            }
            for m in &u.modes {
                if m.delay == 0 {
                    return bad(format!("mode `{}.{}` has zero delay", u.name, m.name));
                }
            }
        }
        let n_stages = self.max_stages();
        for (key, b) in &self.execution.op_map {
            if b.transparent {
                continue;
            }
            if b.demand_stage >= n_stages || b.commit_stage >= n_stages {
                return bad(format!("binding {key:?} references stage out of range"));
            }
            if b.demand_stage > b.commit_stage {
                return bad(format!("binding {key:?} demands operands after committing"));
            }
            for usage in &b.usage {
                if usage.stage >= n_stages {
                    return bad(format!("binding {key:?} uses out-of-range stage"));
                }
                let Some(unit) = self.datapath.units.get(usage.fu) else {
                    return bad(format!("binding {key:?} uses unknown unit {}", usage.fu));
                };
                if usage.mode >= unit.modes.len() {
                    return bad(format!(
                        "binding {key:?} uses unknown mode {} of `{}`",
                        usage.mode, unit.name
                    ));
                }
            }
        }
        if let Some(branch) = &self.branch {
            if !(0.0..=1.0).contains(&branch.miss_rate) {
                return bad("branch miss rate outside [0, 1]".into());
            }
        }
        if self.memory.fetch_expansion <= 0.0 || self.memory.data_expansion <= 0.0 {
            return bad("memory expansion factors must be positive".into());
        }
        for (label, path) in [("ifetch", &self.memory.ifetch), ("data", &self.memory.data)] {
            if let MemoryPath::Cached(cache) = path {
                if !cache.hit_rates.contains_key(&cache.size) {
                    return bad(format!(
                        "{label} cache size {} has no characterized hit rate",
                        cache.size
                    ));
                }
                for (&size, &rate) in &cache.hit_rates {
                    if !(0.0..=1.0).contains(&rate) {
                        return bad(format!(
                            "{label} cache hit rate for size {size} outside [0, 1]"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON interchange (manual; the offline build environment has no serde)
// ---------------------------------------------------------------------------

fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, JsonError> {
    value.get(key).ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
}

fn str_field<'a>(value: &'a Value, key: &str) -> Result<&'a str, JsonError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| JsonError::shape(format!("field `{key}` must be a string")))
}

fn u64_field(value: &Value, key: &str) -> Result<u64, JsonError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| JsonError::shape(format!("field `{key}` must be a non-negative integer")))
}

fn u32_field(value: &Value, key: &str) -> Result<u32, JsonError> {
    u32::try_from(u64_field(value, key)?)
        .map_err(|_| JsonError::shape(format!("field `{key}` does not fit u32")))
}

fn usize_field(value: &Value, key: &str) -> Result<usize, JsonError> {
    usize::try_from(u64_field(value, key)?)
        .map_err(|_| JsonError::shape(format!("field `{key}` does not fit usize")))
}

fn f64_field(value: &Value, key: &str) -> Result<f64, JsonError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| JsonError::shape(format!("field `{key}` must be a number")))
}

fn array_field<'a>(value: &'a Value, key: &str) -> Result<&'a [Value], JsonError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| JsonError::shape(format!("field `{key}` must be an array")))
}

impl SchedulingPolicy {
    /// The policy's canonical interchange name.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulingPolicy::InOrder => "InOrder",
            SchedulingPolicy::Asap => "Asap",
            SchedulingPolicy::Alap => "Alap",
            SchedulingPolicy::List => "List",
        }
    }

    fn from_value(value: &Value) -> Result<SchedulingPolicy, JsonError> {
        match value.as_str() {
            Some("InOrder") => Ok(SchedulingPolicy::InOrder),
            Some("Asap") => Ok(SchedulingPolicy::Asap),
            Some("Alap") => Ok(SchedulingPolicy::Alap),
            Some("List") => Ok(SchedulingPolicy::List),
            _ => Err(JsonError::shape("unknown scheduling policy")),
        }
    }
}

impl OpClassKey {
    /// The snake_case interchange name, also used as the op-map key.
    pub fn as_str(self) -> &'static str {
        match self {
            OpClassKey::Alu => "alu",
            OpClassKey::Mul => "mul",
            OpClassKey::Div => "div",
            OpClassKey::Shift => "shift",
            OpClassKey::Load => "load",
            OpClassKey::Store => "store",
            OpClassKey::Move => "move",
            OpClassKey::Control => "control",
        }
    }

    fn from_str(name: &str) -> Result<OpClassKey, JsonError> {
        match name {
            "alu" => Ok(OpClassKey::Alu),
            "mul" => Ok(OpClassKey::Mul),
            "div" => Ok(OpClassKey::Div),
            "shift" => Ok(OpClassKey::Shift),
            "load" => Ok(OpClassKey::Load),
            "store" => Ok(OpClassKey::Store),
            "move" => Ok(OpClassKey::Move),
            "control" => Ok(OpClassKey::Control),
            _ => Err(JsonError::shape(format!("unknown op class `{name}`"))),
        }
    }
}

impl FuMode {
    fn to_value(&self) -> Value {
        ObjectBuilder::new().field("name", self.name.as_str()).field("delay", self.delay).build()
    }

    fn from_value(value: &Value) -> Result<FuMode, JsonError> {
        Ok(FuMode {
            name: str_field(value, "name")?.to_string(),
            delay: u32_field(value, "delay")?,
        })
    }
}

impl FuncUnit {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("name", self.name.as_str())
            .field("quantity", self.quantity)
            .field("modes", Value::Array(self.modes.iter().map(FuMode::to_value).collect()))
            .build()
    }

    fn from_value(value: &Value) -> Result<FuncUnit, JsonError> {
        Ok(FuncUnit {
            name: str_field(value, "name")?.to_string(),
            quantity: u32_field(value, "quantity")?,
            modes: array_field(value, "modes")?
                .iter()
                .map(FuMode::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Stage {
    fn to_value(&self) -> Value {
        ObjectBuilder::new().field("name", self.name.as_str()).field("width", self.width).build()
    }

    fn from_value(value: &Value) -> Result<Stage, JsonError> {
        Ok(Stage { name: str_field(value, "name")?.to_string(), width: u32_field(value, "width")? })
    }
}

impl Pipeline {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("name", self.name.as_str())
            .field("stages", Value::Array(self.stages.iter().map(Stage::to_value).collect()))
            .build()
    }

    fn from_value(value: &Value) -> Result<Pipeline, JsonError> {
        Ok(Pipeline {
            name: str_field(value, "name")?.to_string(),
            stages: array_field(value, "stages")?
                .iter()
                .map(Stage::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Datapath {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("units", Value::Array(self.units.iter().map(FuncUnit::to_value).collect()))
            .field(
                "pipelines",
                Value::Array(self.pipelines.iter().map(Pipeline::to_value).collect()),
            )
            .build()
    }

    fn from_value(value: &Value) -> Result<Datapath, JsonError> {
        Ok(Datapath {
            units: array_field(value, "units")?
                .iter()
                .map(FuncUnit::from_value)
                .collect::<Result<_, _>>()?,
            pipelines: array_field(value, "pipelines")?
                .iter()
                .map(Pipeline::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl StageUsage {
    fn to_value(self) -> Value {
        ObjectBuilder::new()
            .field("stage", self.stage)
            .field("fu", self.fu)
            .field("mode", self.mode)
            .build()
    }

    fn from_value(value: &Value) -> Result<StageUsage, JsonError> {
        Ok(StageUsage {
            stage: usize_field(value, "stage")?,
            fu: usize_field(value, "fu")?,
            mode: usize_field(value, "mode")?,
        })
    }
}

impl OpBinding {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("demand_stage", self.demand_stage)
            .field("commit_stage", self.commit_stage)
            .field("usage", Value::Array(self.usage.iter().map(|u| u.to_value()).collect()))
            .field("transparent", self.transparent)
            .build()
    }

    fn from_value(value: &Value) -> Result<OpBinding, JsonError> {
        Ok(OpBinding {
            demand_stage: usize_field(value, "demand_stage")?,
            commit_stage: usize_field(value, "commit_stage")?,
            usage: array_field(value, "usage")?
                .iter()
                .map(StageUsage::from_value)
                .collect::<Result<_, _>>()?,
            // Optional in the interchange format; absent means false.
            transparent: value.get("transparent").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

impl ExecutionModel {
    fn to_value(&self) -> Value {
        let op_map = Value::Object(
            self.op_map
                .iter()
                .map(|(key, binding)| (key.as_str().to_string(), binding.to_value()))
                .collect(),
        );
        ObjectBuilder::new().field("policy", self.policy.as_str()).field("op_map", op_map).build()
    }

    fn from_value(value: &Value) -> Result<ExecutionModel, JsonError> {
        let policy = SchedulingPolicy::from_value(field(value, "policy")?)?;
        let entries = field(value, "op_map")?
            .as_object()
            .ok_or_else(|| JsonError::shape("`op_map` must be an object"))?;
        let mut op_map = BTreeMap::new();
        for (key, binding) in entries {
            op_map.insert(OpClassKey::from_str(key)?, OpBinding::from_value(binding)?);
        }
        Ok(ExecutionModel { policy, op_map })
    }
}

impl BranchModel {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("policy", self.policy.as_str())
            .field("penalty", self.penalty)
            .field("miss_rate", self.miss_rate)
            .build()
    }

    fn from_value(value: &Value) -> Result<BranchModel, JsonError> {
        Ok(BranchModel {
            policy: str_field(value, "policy")?.to_string(),
            penalty: u32_field(value, "penalty")?,
            miss_rate: f64_field(value, "miss_rate")?,
        })
    }
}

impl CacheModel {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("size", self.size)
            .field("hit_rates", tlm_json::map_u32_f64_to_value(&self.hit_rates))
            .field("hit_delay", self.hit_delay)
            .field("miss_penalty", self.miss_penalty)
            .build()
    }

    fn from_value(value: &Value) -> Result<CacheModel, JsonError> {
        Ok(CacheModel {
            size: u32_field(value, "size")?,
            hit_rates: tlm_json::value_to_map_u32_f64(field(value, "hit_rates")?)?,
            hit_delay: u32_field(value, "hit_delay")?,
            miss_penalty: u32_field(value, "miss_penalty")?,
        })
    }
}

impl MemoryPath {
    fn to_value(&self) -> Value {
        match self {
            MemoryPath::Hardwired => Value::String("Hardwired".into()),
            MemoryPath::Uncached => Value::String("Uncached".into()),
            MemoryPath::Cached(cache) => {
                Value::Object(vec![("Cached".to_string(), cache.to_value())])
            }
        }
    }

    fn from_value(value: &Value) -> Result<MemoryPath, JsonError> {
        match value {
            Value::String(s) if s == "Hardwired" => Ok(MemoryPath::Hardwired),
            Value::String(s) if s == "Uncached" => Ok(MemoryPath::Uncached),
            Value::Object(_) => {
                let cache = value
                    .get("Cached")
                    .ok_or_else(|| JsonError::shape("memory path object must be `Cached`"))?;
                Ok(MemoryPath::Cached(CacheModel::from_value(cache)?))
            }
            _ => Err(JsonError::shape("bad memory path")),
        }
    }
}

impl MemoryModel {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("ifetch", self.ifetch.to_value())
            .field("data", self.data.to_value())
            .field("external_latency", self.external_latency)
            .field("fetch_expansion", self.fetch_expansion)
            .field("data_expansion", self.data_expansion)
            .build()
    }

    fn from_value(value: &Value) -> Result<MemoryModel, JsonError> {
        Ok(MemoryModel {
            ifetch: MemoryPath::from_value(field(value, "ifetch")?)?,
            data: MemoryPath::from_value(field(value, "data")?)?,
            external_latency: u32_field(value, "external_latency")?,
            // Both expansions are optional in the interchange format.
            fetch_expansion: value.get("fetch_expansion").and_then(Value::as_f64).unwrap_or(1.0),
            data_expansion: value.get("data_expansion").and_then(Value::as_f64).unwrap_or(1.0),
        })
    }
}

impl Pum {
    /// The PUM as a JSON value tree.
    pub fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("name", self.name.as_str())
            .field("clock_period_ps", self.clock_period_ps)
            .field("execution", self.execution.to_value())
            .field("datapath", self.datapath.to_value())
            .field("branch", self.branch.as_ref().map_or(Value::Null, BranchModel::to_value))
            .field("memory", self.memory.to_value())
            .build()
    }

    /// Parses a PUM from a JSON value tree (no validation).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the shape does not match the interchange
    /// format.
    pub fn from_value(value: &Value) -> Result<Pum, JsonError> {
        let branch = match value.get("branch") {
            None | Some(Value::Null) => None,
            Some(v) => Some(BranchModel::from_value(v)?),
        };
        Ok(Pum {
            name: str_field(value, "name")?.to_string(),
            clock_period_ps: u64_field(value, "clock_period_ps")?,
            execution: ExecutionModel::from_value(field(value, "execution")?)?,
            datapath: Datapath::from_value(field(value, "datapath")?)?,
            branch,
            memory: MemoryModel::from_value(field(value, "memory")?)?,
        })
    }

    /// Canonical byte encoding of exactly the sub-models Algorithm 1
    /// (optimistic scheduling) reads: the scheduling policy, the operation
    /// mapping table and the datapath. The statistical memory and branch
    /// models are deliberately excluded — Algorithm 1 is independent of
    /// them, which is what makes one schedule reusable across every point
    /// of a cache-size or misprediction sweep.
    ///
    /// The encoding is injective (free-form names are length-prefixed, all
    /// numbers delimited) but deliberately not JSON: it is computed once
    /// per annotation run on the estimation hot path, so it writes one
    /// flat string instead of building a value tree.
    pub fn schedule_domain(&self) -> String {
        use std::fmt::Write;
        fn name(out: &mut String, n: &str) {
            let _ = write!(out, "{}:{n}", n.len());
        }
        let mut out = String::with_capacity(512);
        out.push_str("sd1;");
        out.push_str(self.execution.policy.as_str());
        out.push(';');
        for (key, b) in &self.execution.op_map {
            let _ = write!(
                out,
                "{}={},{},{}[",
                key.as_str(),
                b.demand_stage,
                b.commit_stage,
                u8::from(b.transparent)
            );
            for u in &b.usage {
                let _ = write!(out, "{}.{}.{};", u.stage, u.fu, u.mode);
            }
            out.push(']');
        }
        out.push('#');
        for unit in &self.datapath.units {
            name(&mut out, &unit.name);
            let _ = write!(out, "x{}[", unit.quantity);
            for m in &unit.modes {
                name(&mut out, &m.name);
                let _ = write!(out, "@{};", m.delay);
            }
            out.push(']');
        }
        out.push('#');
        for p in &self.datapath.pipelines {
            name(&mut out, &p.name);
            out.push('[');
            for s in &p.stages {
                name(&mut out, &s.name);
                let _ = write!(out, "w{};", s.width);
            }
            out.push(']');
        }
        out
    }

    /// Canonical byte encoding of the **entire** model: the
    /// [`Pum::schedule_domain`] (policy, operation mapping, datapath) plus
    /// every statistical field Algorithm 2 reads — name, clock period,
    /// branch model and memory model. Two PUMs with equal encodings are
    /// indistinguishable to the estimator, and editing any field changes
    /// the encoding, so content-addressed stores can key annotated results
    /// on it without aliasing.
    ///
    /// Like the schedule domain this is a direct flat-string encoder (all
    /// free-form names length-prefixed, floats via [`f64::to_bits`], every
    /// number delimited) rather than the JSON interchange form: it runs on
    /// every memoized estimate lookup, where building a value tree would
    /// cost an order of magnitude more than the lookup itself.
    pub fn estimate_domain(&self) -> String {
        use std::fmt::Write;
        fn name(out: &mut String, n: &str) {
            let _ = write!(out, "{}:{n}", n.len());
        }
        fn bits(out: &mut String, v: f64) {
            let _ = write!(out, "{:016x}", v.to_bits());
        }
        fn path(out: &mut String, p: &MemoryPath) {
            match p {
                MemoryPath::Hardwired => out.push('h'),
                MemoryPath::Uncached => out.push('u'),
                MemoryPath::Cached(c) => {
                    let _ = write!(out, "c{},{},{}[", c.size, c.hit_delay, c.miss_penalty);
                    for (size, rate) in &c.hit_rates {
                        let _ = write!(out, "{size}=");
                        bits(out, *rate);
                        out.push(';');
                    }
                    out.push(']');
                }
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str("ek1;");
        name(&mut out, &self.name);
        let _ = write!(out, ";{};", self.clock_period_ps);
        match &self.branch {
            None => out.push('-'),
            Some(b) => {
                name(&mut out, &b.policy);
                let _ = write!(out, ",{},", b.penalty);
                bits(&mut out, b.miss_rate);
            }
        }
        out.push('#');
        path(&mut out, &self.memory.ifetch);
        path(&mut out, &self.memory.data);
        let _ = write!(out, "{};", self.memory.external_latency);
        bits(&mut out, self.memory.fetch_expansion);
        bits(&mut out, self.memory.data_expansion);
        out.push('#');
        out.push_str(&self.schedule_domain());
        out
    }

    /// The PUM re-pointed at different statistical cache sizes — the sweep
    /// transform of the paper's Tables 2/3 and of every serving request
    /// that asks for a cache sweep. Only [`MemoryPath::Cached`] paths are
    /// touched: a size of 0 means "no cache" (the paper's 0k/0k column) and
    /// degrades the path to [`MemoryPath::Uncached`]; `Hardwired` and
    /// already-`Uncached` paths (custom HW) are returned unchanged. The
    /// schedule domain is untouched, so every sweep point shares Algorithm 1
    /// results through the [`ScheduleCache`](crate::ScheduleCache).
    ///
    /// The result may fail [`Pum::validate`] if the new size was never
    /// characterized ([`EstimateError::MissingHitRate`]); sweep drivers and
    /// the serving layer surface that as a client error.
    #[must_use]
    pub fn with_cache_sizes(&self, icache_bytes: u32, dcache_bytes: u32) -> Pum {
        fn resize(path: &mut MemoryPath, bytes: u32) {
            if let MemoryPath::Cached(cache) = path {
                if bytes == 0 {
                    *path = MemoryPath::Uncached;
                } else {
                    cache.size = bytes;
                }
            }
        }
        let mut pum = self.clone();
        resize(&mut pum.memory.ifetch, icache_bytes);
        resize(&mut pum.memory.data, dcache_bytes);
        pum
    }

    /// Stable 64-bit fingerprint of [`Pum::schedule_domain`]. Two PUMs with
    /// equal fingerprints (and equal domains — the schedule cache compares
    /// the full canonical encoding, never just this hash) produce identical
    /// Algorithm 1 schedules for every block.
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fnv1a_64(self.schedule_domain().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn library_models_validate() {
        for pum in [
            library::microblaze_like(8 * 1024, 4 * 1024),
            library::microblaze_like(0, 0),
            library::custom_hw("dct", 2, 2),
            library::generic_risc(),
            library::superscalar2(),
            library::vliw4(),
        ] {
            pum.validate().unwrap_or_else(|e| panic!("{}: {e}", pum.name));
        }
    }

    #[test]
    fn json_round_trip() {
        let pum = library::microblaze_like(8 * 1024, 4 * 1024);
        let text = pum.to_json();
        let back = Pum::from_json(&text).expect("round-trips");
        assert_eq!(pum, back);
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(matches!(Pum::from_json("{ not json"), Err(EstimateError::BadPum { .. })));
    }

    #[test]
    fn zero_delay_mode_is_rejected() {
        let mut pum = library::custom_hw("bad", 1, 1);
        pum.datapath.units[0].modes[0].delay = 0;
        assert!(pum.validate().is_err());
    }

    #[test]
    fn bad_stage_reference_is_rejected() {
        let mut pum = library::generic_risc();
        if let Some(binding) = pum.execution.op_map.get_mut(&OpClassKey::Alu) {
            binding.commit_stage = 99;
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn missing_hit_rate_for_size_is_rejected() {
        let mut pum = library::microblaze_like(8 * 1024, 4 * 1024);
        if let MemoryPath::Cached(cache) = &mut pum.memory.ifetch {
            cache.size = 1234; // size with no characterized rate
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn branch_rate_out_of_range_is_rejected() {
        let mut pum = library::microblaze_like(8 * 1024, 4 * 1024);
        if let Some(b) = &mut pum.branch {
            b.miss_rate = 1.5;
        }
        assert!(pum.validate().is_err());
    }

    #[test]
    fn with_cache_sizes_sweeps_only_statistical_models() {
        let base = library::microblaze_like(8 << 10, 4 << 10);
        let swept = base.with_cache_sizes(32 << 10, 16 << 10);
        swept.validate().expect("standard sizes are characterized");
        assert_eq!(base.fingerprint(), swept.fingerprint(), "schedule domain unchanged");
        match (&swept.memory.ifetch, &swept.memory.data) {
            (MemoryPath::Cached(i), MemoryPath::Cached(d)) => {
                assert_eq!(i.size, 32 << 10);
                assert_eq!(d.size, 16 << 10);
            }
            other => panic!("paths stayed cached, got {other:?}"),
        }
        // Size 0 degrades to Uncached, as in the paper's 0k/0k column.
        let none = base.with_cache_sizes(0, 0);
        assert_eq!(none.memory.ifetch, MemoryPath::Uncached);
        assert_eq!(none.memory.data, MemoryPath::Uncached);
        // Custom HW has no cached paths; the sweep is a no-op.
        let hw = library::custom_hw("dct", 2, 2);
        assert_eq!(hw.with_cache_sizes(2 << 10, 2 << 10), hw);
        // Uncharacterized sizes survive the transform but fail validation.
        assert!(base.with_cache_sizes(1234, 1234).validate().is_err());
    }

    #[test]
    fn estimate_domain_separates_what_schedule_domain_merges() {
        let base = library::microblaze_like(8 << 10, 4 << 10);
        // A cache-size sweep keeps the schedule domain (Algorithm 1 reuse)
        // but must change the estimate domain (Algorithm 2 inputs differ).
        let swept = base.with_cache_sizes(32 << 10, 16 << 10);
        assert_eq!(base.schedule_domain(), swept.schedule_domain());
        assert_ne!(base.estimate_domain(), swept.estimate_domain());
        // Every statistical field outside the schedule domain is covered.
        let mut renamed = base.clone();
        renamed.name.push('!');
        assert_ne!(base.estimate_domain(), renamed.estimate_domain());
        let mut clocked = base.clone();
        clocked.clock_period_ps += 1;
        assert_ne!(base.estimate_domain(), clocked.estimate_domain());
        let mut branchy = base.clone();
        branchy.branch.as_mut().expect("cpu has a branch model").miss_rate += 0.001;
        assert_ne!(base.estimate_domain(), branchy.estimate_domain());
        let mut unbranched = base.clone();
        unbranched.branch = None;
        assert_ne!(base.estimate_domain(), unbranched.estimate_domain());
        let mut expanded = base.clone();
        expanded.memory.data_expansion *= 1.25;
        assert_ne!(base.estimate_domain(), expanded.estimate_domain());
        let mut rated = base.clone();
        if let MemoryPath::Cached(c) = &mut rated.memory.data {
            *c.hit_rates.iter_mut().next().expect("characterized").1 -= 0.01;
        }
        assert_ne!(base.estimate_domain(), rated.estimate_domain());
        // Equal models encode identically (the memoization contract).
        assert_eq!(base.estimate_domain(), base.clone().estimate_domain());
    }

    #[test]
    fn pipelining_predicates() {
        let cpu = library::microblaze_like(8 * 1024, 4 * 1024);
        assert!(cpu.is_pipelined());
        assert_eq!(cpu.fill_correction(), cpu.max_stages() as u64 - 1);
        let hw = library::custom_hw("dct", 2, 2);
        assert!(!hw.is_pipelined(), "single-stage HW is not pipelined");
        assert_eq!(hw.fill_correction(), 0);
    }
}
