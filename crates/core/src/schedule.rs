//! Algorithm 1 — **Optimistic Scheduling** (§4.2 of the paper).
//!
//! The delay of a basic block on a PE is computed by simulating the block's
//! DFG on the PE's pipeline model cycle by cycle, under optimistic
//! assumptions (100 % cache hits, perfect branch prediction):
//!
//! - `advclock` advances every in-flight operation: per-stage cycle counters
//!   decrement; an operation whose counter reaches zero advances to the next
//!   stage unless the stage is full, a functional unit it needs is busy, or
//!   the next stage is its *demand* stage and a DFG predecessor has not yet
//!   *committed* its result;
//! - `AssignOps` issues remaining operations into the first stage according
//!   to the PUM's scheduling policy (in-order, ASAP, ALAP or list);
//! - the loop runs until the *done* set contains every operation. The DFG
//!   is acyclic so the simulation terminates; a defensive progress check
//!   turns impossible resource configurations into an error instead of a
//!   hang.
//!
//! One refinement over the paper's pseudocode: the simulated count includes
//! the pipeline fill (the first operation traverses every stage), but in
//! steady state consecutive blocks overlap in the pipeline, so
//! [`ScheduleResult::cycles`] subtracts `depth − 1` ([`Pum::fill_correction`]).
//! Pipeline refills that *do* occur at mispredicted branches are charged by
//! Algorithm 2's branch term instead. The uncorrected value is kept in
//! [`ScheduleResult::raw_cycles`].
//!
//! # Kernel data layout
//!
//! The cold path (a cache miss, or a novel custom platform whose PUM
//! fingerprint has never been seen) pays this kernel once per block, so it
//! is written around flat, reusable data structures instead of per-call
//! allocation:
//!
//! - an [`IssueTable`] precompiles the PUM's scheduling facts — per-op-class
//!   stage durations, functional-unit indices, demand/commit stages,
//!   transparency — into dense class-major arrays, built **once per
//!   schedule domain** (the cache stores it on the resolved
//!   [`DomainHandle`](crate::cache::DomainHandle)) instead of once per op
//!   per block;
//! - a [`ScheduleScratch`] arena owns every piece of simulation state
//!   (bitset-backed op-state words, FU reservation counts, the flat
//!   `stages × width` slot array that replaces the nested
//!   `Vec<Vec<Vec<Slot>>>`, the candidate order and the
//!   predecessors-remaining counters). It is allocated once per worker
//!   thread ([`with_scratch`]) and reused across every block that thread
//!   schedules; [`scratch_stats`] reports reuse vs growth so allocation
//!   pressure on the cold path stays observable;
//! - readiness is tracked incrementally: `commit_pending[op]` counts the
//!   op's uncommitted predecessors and is decremented when a predecessor
//!   commits, so the `AssignOps` phase checks a counter instead of
//!   re-scanning predecessor lists, and the candidate list is sorted once
//!   per block instead of rebuilt and re-sorted every simulated cycle
//!   (stable `(priority, index)` order makes the two equivalent).
//!
//! The results are **bit-identical** to the pre-rewrite kernel, which is
//! retained as [`crate::reference::schedule_block_reference`] and checked
//! against this one by `tests/kernel_differential.rs` and the `estperf`
//! benchmark.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use tlm_cdfg::dfg::Dfg;
use tlm_cdfg::ir::{BlockData, OpClass};
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::pum::{OpClassKey, Pum, SchedulingPolicy};

/// Hard cap on simulated cycles per block; hitting it means the PUM cannot
/// execute the block at all.
pub(crate) const CYCLE_LIMIT: u64 = 10_000_000;

/// Number of op classes ([`OpClass::ALL`]); the issue table is indexed by
/// class, not by op.
pub(crate) const N_CLASSES: usize = 8;

/// Dense index of an op class into the issue table rows.
#[inline]
pub(crate) fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::Alu => 0,
        OpClass::Mul => 1,
        OpClass::Div => 2,
        OpClass::Shift => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::Move => 6,
        OpClass::Control => 7,
    }
}

/// The class at a dense index (inverse of [`class_index`]).
#[inline]
fn class_at(index: usize) -> OpClass {
    OpClass::ALL[index]
}

/// Result of scheduling one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResult {
    /// Steady-state cycles charged to the block (fill-corrected, ≥ 0).
    pub cycles: u64,
    /// Raw simulated cycles including pipeline fill and drain.
    pub raw_cycles: u64,
    /// Cycle each op was issued at (`None` for transparent ops).
    pub issue_cycle: Vec<Option<u64>>,
    /// Cycle each op left the pipeline (`None` for transparent ops).
    pub finish_cycle: Vec<Option<u64>>,
}

/// A PUM's scheduling facts, precompiled into dense class-major arrays.
///
/// Everything Algorithm 1 reads from the PUM per op is a pure function of
/// the op's *class* and the PUM's schedule domain, so it is flattened here
/// once — per-stage durations and FU indices live in `class * n_stages`
/// arrays instead of being rebuilt from [`Pum::binding`]'s `BTreeMap` for
/// every op of every block. Built once per schedule domain and cached on
/// the domain's entry table (see
/// [`DomainHandle::issue_table`](crate::cache::DomainHandle::issue_table)).
#[derive(Debug)]
pub struct IssueTable {
    pub(crate) policy: SchedulingPolicy,
    /// Deepest pipeline length ([`Pum::max_stages`]).
    pub(crate) n_stages: usize,
    pub(crate) fill_correction: u64,
    /// Whether the op map binds the class (unmapped classes error lazily,
    /// only when a block actually contains one).
    pub(crate) mapped: [bool; N_CLASSES],
    pub(crate) transparent: [bool; N_CLASSES],
    pub(crate) demand_stage: [usize; N_CLASSES],
    pub(crate) commit_stage: [usize; N_CLASSES],
    /// Cycles per stage, `[class * n_stages + stage]`.
    pub(crate) durations: Vec<u32>,
    /// FU index **plus one** per stage (0 = no unit), `[class * n_stages + stage]`.
    pub(crate) fu_plus1: Vec<u32>,
    /// FU quantity template, copied into the scratch arena per block.
    pub(crate) fu_quantity: Vec<u32>,
    /// All pipelines' stage widths, concatenated in pipeline order.
    pub(crate) stage_width: Vec<usize>,
    /// `pipe_first[p]` is pipeline `p`'s first index into `stage_width`;
    /// has `n_pipes + 1` entries so `pipe_first[p + 1]` delimits it.
    pub(crate) pipe_first: Vec<usize>,
    /// Whether a lone op of this class free-flows down pipeline 0: every
    /// stage has width ≥ 1 and every unit it touches has quantity ≥ 1, so
    /// with no other op in flight it issues at cycle 0 and advances every
    /// time its stage time elapses — the closed-form 1-op fast path.
    free_flow: [bool; N_CLASSES],
    /// Total pipeline-0 latency per class (sum of its stage durations):
    /// the finish cycle of a lone free-flowing op.
    pipe0_latency: [u64; N_CLASSES],
}

impl IssueTable {
    /// Precompiles the scheduling facts of `pum`.
    pub fn build(pum: &Pum) -> IssueTable {
        let n_stages = pum.max_stages();
        let mut table = IssueTable {
            policy: pum.execution.policy,
            n_stages,
            fill_correction: pum.fill_correction(),
            mapped: [false; N_CLASSES],
            transparent: [false; N_CLASSES],
            demand_stage: [0; N_CLASSES],
            commit_stage: [0; N_CLASSES],
            durations: vec![1; N_CLASSES * n_stages],
            fu_plus1: vec![0; N_CLASSES * n_stages],
            fu_quantity: pum.datapath.units.iter().map(|u| u.quantity).collect(),
            stage_width: Vec::new(),
            pipe_first: vec![0],
            free_flow: [false; N_CLASSES],
            pipe0_latency: [0; N_CLASSES],
        };
        for pipe in &pum.datapath.pipelines {
            table.stage_width.extend(pipe.stages.iter().map(|s| s.width as usize));
            table.pipe_first.push(table.stage_width.len());
        }
        for ci in 0..N_CLASSES {
            let Some(b) = pum.execution.op_map.get(&OpClassKey::from(class_at(ci))) else {
                continue;
            };
            table.mapped[ci] = true;
            table.transparent[ci] = b.transparent;
            table.demand_stage[ci] = b.demand_stage;
            table.commit_stage[ci] = b.commit_stage;
            for u in &b.usage {
                table.durations[ci * n_stages + u.stage] =
                    pum.datapath.units[u.fu].modes[u.mode].delay;
                table.fu_plus1[ci * n_stages + u.stage] = u.fu as u32 + 1;
            }
        }
        let np0 = table.pipe_first[1.min(table.pipe_first.len() - 1)];
        for ci in 0..N_CLASSES {
            if !table.mapped[ci] || table.transparent[ci] || np0 == 0 {
                continue;
            }
            let mut flows = true;
            let mut latency = 0u64;
            for s in 0..np0 {
                let fu = table.fu_plus1[ci * n_stages + s];
                flows &= table.stage_width[s] >= 1
                    && (fu == 0 || table.fu_quantity[fu as usize - 1] >= 1);
                latency += u64::from(table.durations[ci * n_stages + s]);
            }
            table.free_flow[ci] = flows;
            table.pipe0_latency[ci] = latency;
        }
        table
    }

    /// Total pipeline-0 latency of the class at dense index `ci` (sum of
    /// its stage durations; 0 for unmapped classes). The batch planner's
    /// drain-dominance signal.
    pub(crate) fn class_latency(&self, ci: usize) -> u64 {
        self.pipe0_latency[ci]
    }
}

/// Reusable simulation state for [`schedule_block_prepared`].
///
/// One arena per worker thread ([`with_scratch`]) serves every block that
/// thread schedules: the buffers are cleared, not freed, between blocks,
/// so in steady state the kernel allocates nothing except the returned
/// [`ScheduleResult`] vectors.
#[derive(Debug, Default)]
pub struct ScheduleScratch {
    /// Op-state bitsets (committed / done / issued), three `words`-sized
    /// regions of one buffer so sizing is a single operation.
    state: Vec<u64>,
    /// Fused `u32` arena holding, in order: uncommitted-predecessor counts
    /// (`commit_pending`, n), op indices in `(priority, index)` issue order
    /// (`order`, n), CSR successor offsets (`succ_off`, n + 1), the CSR
    /// fill cursor (`cursor`, n), CSR successor targets (`succ`, edges),
    /// free instances per FU type (`fu_free`), and the flat stage-major
    /// slot regions (`slot_op` / `slot_rem`). One grow-only buffer: most
    /// regions are fully overwritten per block, so nothing is memset
    /// between blocks except the few that need zeros.
    words32: Vec<u32>,
    /// Dense class index per op.
    op_class: Vec<u8>,
    /// Issue priority per op (List/ALAP only; other policies use op order).
    priority: Vec<i64>,
    /// First slot index of each stage in the slot regions.
    stage_base: Vec<usize>,
    /// Occupied slots per stage.
    stage_len: Vec<usize>,
    /// Per-pipe high-water mark: stages at local index ≥ `pipe_hi[p]` are
    /// empty, so the per-cycle phases only walk the occupied prefix.
    pipe_hi: Vec<usize>,
    /// Worklist for the transparent-resolution cascade.
    stack: Vec<u32>,
}

/// Count of kernel runs whose scratch buffers all fit in place.
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);
/// Count of kernel runs that had to grow (or first allocate) a buffer.
static SCRATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Scratch-arena allocation-pressure counters (process-wide totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Kernel runs served entirely from already-allocated scratch buffers.
    pub reuses: u64,
    /// Kernel runs that grew at least one scratch buffer (includes each
    /// worker thread's first block).
    pub allocs: u64,
}

/// Snapshot of the scratch reuse/allocation counters, summed over all
/// worker threads since process start.
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
        allocs: SCRATCH_ALLOCS.load(Ordering::Relaxed),
    }
}

/// Grows `v` to hold at least `len` elements, recording whether backing
/// storage had to grow. Existing contents are preserved (stale values are
/// fine: callers fully overwrite or explicitly zero the regions they use).
#[inline]
pub(crate) fn grow<T: Copy + Default>(v: &mut Vec<T>, len: usize, grew: &mut bool) {
    if v.len() < len {
        if v.capacity() < len {
            *grew = true;
        }
        v.resize(len, T::default());
    }
}

impl ScheduleScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> ScheduleScratch {
        ScheduleScratch::default()
    }

    /// Sizes every buffer for a block of `n` ops with `edges` dependence
    /// edges under `table`'s pipeline geometry, fills `stage_base` and
    /// returns the total slot capacity; bumps the process-wide
    /// reuse/alloc counters.
    fn prepare(&mut self, table: &IssueTable, n: usize, edges: usize) -> usize {
        let mut grew = false;
        let words = n.div_ceil(64);
        grow(&mut self.state, 3 * words, &mut grew);
        grow(&mut self.op_class, n, &mut grew);
        if matches!(table.policy, SchedulingPolicy::List | SchedulingPolicy::Alap) {
            grow(&mut self.priority, n, &mut grew);
        }
        // Per-stage slot regions: a stage can never hold more than
        // min(width, n) ops, so wide custom datapaths stay O(n).
        let stages = table.stage_width.len();
        grow(&mut self.stage_base, stages, &mut grew);
        grow(&mut self.stage_len, stages, &mut grew);
        grow(&mut self.pipe_hi, table.pipe_first.len() - 1, &mut grew);
        let mut slots = 0usize;
        for (j, &width) in table.stage_width.iter().enumerate() {
            self.stage_base[j] = slots;
            slots += width.min(n);
        }
        grow(&mut self.words32, 4 * n + 1 + edges + table.fu_quantity.len() + 2 * slots, &mut grew);
        self.stack.clear();
        if grew {
            SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        } else {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
        }
        slots
    }
}

thread_local! {
    static SCRATCH: RefCell<ScheduleScratch> = RefCell::new(ScheduleScratch::new());
}

/// Runs `f` with the calling thread's scratch arena.
///
/// # Panics
///
/// Panics if `f` re-enters `with_scratch` on the same thread (the arena is
/// a single exclusive borrow).
pub fn with_scratch<R>(f: impl FnOnce(&mut ScheduleScratch) -> R) -> R {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] >> (i & 63) & 1 != 0
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

/// Publishes `op`'s result: marks it committed exactly once, decrements
/// every successor's pending count, and cascades resolution through
/// transparent dependents whose last predecessor this was. Equivalent to
/// the reference kernel's `resolve_transparent` fixpoint, driven by commit
/// events instead of re-scanning all ops.
#[allow(clippy::too_many_arguments)]
#[inline]
fn publish(
    op: usize,
    transparent: &[bool; N_CLASSES],
    op_class: &[u8],
    committed: &mut [u64],
    done: &mut [u64],
    issued: &mut [u64],
    commit_pending: &mut [u32],
    succ_off: &[u32],
    succ: &[u32],
    stack: &mut Vec<u32>,
    done_count: &mut usize,
) {
    if bit(committed, op) {
        return; // successors were already notified
    }
    set_bit(committed, op);
    stack.push(op as u32);
    while let Some(p) = stack.pop() {
        let (lo, hi) = (succ_off[p as usize] as usize, succ_off[p as usize + 1] as usize);
        for &s in &succ[lo..hi] {
            let s = s as usize;
            commit_pending[s] -= 1;
            if commit_pending[s] == 0 && transparent[op_class[s] as usize] && !bit(done, s) {
                set_bit(done, s);
                set_bit(issued, s);
                *done_count += 1;
                // An op already committed in-pipeline told its successors;
                // only a fresh commit propagates further.
                if !bit(committed, s) {
                    set_bit(committed, s);
                    stack.push(s as u32);
                }
            }
        }
    }
}

/// Schedules one basic block's DFG on the PUM (Algorithm 1).
///
/// One-shot convenience form: builds the [`IssueTable`], computes heights
/// if the policy needs them and borrows the thread's [`with_scratch`]
/// arena. Hot paths (the schedule cache, [`crate::annotate()`]) precompute
/// all three and call [`schedule_block_prepared`] directly.
///
/// `func` and `block_id` are used only for error reporting.
///
/// # Errors
///
/// - [`EstimateError::UnmappedClass`] if an op class has no PUM binding;
/// - [`EstimateError::Deadlock`] if the pipeline simulation stops making
///   progress (impossible resource configuration).
pub fn schedule_block(
    pum: &Pum,
    block: &BlockData,
    dfg: &Dfg,
    func: FuncId,
    block_id: BlockId,
) -> Result<ScheduleResult, EstimateError> {
    let table = IssueTable::build(pum);
    let height_buf;
    let heights: &[usize] = match pum.execution.policy {
        SchedulingPolicy::InOrder | SchedulingPolicy::Asap => &[],
        SchedulingPolicy::List | SchedulingPolicy::Alap => {
            height_buf = dfg.heights();
            &height_buf
        }
    };
    with_scratch(|scratch| {
        schedule_block_prepared(&table, scratch, block, dfg, heights, func, block_id)
    })
}

/// [`schedule_block`] with the PUM-invariant and DFG-invariant inputs
/// hoisted out: the domain's precompiled [`IssueTable`], a reusable
/// [`ScheduleScratch`] arena and the block's dependence heights (only read
/// under the List/ALAP policies; pass `&[]` otherwise).
///
/// # Errors
///
/// Same as [`schedule_block`].
pub fn schedule_block_prepared(
    table: &IssueTable,
    scratch: &mut ScheduleScratch,
    block: &BlockData,
    dfg: &Dfg,
    heights: &[usize],
    func: FuncId,
    block_id: BlockId,
) -> Result<ScheduleResult, EstimateError> {
    let n = block.ops.len();
    if n == 0 {
        return Ok(ScheduleResult {
            cycles: 0,
            raw_cycles: 0,
            issue_cycle: Vec::new(),
            finish_cycle: Vec::new(),
        });
    }
    if n == 1 {
        // Closed form for the very common single-op glue block: with
        // nothing else in flight, a transparent op resolves before cycle 0
        // and any other op free-flows down pipeline 0 — it issues at cycle
        // 0 and finishes after the sum of its stage durations, exactly as
        // the cycle loop would compute. Classes whose lone op *could*
        // stall (a zero-width stage, an absent unit) take the loop below.
        let class = block.ops[0].class();
        let ci = class_index(class);
        if !table.mapped[ci] {
            return Err(EstimateError::UnmappedClass { class });
        }
        if table.transparent[ci] {
            return Ok(ScheduleResult {
                cycles: 0,
                raw_cycles: 0,
                issue_cycle: vec![None],
                finish_cycle: vec![None],
            });
        }
        if table.free_flow[ci] {
            let finish = table.pipe0_latency[ci];
            return Ok(ScheduleResult {
                cycles: finish.saturating_sub(table.fill_correction),
                raw_cycles: finish,
                issue_cycle: vec![Some(0)],
                finish_cycle: vec![Some(finish)],
            });
        }
    }
    let edges: usize = dfg.preds.iter().map(Vec::len).sum();
    let slots = scratch.prepare(table, n, edges);

    // Carve the fused arenas into the kernel's named views. Only the
    // regions that genuinely need initial values are written here; the
    // rest are fully overwritten below before they are read.
    let words = n.div_ceil(64);
    let state = &mut scratch.state[..3 * words];
    state.fill(0);
    let (committed, rest) = state.split_at_mut(words);
    let (done, issued) = rest.split_at_mut(words);
    let fu_n = table.fu_quantity.len();
    let arena = &mut scratch.words32[..4 * n + 1 + edges + fu_n + 2 * slots];
    let (commit_pending, rest) = arena.split_at_mut(n);
    let (order, rest) = rest.split_at_mut(n);
    let (succ_off, rest) = rest.split_at_mut(n + 1);
    let (cursor, rest) = rest.split_at_mut(n);
    let (succ, rest) = rest.split_at_mut(edges);
    let (fu_free, rest) = rest.split_at_mut(fu_n);
    let (slot_op, slot_rem) = rest.split_at_mut(slots);
    succ_off.fill(0);
    fu_free.copy_from_slice(&table.fu_quantity);
    let op_class = &mut scratch.op_class[..n];
    let priority = &mut scratch.priority[..];
    let stage_base = &scratch.stage_base[..];
    let stage_len = &mut scratch.stage_len[..table.stage_width.len()];
    stage_len.fill(0);
    let n_pipes = table.pipe_first.len() - 1;
    let pipe_hi = &mut scratch.pipe_hi[..n_pipes];
    pipe_hi.fill(0);
    let stack = &mut scratch.stack;

    let n_stages = table.n_stages;
    for (i, op) in block.ops.iter().enumerate() {
        let class = op.class();
        let ci = class_index(class);
        if !table.mapped[ci] {
            return Err(EstimateError::UnmappedClass { class });
        }
        op_class[i] = ci as u8;
    }

    // Dependence bookkeeping: pending-predecessor counts plus a CSR
    // successor view for commit notification.
    for (i, preds) in dfg.preds.iter().enumerate() {
        commit_pending[i] = preds.len() as u32;
        for &p in preds {
            succ_off[p + 1] += 1;
        }
    }
    for j in 1..=n {
        succ_off[j] += succ_off[j - 1];
    }
    cursor.copy_from_slice(&succ_off[..n]);
    for (i, preds) in dfg.preds.iter().enumerate() {
        for &p in preds {
            succ[cursor[p] as usize] = i as u32;
            cursor[p] += 1;
        }
    }

    // Candidate order, sorted once: every cycle's candidate list in the
    // reference kernel is the still-unissued subset in stable
    // `(priority, index)` order, so a fixed sorted order with an issued
    // check visits the exact same sequence.
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i as u32;
    }
    match table.policy {
        SchedulingPolicy::InOrder | SchedulingPolicy::Asap => {}
        SchedulingPolicy::List => {
            debug_assert_eq!(heights.len(), n, "List policy needs per-op heights");
            for i in 0..n {
                priority[i] = -(heights[i] as i64);
            }
            order.sort_unstable_by_key(|&i| (priority[i as usize], i));
        }
        SchedulingPolicy::Alap => {
            debug_assert_eq!(heights.len(), n, "ALAP policy needs per-op heights");
            for i in 0..n {
                priority[i] = heights[i] as i64;
            }
            order.sort_unstable_by_key(|&i| (priority[i as usize], i));
        }
    }

    let mut issue_cycle: Vec<Option<u64>> = vec![None; n];
    let mut finish_cycle: Vec<Option<u64>> = vec![None; n];
    let mut done_count = 0usize;

    // Source-transparent ops (no uncommitted predecessors) resolve before
    // the first cycle; publish() cascades through transparent chains.
    for i in 0..n {
        if table.transparent[op_class[i] as usize] && commit_pending[i] == 0 && !bit(done, i) {
            set_bit(done, i);
            set_bit(issued, i);
            done_count += 1;
            publish(
                i,
                &table.transparent,
                op_class,
                committed,
                done,
                issued,
                commit_pending,
                succ_off,
                succ,
                stack,
                &mut done_count,
            );
        }
    }

    let in_order = table.policy == SchedulingPolicy::InOrder;
    let mut issue_head = 0usize;
    let mut cycle: u64 = 0;
    let mut last_finish: u64 = 0;
    let mut any_scheduled = false;

    while done_count < n {
        if cycle > CYCLE_LIMIT {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        let mut progress = false;

        // Phase 1: decrement counters; completions at the commit stage
        // publish their results (and cascade transparent resolution).
        for (p, &hi) in pipe_hi.iter().enumerate() {
            for s_local in 0..hi {
                let j = table.pipe_first[p] + s_local;
                let base = stage_base[j];
                for k in base..base + stage_len[j] {
                    let rem = &mut slot_rem[k];
                    if *rem > 0 {
                        *rem -= 1;
                        progress = true;
                        if *rem == 0 {
                            let op = slot_op[k] as usize;
                            if s_local == table.commit_stage[op_class[op] as usize] {
                                publish(
                                    op,
                                    &table.transparent,
                                    op_class,
                                    committed,
                                    done,
                                    issued,
                                    commit_pending,
                                    succ_off,
                                    succ,
                                    stack,
                                    &mut done_count,
                                );
                            }
                        }
                    }
                }
            }
        }

        // Phase 2: advclock — advance ops whose stage time elapsed, from
        // the last stage backwards so a vacated stage can be refilled in
        // the same cycle. Slot regions keep the reference kernel's
        // swap_remove order, so stalls resolve identically.
        for p in 0..n_pipes {
            let first = table.pipe_first[p];
            let np = table.pipe_first[p + 1] - first;
            for s_local in (0..pipe_hi[p]).rev() {
                let j = first + s_local;
                let base = stage_base[j];
                let mut idx = 0;
                while idx < stage_len[j] {
                    if slot_rem[base + idx] > 0 {
                        idx += 1;
                        continue;
                    }
                    let op = slot_op[base + idx] as usize;
                    let ci = op_class[op] as usize;
                    if s_local + 1 == np {
                        // Leaves the pipeline.
                        stage_len[j] -= 1;
                        slot_op[base + idx] = slot_op[base + stage_len[j]];
                        slot_rem[base + idx] = slot_rem[base + stage_len[j]];
                        let fu = table.fu_plus1[ci * n_stages + s_local];
                        if fu != 0 {
                            fu_free[fu as usize - 1] += 1;
                        }
                        set_bit(done, op);
                        done_count += 1;
                        finish_cycle[op] = Some(cycle);
                        last_finish = last_finish.max(cycle);
                        progress = true;
                        continue; // same idx now holds the swapped slot
                    }
                    let ns = s_local + 1;
                    let room = stage_len[j + 1] < table.stage_width[j + 1];
                    let operands_ok = ns != table.demand_stage[ci] || commit_pending[op] == 0;
                    let fu_next = table.fu_plus1[ci * n_stages + ns];
                    let fu_ok = fu_next == 0 || fu_free[fu_next as usize - 1] > 0;
                    if room && operands_ok && fu_ok {
                        stage_len[j] -= 1;
                        slot_op[base + idx] = slot_op[base + stage_len[j]];
                        slot_rem[base + idx] = slot_rem[base + stage_len[j]];
                        let fu = table.fu_plus1[ci * n_stages + s_local];
                        if fu != 0 {
                            fu_free[fu as usize - 1] += 1;
                        }
                        if fu_next != 0 {
                            fu_free[fu_next as usize - 1] -= 1;
                        }
                        let nbase = stage_base[j + 1];
                        slot_op[nbase + stage_len[j + 1]] = op as u32;
                        slot_rem[nbase + stage_len[j + 1]] = table.durations[ci * n_stages + ns];
                        stage_len[j + 1] += 1;
                        pipe_hi[p] = pipe_hi[p].max(s_local + 2);
                        progress = true;
                    } else {
                        idx += 1; // stalled
                    }
                }
            }
            while pipe_hi[p] > 0 && stage_len[first + pipe_hi[p] - 1] == 0 {
                pipe_hi[p] -= 1;
            }
        }

        // Phase 3: AssignOps — issue into stage 0 per the policy.
        while issue_head < n && bit(issued, order[issue_head] as usize) {
            issue_head += 1;
        }
        let mut stage0_open = 0usize;
        for p in 0..n_pipes {
            let j0 = table.pipe_first[p];
            stage0_open += table.stage_width[j0].saturating_sub(stage_len[j0]);
        }
        'issue: for &ord in &order[issue_head..n] {
            if stage0_open == 0 {
                // No stage-0 slot anywhere: the remaining scan could place
                // nothing and has no side effects, in order or not.
                break;
            }
            let op = ord as usize;
            if bit(issued, op) {
                continue;
            }
            let ci = op_class[op] as usize;
            // Dataflow policies require operands before issue when stage 0
            // demands them; in-order CPUs issue blindly and stall at the
            // demand stage.
            let ready = 0 != table.demand_stage[ci] || commit_pending[op] == 0;
            if !ready {
                if in_order {
                    break 'issue; // program order: nothing younger may pass
                }
                continue;
            }
            let fu0 = table.fu_plus1[ci * n_stages];
            let mut placed = false;
            for (p, hi) in pipe_hi.iter_mut().enumerate() {
                let j0 = table.pipe_first[p];
                let room = stage_len[j0] < table.stage_width[j0];
                let fu_ok = fu0 == 0 || fu_free[fu0 as usize - 1] > 0;
                if room && fu_ok {
                    if fu0 != 0 {
                        fu_free[fu0 as usize - 1] -= 1;
                    }
                    let base0 = stage_base[j0];
                    slot_op[base0 + stage_len[j0]] = op as u32;
                    slot_rem[base0 + stage_len[j0]] = table.durations[ci * n_stages];
                    stage_len[j0] += 1;
                    *hi = (*hi).max(1);
                    stage0_open -= 1;
                    set_bit(issued, op);
                    issue_cycle[op] = Some(cycle);
                    any_scheduled = true;
                    progress = true;
                    placed = true;
                    break;
                }
            }
            if !placed && in_order {
                break 'issue;
            }
        }

        if !progress {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        cycle += 1;
    }

    let raw_cycles = if any_scheduled { last_finish } else { 0 };
    let cycles = raw_cycles.saturating_sub(table.fill_correction);
    Ok(ScheduleResult { cycles, raw_cycles, issue_cycle, finish_cycle })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use tlm_cdfg::dfg::block_dfg;
    use tlm_cdfg::ir::Module;

    /// Lowers a function body and schedules its largest block.
    fn schedule_body(pum: &Pum, src: &str) -> ScheduleResult {
        let module = module_of(src);
        let func = &module.functions[0];
        let (bid, block) = func.blocks_iter().max_by_key(|(_, b)| b.ops.len()).expect("has blocks");
        schedule_block(pum, block, &block_dfg(block), FuncId(0), bid).expect("schedules")
    }

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    use tlm_cdfg::FuncId;

    #[test]
    fn empty_block_costs_nothing() {
        let pum = library::microblaze_like(0, 0);
        let module = module_of("void f() { }");
        let block = &module.functions[0].blocks[0];
        let r = schedule_block(&pum, block, &block_dfg(block), FuncId(0), BlockId(0))
            .expect("schedules");
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn single_issue_throughput_is_one_per_cycle() {
        // Independent ALU work on a 1-wide in-order core: n ops ≈ n cycles.
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let r =
            schedule_body(&pum, "int f(int a, int b, int c, int d) { return (a + b) + (c + d); }");
        // 3 adds + 1 op-ish tail; steady-state cycles ≈ op count.
        let n = r.issue_cycle.len() as u64;
        assert!(r.cycles >= n, "dependences cannot make it faster than n");
        assert!(r.cycles <= n + 2, "got {} for {n} ops", r.cycles);
    }

    #[test]
    fn multiplier_latency_serializes_dependent_chain() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let chain = schedule_body(&pum, "int f(int a) { return a * a * a * a; }");
        let single = schedule_body(&pum, "int f(int a) { return a * a; }");
        // Each extra dependent multiply costs the full 3-cycle latency.
        assert!(
            chain.cycles >= single.cycles + 2 * 3,
            "chain {} vs single {}",
            chain.cycles,
            single.cycles
        );
    }

    #[test]
    fn load_use_stall_costs_a_bubble() {
        use tlm_cdfg::ir::{ArrayId, BlockData, Op, OpKind, Terminator, VReg};
        use tlm_minic::ast::BinOp;
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        // v1 = load t[v0]; v2 = v1 + v1   (dependent on the load)
        let dependent = BlockData {
            ops: vec![
                Op {
                    kind: OpKind::Load { array: ArrayId(0) },
                    args: vec![VReg(0)],
                    result: Some(VReg(1)),
                },
                Op {
                    kind: OpKind::Bin(BinOp::Add),
                    args: vec![VReg(1), VReg(1)],
                    result: Some(VReg(2)),
                },
            ],
            term: Terminator::Return(Some(VReg(2))),
        };
        // v1 = load t[v0]; v2 = v0 + v0   (independent of the load)
        let independent = BlockData {
            ops: vec![
                Op {
                    kind: OpKind::Load { array: ArrayId(0) },
                    args: vec![VReg(0)],
                    result: Some(VReg(1)),
                },
                Op {
                    kind: OpKind::Bin(BinOp::Add),
                    args: vec![VReg(0), VReg(0)],
                    result: Some(VReg(2)),
                },
            ],
            term: Terminator::Return(Some(VReg(2))),
        };
        let run = |b: &BlockData| {
            schedule_block(&pum, b, &block_dfg(b), FuncId(0), BlockId(0)).expect("schedules").cycles
        };
        // The load commits at MEM while the add demands at EX: exactly one
        // bubble separates the dependent pair.
        assert_eq!(run(&dependent), run(&independent) + 1);
    }

    #[test]
    fn hw_parallelism_beats_single_issue() {
        // Four independent multiplies: 2 MACs in HW finish in about half
        // the cycles of a single-issue CPU.
        let src = "int f(int a, int b, int c, int d) {
            return (a * a) + (b * b) + (c * c) + (d * d);
        }";
        let cpu = schedule_body(&library::microblaze_like(8 << 10, 4 << 10), src);
        let hw = schedule_body(&library::custom_hw("mac4", 2, 2), src);
        assert!(hw.cycles * 2 <= cpu.cycles, "hw {} vs cpu {}", hw.cycles, cpu.cycles);
    }

    #[test]
    fn fu_contention_limits_hw_parallelism() {
        let src = "int f(int a, int b, int c, int d) {
            return (a * a) + (b * b) + (c * c) + (d * d);
        }";
        let wide = schedule_body(&library::custom_hw("wide", 4, 4), src);
        let narrow = schedule_body(&library::custom_hw("narrow", 1, 1), src);
        assert!(narrow.cycles > wide.cycles, "narrow {} vs wide {}", narrow.cycles, wide.cycles);
    }

    #[test]
    fn list_beats_alap_on_mixed_blocks() {
        // A block with one long chain plus independent filler: list
        // scheduling (critical path first) must not lose to ALAP.
        let src = "int f(int a, int b, int c, int d, int e) {
            int chain = ((((a * a) * a) * a) * a);
            int filler = b + c + d + e;
            return chain + filler;
        }";
        let mut list_pum = library::custom_hw("hw", 1, 1);
        list_pum.execution.policy = SchedulingPolicy::List;
        let mut alap_pum = list_pum.clone();
        alap_pum.execution.policy = SchedulingPolicy::Alap;
        let list = schedule_body(&list_pum, src);
        let alap = schedule_body(&alap_pum, src);
        assert!(list.cycles <= alap.cycles, "list {} alap {}", list.cycles, alap.cycles);
    }

    #[test]
    fn superscalar_issues_two_per_cycle() {
        let src = "int f(int a, int b, int c, int d, int e, int g, int h, int i) {
            return (a + b) + (c + d) + (e + g) + (h + i);
        }";
        let single = schedule_body(&library::microblaze_like(8 << 10, 4 << 10), src);
        let dual = schedule_body(&library::superscalar2(), src);
        assert!(dual.cycles < single.cycles, "dual {} vs single {}", dual.cycles, single.cycles);
    }

    #[test]
    fn transparent_constants_are_free_on_hw() {
        let src = "int f(int a) { return a + 1 + 2 + 3 + 4; }";
        let hw = schedule_body(&library::custom_hw("hw", 2, 1), src);
        // Constants resolve without pipeline occupancy: only the adds and
        // the return path cost cycles.
        let issued = hw.issue_cycle.iter().flatten().count();
        assert!(issued < hw.issue_cycle.len(), "some ops were transparent");
    }

    #[test]
    fn unmapped_class_is_reported() {
        let mut pum = library::microblaze_like(0, 0);
        pum.execution.op_map.remove(&crate::pum::OpClassKey::Mul);
        let module = module_of("int f(int a) { return a * a; }");
        let block = &module.functions[0].blocks[0];
        let err = schedule_block(&pum, block, &block_dfg(block), FuncId(0), BlockId(0))
            .expect_err("mul is unmapped");
        assert!(matches!(err, EstimateError::UnmappedClass { .. }));
    }

    #[test]
    fn issue_and_finish_cycles_are_consistent() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let r = schedule_body(&pum, "int f(int a, int b) { return a * b + a - b; }");
        for (i, f) in r.issue_cycle.iter().zip(&r.finish_cycle) {
            if let (Some(i), Some(f)) = (i, f) {
                assert!(f > i, "ops finish after they issue");
            }
        }
        assert!(r.raw_cycles >= r.cycles);
    }

    #[cfg(feature = "reference-kernel")]
    #[test]
    fn matches_reference_kernel_on_lowered_sources() {
        use crate::reference::schedule_block_reference;
        let sources = [
            "int f(int a, int b, int c, int d) { return (a + b) * (c + d) - a / b; }",
            "int f(int a) { int s = 0; for (int i = 0; i < a; i++) { s += i * i; } return s; }",
            "int t[8]; int f(int a) { t[0] = a; return t[0] + t[1] * 3; }",
        ];
        let mut pums = vec![
            library::microblaze_like(8 << 10, 4 << 10),
            library::superscalar2(),
            library::vliw4(),
        ];
        for policy in [
            SchedulingPolicy::InOrder,
            SchedulingPolicy::Asap,
            SchedulingPolicy::Alap,
            SchedulingPolicy::List,
        ] {
            let mut hw = library::custom_hw("hw", 2, 2);
            hw.execution.policy = policy;
            pums.push(hw);
        }
        for src in sources {
            let module = module_of(src);
            for (fid, func) in module.functions_iter() {
                for (bid, block) in func.blocks_iter() {
                    let dfg = block_dfg(block);
                    for pum in &pums {
                        let fast = schedule_block(pum, block, &dfg, fid, bid);
                        let slow = schedule_block_reference(pum, block, &dfg, fid, bid);
                        assert_eq!(fast, slow, "kernels diverge on {} under {}", src, pum.name);
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_counted() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let module = module_of("int f(int a, int b) { return a * b + a - b; }");
        let block = &module.functions[0].blocks[0];
        let dfg = block_dfg(block);
        let before = scratch_stats();
        for _ in 0..3 {
            schedule_block(&pum, block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        }
        let after = scratch_stats();
        let runs = (after.reuses - before.reuses) + (after.allocs - before.allocs);
        assert_eq!(runs, 3, "every kernel run is counted");
        assert!(after.reuses > before.reuses, "repeat blocks reuse the arena");
    }
}
