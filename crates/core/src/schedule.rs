//! Algorithm 1 — **Optimistic Scheduling** (§4.2 of the paper).
//!
//! The delay of a basic block on a PE is computed by simulating the block's
//! DFG on the PE's pipeline model cycle by cycle, under optimistic
//! assumptions (100 % cache hits, perfect branch prediction):
//!
//! - `advclock` advances every in-flight operation: per-stage cycle counters
//!   decrement; an operation whose counter reaches zero advances to the next
//!   stage unless the stage is full, a functional unit it needs is busy, or
//!   the next stage is its *demand* stage and a DFG predecessor has not yet
//!   *committed* its result;
//! - `AssignOps` issues remaining operations into the first stage according
//!   to the PUM's scheduling policy (in-order, ASAP, ALAP or list);
//! - the loop runs until the *done* set contains every operation. The DFG
//!   is acyclic so the simulation terminates; a defensive progress check
//!   turns impossible resource configurations into an error instead of a
//!   hang.
//!
//! One refinement over the paper's pseudocode: the simulated count includes
//! the pipeline fill (the first operation traverses every stage), but in
//! steady state consecutive blocks overlap in the pipeline, so
//! [`ScheduleResult::cycles`] subtracts `depth − 1` ([`Pum::fill_correction`]).
//! Pipeline refills that *do* occur at mispredicted branches are charged by
//! Algorithm 2's branch term instead. The uncorrected value is kept in
//! [`ScheduleResult::raw_cycles`].

use tlm_cdfg::dfg::Dfg;
use tlm_cdfg::ir::BlockData;
use tlm_cdfg::{BlockId, FuncId};

use crate::error::EstimateError;
use crate::pum::{Pum, SchedulingPolicy};

/// Hard cap on simulated cycles per block; hitting it means the PUM cannot
/// execute the block at all.
const CYCLE_LIMIT: u64 = 10_000_000;

/// Result of scheduling one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResult {
    /// Steady-state cycles charged to the block (fill-corrected, ≥ 0).
    pub cycles: u64,
    /// Raw simulated cycles including pipeline fill and drain.
    pub raw_cycles: u64,
    /// Cycle each op was issued at (`None` for transparent ops).
    pub issue_cycle: Vec<Option<u64>>,
    /// Cycle each op left the pipeline (`None` for transparent ops).
    pub finish_cycle: Vec<Option<u64>>,
}

/// Per-op scheduling facts precomputed from the PUM.
struct OpInfo {
    /// Cycles spent per stage (index by stage).
    durations: Vec<u32>,
    /// Functional unit used per stage, if any.
    fu_at: Vec<Option<usize>>,
    demand_stage: usize,
    commit_stage: usize,
    transparent: bool,
    /// Issue priority (smaller issues first among ready ops).
    priority: i64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    op: usize,
    remaining: u32,
}

/// Schedules one basic block's DFG on the PUM (Algorithm 1).
///
/// `func` and `block_id` are used only for error reporting.
///
/// # Errors
///
/// - [`EstimateError::UnmappedClass`] if an op class has no PUM binding;
/// - [`EstimateError::Deadlock`] if the pipeline simulation stops making
///   progress (impossible resource configuration).
pub fn schedule_block(
    pum: &Pum,
    block: &BlockData,
    dfg: &Dfg,
    func: FuncId,
    block_id: BlockId,
) -> Result<ScheduleResult, EstimateError> {
    let n = block.ops.len();
    if n == 0 {
        return Ok(ScheduleResult {
            cycles: 0,
            raw_cycles: 0,
            issue_cycle: Vec::new(),
            finish_cycle: Vec::new(),
        });
    }

    let n_stages = pum.max_stages();
    let heights = dfg.heights();
    let infos: Vec<OpInfo> = block
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let b = pum.binding(op.class())?;
            let mut durations = vec![1u32; n_stages];
            let mut fu_at = vec![None; n_stages];
            for u in &b.usage {
                durations[u.stage] = pum.datapath.units[u.fu].modes[u.mode].delay;
                fu_at[u.stage] = Some(u.fu);
            }
            let priority = match pum.execution.policy {
                SchedulingPolicy::InOrder | SchedulingPolicy::Asap => i as i64,
                // List: longest chain first; ALAP: least critical first.
                SchedulingPolicy::List => -(heights[i] as i64),
                SchedulingPolicy::Alap => heights[i] as i64,
            };
            Ok(OpInfo {
                durations,
                fu_at,
                demand_stage: b.demand_stage,
                commit_stage: b.commit_stage,
                transparent: b.transparent,
                priority,
            })
        })
        .collect::<Result<_, EstimateError>>()?;

    let mut committed = vec![false; n];
    let mut done = vec![false; n];
    let mut issued = vec![false; n];
    let mut issue_cycle = vec![None; n];
    let mut finish_cycle = vec![None; n];
    let mut done_count = 0usize;

    let mut fu_free: Vec<u32> = pum.datapath.units.iter().map(|u| u.quantity).collect();
    // pipelines × stages × resident ops
    let mut pipes: Vec<Vec<Vec<Slot>>> =
        pum.datapath.pipelines.iter().map(|p| vec![Vec::new(); p.stages.len()]).collect();

    // Transparent ops whose predecessors are all committed resolve for free.
    let resolve_transparent = |committed: &mut Vec<bool>,
                               done: &mut Vec<bool>,
                               issued: &mut Vec<bool>,
                               done_count: &mut usize| {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if infos[i].transparent && !done[i] && dfg.preds[i].iter().all(|&p| committed[p]) {
                    committed[i] = true;
                    done[i] = true;
                    issued[i] = true;
                    *done_count += 1;
                    changed = true;
                }
            }
        }
    };
    resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

    let mut cycle: u64 = 0;
    let mut last_finish: u64 = 0;
    let mut any_scheduled = false;

    while done_count < n {
        if cycle > CYCLE_LIMIT {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        let mut progress = false;

        // Phase 1: decrement counters; completions at the commit stage
        // publish their results.
        for pipe in pipes.iter_mut() {
            for (stage_idx, stage) in pipe.iter_mut().enumerate() {
                for slot in stage.iter_mut() {
                    if slot.remaining > 0 {
                        slot.remaining -= 1;
                        progress = true;
                        if slot.remaining == 0 && stage_idx == infos[slot.op].commit_stage {
                            committed[slot.op] = true;
                        }
                    }
                }
            }
        }
        resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

        // Phase 2: advclock — advance ops whose stage time elapsed, from
        // the last stage backwards so a vacated stage can be refilled in
        // the same cycle.
        for (pipe_idx, pipe) in pipes.iter_mut().enumerate() {
            let stages = &pum.datapath.pipelines[pipe_idx].stages;
            let n_pipe_stages = pipe.len();
            for s in (0..n_pipe_stages).rev() {
                let mut idx = 0;
                while idx < pipe[s].len() {
                    let slot = pipe[s][idx];
                    if slot.remaining > 0 {
                        idx += 1;
                        continue;
                    }
                    if s + 1 == n_pipe_stages {
                        // Leaves the pipeline.
                        pipe[s].swap_remove(idx);
                        if let Some(fu) = infos[slot.op].fu_at[s] {
                            fu_free[fu] += 1;
                        }
                        done[slot.op] = true;
                        done_count += 1;
                        finish_cycle[slot.op] = Some(cycle);
                        last_finish = last_finish.max(cycle);
                        progress = true;
                        continue; // same idx now holds the swapped element
                    }
                    let ns = s + 1;
                    let info = &infos[slot.op];
                    let room = pipe[ns].len() < stages[ns].width as usize;
                    let operands_ok =
                        ns != info.demand_stage || dfg.preds[slot.op].iter().all(|&p| committed[p]);
                    let fu_ok = info.fu_at[ns].is_none_or(|fu| fu_free[fu] > 0);
                    if room && operands_ok && fu_ok {
                        pipe[s].swap_remove(idx);
                        if let Some(fu) = info.fu_at[s] {
                            fu_free[fu] += 1;
                        }
                        if let Some(fu) = info.fu_at[ns] {
                            fu_free[fu] -= 1;
                        }
                        pipe[ns].push(Slot { op: slot.op, remaining: info.durations[ns] });
                        progress = true;
                    } else {
                        idx += 1; // stalled
                    }
                }
            }
        }
        resolve_transparent(&mut committed, &mut done, &mut issued, &mut done_count);

        // Phase 3: AssignOps — issue into stage 0 per the policy.
        let in_order = pum.execution.policy == SchedulingPolicy::InOrder;
        let mut candidates: Vec<usize> = (0..n).filter(|&i| !issued[i]).collect();
        candidates.sort_by_key(|&i| (infos[i].priority, i));
        'issue: for &op in &candidates {
            let info = &infos[op];
            // Dataflow policies require operands before issue when stage 0
            // demands them; in-order CPUs issue blindly and stall at the
            // demand stage.
            let ready = 0 != info.demand_stage || dfg.preds[op].iter().all(|&p| committed[p]);
            if !ready {
                if in_order {
                    break 'issue; // program order: nothing younger may pass
                }
                continue;
            }
            let mut placed = false;
            for (pipe_idx, pipe) in pipes.iter_mut().enumerate() {
                let width0 = pum.datapath.pipelines[pipe_idx].stages[0].width as usize;
                let room = pipe[0].len() < width0;
                let fu_ok = info.fu_at[0].is_none_or(|fu| fu_free[fu] > 0);
                if room && fu_ok {
                    if let Some(fu) = info.fu_at[0] {
                        fu_free[fu] -= 1;
                    }
                    pipe[0].push(Slot { op, remaining: info.durations[0] });
                    issued[op] = true;
                    issue_cycle[op] = Some(cycle);
                    any_scheduled = true;
                    progress = true;
                    placed = true;
                    break;
                }
            }
            if !placed && in_order {
                break 'issue;
            }
        }

        if !progress {
            return Err(EstimateError::Deadlock { func, block: block_id, cycle });
        }
        cycle += 1;
    }

    let raw_cycles = if any_scheduled { last_finish } else { 0 };
    let cycles = raw_cycles.saturating_sub(pum.fill_correction());
    Ok(ScheduleResult { cycles, raw_cycles, issue_cycle, finish_cycle })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use tlm_cdfg::dfg::block_dfg;
    use tlm_cdfg::ir::Module;

    /// Lowers a function body and schedules its largest block.
    fn schedule_body(pum: &Pum, src: &str) -> ScheduleResult {
        let module = module_of(src);
        let func = &module.functions[0];
        let (bid, block) = func.blocks_iter().max_by_key(|(_, b)| b.ops.len()).expect("has blocks");
        schedule_block(pum, block, &block_dfg(block), FuncId(0), bid).expect("schedules")
    }

    fn module_of(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    use tlm_cdfg::FuncId;

    #[test]
    fn empty_block_costs_nothing() {
        let pum = library::microblaze_like(0, 0);
        let module = module_of("void f() { }");
        let block = &module.functions[0].blocks[0];
        let r = schedule_block(&pum, block, &block_dfg(block), FuncId(0), BlockId(0))
            .expect("schedules");
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn single_issue_throughput_is_one_per_cycle() {
        // Independent ALU work on a 1-wide in-order core: n ops ≈ n cycles.
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let r =
            schedule_body(&pum, "int f(int a, int b, int c, int d) { return (a + b) + (c + d); }");
        // 3 adds + 1 op-ish tail; steady-state cycles ≈ op count.
        let n = r.issue_cycle.len() as u64;
        assert!(r.cycles >= n, "dependences cannot make it faster than n");
        assert!(r.cycles <= n + 2, "got {} for {n} ops", r.cycles);
    }

    #[test]
    fn multiplier_latency_serializes_dependent_chain() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let chain = schedule_body(&pum, "int f(int a) { return a * a * a * a; }");
        let single = schedule_body(&pum, "int f(int a) { return a * a; }");
        // Each extra dependent multiply costs the full 3-cycle latency.
        assert!(
            chain.cycles >= single.cycles + 2 * 3,
            "chain {} vs single {}",
            chain.cycles,
            single.cycles
        );
    }

    #[test]
    fn load_use_stall_costs_a_bubble() {
        use tlm_cdfg::ir::{ArrayId, BlockData, Op, OpKind, Terminator, VReg};
        use tlm_minic::ast::BinOp;
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        // v1 = load t[v0]; v2 = v1 + v1   (dependent on the load)
        let dependent = BlockData {
            ops: vec![
                Op {
                    kind: OpKind::Load { array: ArrayId(0) },
                    args: vec![VReg(0)],
                    result: Some(VReg(1)),
                },
                Op {
                    kind: OpKind::Bin(BinOp::Add),
                    args: vec![VReg(1), VReg(1)],
                    result: Some(VReg(2)),
                },
            ],
            term: Terminator::Return(Some(VReg(2))),
        };
        // v1 = load t[v0]; v2 = v0 + v0   (independent of the load)
        let independent = BlockData {
            ops: vec![
                Op {
                    kind: OpKind::Load { array: ArrayId(0) },
                    args: vec![VReg(0)],
                    result: Some(VReg(1)),
                },
                Op {
                    kind: OpKind::Bin(BinOp::Add),
                    args: vec![VReg(0), VReg(0)],
                    result: Some(VReg(2)),
                },
            ],
            term: Terminator::Return(Some(VReg(2))),
        };
        let run = |b: &BlockData| {
            schedule_block(&pum, b, &block_dfg(b), FuncId(0), BlockId(0)).expect("schedules").cycles
        };
        // The load commits at MEM while the add demands at EX: exactly one
        // bubble separates the dependent pair.
        assert_eq!(run(&dependent), run(&independent) + 1);
    }

    #[test]
    fn hw_parallelism_beats_single_issue() {
        // Four independent multiplies: 2 MACs in HW finish in about half
        // the cycles of a single-issue CPU.
        let src = "int f(int a, int b, int c, int d) {
            return (a * a) + (b * b) + (c * c) + (d * d);
        }";
        let cpu = schedule_body(&library::microblaze_like(8 << 10, 4 << 10), src);
        let hw = schedule_body(&library::custom_hw("mac4", 2, 2), src);
        assert!(hw.cycles * 2 <= cpu.cycles, "hw {} vs cpu {}", hw.cycles, cpu.cycles);
    }

    #[test]
    fn fu_contention_limits_hw_parallelism() {
        let src = "int f(int a, int b, int c, int d) {
            return (a * a) + (b * b) + (c * c) + (d * d);
        }";
        let wide = schedule_body(&library::custom_hw("wide", 4, 4), src);
        let narrow = schedule_body(&library::custom_hw("narrow", 1, 1), src);
        assert!(narrow.cycles > wide.cycles, "narrow {} vs wide {}", narrow.cycles, wide.cycles);
    }

    #[test]
    fn list_beats_alap_on_mixed_blocks() {
        // A block with one long chain plus independent filler: list
        // scheduling (critical path first) must not lose to ALAP.
        let src = "int f(int a, int b, int c, int d, int e) {
            int chain = ((((a * a) * a) * a) * a);
            int filler = b + c + d + e;
            return chain + filler;
        }";
        let mut list_pum = library::custom_hw("hw", 1, 1);
        list_pum.execution.policy = SchedulingPolicy::List;
        let mut alap_pum = list_pum.clone();
        alap_pum.execution.policy = SchedulingPolicy::Alap;
        let list = schedule_body(&list_pum, src);
        let alap = schedule_body(&alap_pum, src);
        assert!(list.cycles <= alap.cycles, "list {} alap {}", list.cycles, alap.cycles);
    }

    #[test]
    fn superscalar_issues_two_per_cycle() {
        let src = "int f(int a, int b, int c, int d, int e, int g, int h, int i) {
            return (a + b) + (c + d) + (e + g) + (h + i);
        }";
        let single = schedule_body(&library::microblaze_like(8 << 10, 4 << 10), src);
        let dual = schedule_body(&library::superscalar2(), src);
        assert!(dual.cycles < single.cycles, "dual {} vs single {}", dual.cycles, single.cycles);
    }

    #[test]
    fn transparent_constants_are_free_on_hw() {
        let src = "int f(int a) { return a + 1 + 2 + 3 + 4; }";
        let hw = schedule_body(&library::custom_hw("hw", 2, 1), src);
        // Constants resolve without pipeline occupancy: only the adds and
        // the return path cost cycles.
        let issued = hw.issue_cycle.iter().flatten().count();
        assert!(issued < hw.issue_cycle.len(), "some ops were transparent");
    }

    #[test]
    fn unmapped_class_is_reported() {
        let mut pum = library::microblaze_like(0, 0);
        pum.execution.op_map.remove(&crate::pum::OpClassKey::Mul);
        let module = module_of("int f(int a) { return a * a; }");
        let block = &module.functions[0].blocks[0];
        let err = schedule_block(&pum, block, &block_dfg(block), FuncId(0), BlockId(0))
            .expect_err("mul is unmapped");
        assert!(matches!(err, EstimateError::UnmappedClass { .. }));
    }

    #[test]
    fn issue_and_finish_cycles_are_consistent() {
        let pum = library::microblaze_like(8 << 10, 4 << 10);
        let r = schedule_body(&pum, "int f(int a, int b) { return a * b + a - b; }");
        for (i, f) in r.issue_cycle.iter().zip(&r.finish_cycle) {
            if let (Some(i), Some(f)) = (i, f) {
                assert!(f > i, "ops finish after they issue");
            }
        }
        assert!(r.raw_cycles >= r.cycles);
    }
}
