//! Minimal data-parallel fan-out on `std::thread`.
//!
//! The natural implementation would be rayon's `par_iter`, but the build
//! environment is fully offline, so the runtime is a small scoped
//! work-claiming pool instead: workers claim **batches** of item indices
//! from an atomic counter (cheap dynamic load balancing — block scheduling
//! costs vary by orders of magnitude between a 3-op glue block and a
//! 600-op unrolled kernel — without one contended fetch_add per item), and
//! results are merged back **by index**, so the output order is always the
//! input order regardless of thread interleaving.
//!
//! The `parallel` cargo feature (default on) gates the thread pool; with it
//! disabled every helper degrades to the obvious sequential loop, which is
//! also the fallback for single-item inputs and single-core hosts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads [`par_map`] will use: the host's available parallelism
/// with the `parallel` feature, 1 without it.
pub fn available_workers() -> usize {
    #[cfg(feature = "parallel")]
    {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Upper bound on indices claimed per `fetch_add` in [`par_map`]. Large
/// enough that the counter is touched ~once per cache-warm run of blocks,
/// small enough that a worker stuck with one pathological block strands at
/// most 15 cheap neighbours.
const CLAIM_CHUNK: usize = 16;

/// Indices claimed per `fetch_add`, adapted to the input size. A fixed
/// [`CLAIM_CHUNK`] starves small inputs — 64 batch units on 8 cores would
/// land on 4 workers, 16 units each, with zero rebalancing — so the chunk
/// shrinks until every worker gets about four claims (dynamic balancing
/// needs more claims than workers), floored at 1 and capped at
/// [`CLAIM_CHUNK`].
fn claim_chunk(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 4)).clamp(1, CLAIM_CHUNK)
}

/// Applies `f` to every item, fanning out over the available cores, and
/// returns the results **in input order** — the parallel result is
/// indistinguishable from `items.iter().map(f).collect()`.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let available = available_workers();
    let chunk = claim_chunk(items.len(), available);
    // More workers than claimable chunks would spawn threads that find
    // the counter exhausted on their first claim.
    let workers = available.min(items.len().div_ceil(chunk));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            return local;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            local.push((start + i, f(item)));
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index claimed")).collect()
}

/// [`par_map`] over owned thunk outputs: runs `n` independent jobs
/// (`f(0..n)`) concurrently, results in index order. Convenient for sweep
/// fan-out where each job builds its own inputs.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs must still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_run(items.len(), |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 % 7) * 10_000 {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn chunk_boundaries_cover_every_index_exactly_once() {
        // Sizes straddling CLAIM_CHUNK multiples: the last chunk is
        // partial, or the whole input fits in one chunk (sequential path).
        for n in [0, 1, CLAIM_CHUNK - 1, CLAIM_CHUNK, CLAIM_CHUNK + 1, 5 * CLAIM_CHUNK + 3] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(par_map(&items, |&x| x), items, "n = {n}");
        }
    }

    #[test]
    fn claim_chunk_adapts_to_input_size() {
        // Small inputs spread across workers instead of saturating one.
        assert_eq!(claim_chunk(8, 8), 1);
        assert_eq!(claim_chunk(64, 4), 4);
        // Large inputs keep the full chunk to amortize the atomic.
        assert_eq!(claim_chunk(1000, 8), CLAIM_CHUNK);
        // Degenerate inputs stay at the floor of 1.
        assert_eq!(claim_chunk(0, 8), 1);
        assert_eq!(claim_chunk(3, 0), 1);
        assert_eq!(claim_chunk(usize::MAX, 1), CLAIM_CHUNK);
    }

    #[test]
    fn small_inputs_fan_out_with_shrunk_chunks() {
        // With an adaptive chunk, inputs between `workers` and
        // `workers * CLAIM_CHUNK` engage several workers; order and
        // coverage must be unaffected.
        for n in [2, 7, 17, 33, 63, 64, 65] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(par_map(&items, |&x| x + 1), (1..=n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn results_match_sequential_for_fallible_work() {
        let items: Vec<i64> = (-8..8).collect();
        let f = |&x: &i64| if x < 0 { Err(x) } else { Ok(x * x) };
        assert_eq!(par_map(&items, f), items.iter().map(f).collect::<Vec<_>>());
    }
}
