//! Differential property test: the flat-layout production kernel
//! (`schedule::schedule_block`) must be **bit-identical** to the
//! pre-rewrite reference kernel (`reference::schedule_block_reference`)
//! on randomly generated DFGs across every scheduling policy and a range
//! of pipeline shapes. The generator is a plain xorshift64* so failures
//! reproduce from the printed seed.
#![cfg(feature = "reference-kernel")]

use tlm_cdfg::dfg::block_dfg;
use tlm_cdfg::ir::{ArrayId, BlockData, Op, OpKind, Terminator, VReg};
use tlm_cdfg::{BlockId, FuncId};
use tlm_core::pum::{OpBinding, OpClassKey, SchedulingPolicy};
use tlm_core::reference::schedule_block_reference;
use tlm_core::schedule::schedule_block;
use tlm_core::{library, Pum};
use tlm_minic::ast::BinOp;

/// xorshift64* — deterministic, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random straight-line block. Results are `VReg(16 + i)` for op `i`;
/// arguments draw from all earlier results *and* vregs 0..16, which are
/// never defined in-block, so some ops have free inputs (no predecessor)
/// and the DFG mixes chains, joins and roots. Loads/stores over two
/// arrays add memory-order edges on top of the data edges.
fn random_block(rng: &mut Rng) -> BlockData {
    let n = 1 + rng.below(20) as usize;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let pick_arg = |rng: &mut Rng| VReg(rng.below(16 + i as u64) as u32);
        let result = Some(VReg(16 + i as u32));
        let op = match rng.below(8) {
            0 => Op { kind: OpKind::Const(rng.next() as i64), args: vec![], result },
            1 => Op {
                kind: OpKind::Bin(BinOp::Add),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            2 => Op {
                kind: OpKind::Bin(BinOp::Mul),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            3 => Op {
                kind: OpKind::Bin(BinOp::Div),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            4 => Op {
                kind: OpKind::Bin(BinOp::Shl),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            5 => Op {
                kind: OpKind::Load { array: ArrayId(rng.below(2) as u32) },
                args: vec![pick_arg(rng)],
                result,
            },
            6 => Op {
                kind: OpKind::Store { array: ArrayId(rng.below(2) as u32) },
                args: vec![pick_arg(rng), pick_arg(rng)],
                result: None,
            },
            _ => Op { kind: OpKind::Copy, args: vec![pick_arg(rng)], result },
        };
        ops.push(op);
    }
    BlockData { ops, term: Terminator::Return(None) }
}

/// The PUM zoo: every built-in shape, custom datapaths at widths 1..=4,
/// and a custom model whose ALU binding is *transparent* — transparent
/// ops with real predecessors are the trickiest resolution path (they
/// must resolve the instant their last predecessor commits).
fn pums() -> Vec<Pum> {
    let mut pums = vec![
        library::microblaze_like(8 << 10, 4 << 10),
        library::generic_risc(),
        library::superscalar2(),
        library::vliw4(),
    ];
    for width in 1..=4u32 {
        pums.push(library::custom_hw(&format!("hw{width}"), width, width));
    }
    let mut transparent_alu = library::custom_hw("transparent-alu", 2, 2);
    transparent_alu.execution.op_map.insert(
        OpClassKey::Alu,
        OpBinding { demand_stage: 0, commit_stage: 0, usage: vec![], transparent: true },
    );
    pums.push(transparent_alu);
    pums
}

const POLICIES: [SchedulingPolicy; 4] = [
    SchedulingPolicy::InOrder,
    SchedulingPolicy::Asap,
    SchedulingPolicy::Alap,
    SchedulingPolicy::List,
];

#[test]
fn production_kernel_is_bit_identical_to_reference() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut checked = 0usize;
    for round in 0..24 {
        let seed_before = rng.0;
        let block = random_block(&mut rng);
        let dfg = block_dfg(&block);
        for base in pums() {
            for policy in POLICIES {
                let mut pum = base.clone();
                pum.execution.policy = policy;
                let new = schedule_block(&pum, &block, &dfg, FuncId(0), BlockId(0));
                let reference = schedule_block_reference(&pum, &block, &dfg, FuncId(0), BlockId(0));
                assert_eq!(
                    new, reference,
                    "kernel divergence: round {round}, rng state {seed_before:#x}, \
                     pum {}, policy {policy:?}, block {block:?}",
                    pum.name
                );
                checked += 1;
            }
        }
    }
    // 24 rounds × 9 PUMs × 4 policies — a regression that only bites one
    // policy or one datapath shape still gets hundreds of shots at it.
    assert_eq!(checked, 24 * 9 * 4);
}

#[test]
fn empty_block_fast_path_short_circuits() {
    let block = BlockData { ops: vec![], term: Terminator::Return(None) };
    let dfg = block_dfg(&block);
    for base in pums() {
        let r = schedule_block(&base, &block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert_eq!(r.cycles, 0, "pum {}", base.name);
        assert_eq!(r.raw_cycles, 0, "pum {}", base.name);
        assert!(r.issue_cycle.is_empty() && r.finish_cycle.is_empty());
    }
}

#[test]
fn all_transparent_block_costs_nothing() {
    // Const and Copy are transparent on the custom-HW models: the whole
    // block must resolve without entering the pipeline at all.
    let block = BlockData {
        ops: vec![
            Op { kind: OpKind::Const(7), args: vec![], result: Some(VReg(16)) },
            Op { kind: OpKind::Copy, args: vec![VReg(16)], result: Some(VReg(17)) },
            Op { kind: OpKind::Copy, args: vec![VReg(17)], result: Some(VReg(18)) },
        ],
        term: Terminator::Return(Some(VReg(18))),
    };
    let dfg = block_dfg(&block);
    let pum = library::custom_hw("hw", 2, 2);
    let r = schedule_block(&pum, &block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
    assert_eq!(r.cycles, 0);
    assert_eq!(r.raw_cycles, 0);
    assert!(r.issue_cycle.iter().all(Option::is_none), "transparent ops never issue");
    assert!(r.finish_cycle.iter().all(Option::is_none));
    let reference = schedule_block_reference(&pum, &block, &dfg, FuncId(0), BlockId(0));
    assert_eq!(Ok(r), reference);
}
