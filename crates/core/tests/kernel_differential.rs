//! Differential property test: the flat-layout production kernel
//! (`schedule::schedule_block`) must be **bit-identical** to the
//! pre-rewrite reference kernel (`reference::schedule_block_reference`)
//! on randomly generated DFGs across every scheduling policy and a range
//! of pipeline shapes. The generator is a plain xorshift64* so failures
//! reproduce from the printed seed.
#![cfg(feature = "reference-kernel")]

use tlm_cdfg::dfg::{block_dfg, schedule_key, Dfg};
use tlm_cdfg::ir::{ArrayId, BlockData, Op, OpKind, Terminator, VReg};
use tlm_cdfg::{BlockId, FuncId};
use tlm_core::batch::{batch_stats, key_hash, schedule_batch, BatchItem, MAX_LANES};
use tlm_core::pum::{OpBinding, OpClassKey, SchedulingPolicy};
use tlm_core::reference::schedule_block_reference;
use tlm_core::schedule::{schedule_block, IssueTable};
use tlm_core::{library, Pum};
use tlm_minic::ast::BinOp;

/// xorshift64* — deterministic, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random straight-line block. Results are `VReg(16 + i)` for op `i`;
/// arguments draw from all earlier results *and* vregs 0..16, which are
/// never defined in-block, so some ops have free inputs (no predecessor)
/// and the DFG mixes chains, joins and roots. Loads/stores over two
/// arrays add memory-order edges on top of the data edges.
fn random_block(rng: &mut Rng) -> BlockData {
    let n = 1 + rng.below(20) as usize;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let pick_arg = |rng: &mut Rng| VReg(rng.below(16 + i as u64) as u32);
        let result = Some(VReg(16 + i as u32));
        let op = match rng.below(8) {
            0 => Op { kind: OpKind::Const(rng.next() as i64), args: vec![], result },
            1 => Op {
                kind: OpKind::Bin(BinOp::Add),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            2 => Op {
                kind: OpKind::Bin(BinOp::Mul),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            3 => Op {
                kind: OpKind::Bin(BinOp::Div),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            4 => Op {
                kind: OpKind::Bin(BinOp::Shl),
                args: vec![pick_arg(rng), pick_arg(rng)],
                result,
            },
            5 => Op {
                kind: OpKind::Load { array: ArrayId(rng.below(2) as u32) },
                args: vec![pick_arg(rng)],
                result,
            },
            6 => Op {
                kind: OpKind::Store { array: ArrayId(rng.below(2) as u32) },
                args: vec![pick_arg(rng), pick_arg(rng)],
                result: None,
            },
            _ => Op { kind: OpKind::Copy, args: vec![pick_arg(rng)], result },
        };
        ops.push(op);
    }
    BlockData { ops, term: Terminator::Return(None) }
}

/// The PUM zoo: every built-in shape, custom datapaths at widths 1..=4,
/// and a custom model whose ALU binding is *transparent* — transparent
/// ops with real predecessors are the trickiest resolution path (they
/// must resolve the instant their last predecessor commits).
fn pums() -> Vec<Pum> {
    let mut pums = vec![
        library::microblaze_like(8 << 10, 4 << 10),
        library::generic_risc(),
        library::superscalar2(),
        library::vliw4(),
    ];
    for width in 1..=4u32 {
        pums.push(library::custom_hw(&format!("hw{width}"), width, width));
    }
    let mut transparent_alu = library::custom_hw("transparent-alu", 2, 2);
    transparent_alu.execution.op_map.insert(
        OpClassKey::Alu,
        OpBinding { demand_stage: 0, commit_stage: 0, usage: vec![], transparent: true },
    );
    pums.push(transparent_alu);
    pums
}

const POLICIES: [SchedulingPolicy; 4] = [
    SchedulingPolicy::InOrder,
    SchedulingPolicy::Asap,
    SchedulingPolicy::Alap,
    SchedulingPolicy::List,
];

#[test]
fn production_kernel_is_bit_identical_to_reference() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut checked = 0usize;
    for round in 0..24 {
        let seed_before = rng.0;
        let block = random_block(&mut rng);
        let dfg = block_dfg(&block);
        for base in pums() {
            for policy in POLICIES {
                let mut pum = base.clone();
                pum.execution.policy = policy;
                let new = schedule_block(&pum, &block, &dfg, FuncId(0), BlockId(0));
                let reference = schedule_block_reference(&pum, &block, &dfg, FuncId(0), BlockId(0));
                assert_eq!(
                    new, reference,
                    "kernel divergence: round {round}, rng state {seed_before:#x}, \
                     pum {}, policy {policy:?}, block {block:?}",
                    pum.name
                );
                checked += 1;
            }
        }
    }
    // 24 rounds × 9 PUMs × 4 policies — a regression that only bites one
    // policy or one datapath shape still gets hundreds of shots at it.
    assert_eq!(checked, 24 * 9 * 4);
}

/// A block with its derived schedule inputs, owned so [`BatchItem`]s can
/// borrow from it.
struct PreparedBlock {
    block: BlockData,
    dfg: Dfg,
    key: Vec<u8>,
    heights: Vec<usize>,
}

fn prepare(block: BlockData) -> PreparedBlock {
    let dfg = block_dfg(&block);
    let key = schedule_key(&block, &dfg);
    let heights = dfg.heights();
    PreparedBlock { block, dfg, key, heights }
}

/// Checks one batch against the reference kernel, block by block, for
/// `pum` under every policy. `picks` selects which prepared block each
/// item carries (repeats exercise dedup fan-out). Items with identical
/// keys share a `BlockId` so a folded error is indistinguishable from a
/// per-block one.
fn assert_batch_matches_reference(base: &Pum, blocks: &[PreparedBlock], picks: &[usize]) {
    for policy in POLICIES {
        let mut pum = base.clone();
        pum.execution.policy = policy;
        let table = IssueTable::build(&pum);
        let items: Vec<BatchItem<'_>> = picks
            .iter()
            .map(|&b| {
                let rep = blocks.iter().position(|other| other.key == blocks[b].key).unwrap();
                BatchItem {
                    key: &blocks[b].key,
                    key_hash: key_hash(&blocks[b].key),
                    block: &blocks[b].block,
                    dfg: &blocks[b].dfg,
                    heights: &blocks[b].heights,
                    func: FuncId(0),
                    block_id: BlockId(rep as u32),
                }
            })
            .collect();
        let batched = schedule_batch(&table, &items);
        assert_eq!(batched.len(), items.len());
        for (item, got) in items.iter().zip(&batched) {
            let reference =
                schedule_block_reference(&pum, item.block, item.dfg, item.func, item.block_id);
            assert_eq!(
                got.as_deref(),
                reference.as_ref(),
                "batched kernel divergence: pum {}, policy {policy:?}, block {:?}",
                pum.name,
                item.block
            );
        }
    }
}

#[test]
fn batched_kernel_matches_reference_on_random_mixed_batches() {
    let mut rng = Rng(0x0123_4567_89ab_cdef);
    for _round in 0..6 {
        let blocks: Vec<PreparedBlock> = (0..24).map(|_| prepare(random_block(&mut rng))).collect();
        // Every third block is submitted twice, so the plan mixes lane
        // solves, scalar singletons and dedup fan-out in one batch.
        let mut picks: Vec<usize> = (0..blocks.len()).collect();
        picks.extend((0..blocks.len()).step_by(3));
        for base in pums() {
            assert_batch_matches_reference(&base, &blocks, &picks);
        }
    }
}

/// `count` blocks of six free-input binary ops — two ALU, two multiply,
/// two shift — in `count` distinct class orders. Same op count, op-class
/// histogram and (empty) edge structure, so they share a shape class, but
/// every canonical key is distinct: the planner must fill whole lane units
/// with them instead of folding. There are 6!/(2!·2!·2!) = 90 orders, so
/// `count` may exceed [`MAX_LANES`].
fn same_shape_distinct_blocks(count: usize) -> Vec<PreparedBlock> {
    assert!(count <= 90);
    let mut blocks = Vec::with_capacity(count);
    for code in 0..729u32 {
        let mut counts = [0u8; 3];
        let mut seq = [0u8; 6];
        let mut c = code;
        for slot in &mut seq {
            *slot = (c % 3) as u8;
            counts[*slot as usize] += 1;
            c /= 3;
        }
        if counts != [2, 2, 2] {
            continue;
        }
        let mut ops: Vec<Op> = seq
            .iter()
            .enumerate()
            .map(|(i, &class)| {
                let bin = match class {
                    0 => BinOp::Add,
                    1 => BinOp::Mul,
                    _ => BinOp::Shl,
                };
                Op {
                    kind: OpKind::Bin(bin),
                    args: vec![VReg(0), VReg(1)],
                    result: Some(VReg(16 + i as u32)),
                }
            })
            .collect();
        // One long-latency op keeps every block past LANE_MIN_DRAIN, so
        // the planner actually forms lane units out of these.
        ops.push(Op {
            kind: OpKind::Bin(BinOp::Div),
            args: vec![VReg(0), VReg(1)],
            result: Some(VReg(30)),
        });
        blocks.push(prepare(BlockData { ops, term: Terminator::Return(None) }));
        if blocks.len() == count {
            break;
        }
    }
    blocks
}

#[test]
fn lane_boundary_batches_match_reference() {
    // 1 lane (scalar fallback), one short of full, exactly full, one
    // over (forces a 64 + 1 chunk split) and a 64 + 16 split.
    let before = batch_stats();
    for count in [1, MAX_LANES - 1, MAX_LANES, MAX_LANES + 1, MAX_LANES + 16] {
        let blocks = same_shape_distinct_blocks(count);
        let picks: Vec<usize> = (0..count).collect();
        assert_batch_matches_reference(
            &library::microblaze_like(8 << 10, 4 << 10),
            &blocks,
            &picks,
        );
        assert_batch_matches_reference(&library::superscalar2(), &blocks, &picks);
    }
    let after = batch_stats();
    // The full-size and oversized batches must actually have produced
    // full 64-lane units (2 PUMs × 4 policies × 3 batch sizes with a full
    // unit), not quietly fallen back to smaller ones.
    assert!(
        after.occupancy[4] >= before.occupancy[4] + 24,
        "expected full-lane units: {before:?} -> {after:?}"
    );
}

#[test]
fn empty_block_fast_path_short_circuits() {
    let block = BlockData { ops: vec![], term: Terminator::Return(None) };
    let dfg = block_dfg(&block);
    for base in pums() {
        let r = schedule_block(&base, &block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
        assert_eq!(r.cycles, 0, "pum {}", base.name);
        assert_eq!(r.raw_cycles, 0, "pum {}", base.name);
        assert!(r.issue_cycle.is_empty() && r.finish_cycle.is_empty());
    }
}

#[test]
fn all_transparent_block_costs_nothing() {
    // Const and Copy are transparent on the custom-HW models: the whole
    // block must resolve without entering the pipeline at all.
    let block = BlockData {
        ops: vec![
            Op { kind: OpKind::Const(7), args: vec![], result: Some(VReg(16)) },
            Op { kind: OpKind::Copy, args: vec![VReg(16)], result: Some(VReg(17)) },
            Op { kind: OpKind::Copy, args: vec![VReg(17)], result: Some(VReg(18)) },
        ],
        term: Terminator::Return(Some(VReg(18))),
    };
    let dfg = block_dfg(&block);
    let pum = library::custom_hw("hw", 2, 2);
    let r = schedule_block(&pum, &block, &dfg, FuncId(0), BlockId(0)).expect("schedules");
    assert_eq!(r.cycles, 0);
    assert_eq!(r.raw_cycles, 0);
    assert!(r.issue_cycle.iter().all(Option::is_none), "transparent ops never issue");
    assert!(r.finish_cycle.iter().all(Option::is_none));
    let reference = schedule_block_reference(&pum, &block, &dfg, FuncId(0), BlockId(0));
    assert_eq!(Ok(r), reference);
}
