//! Per-PE execution engines of the board co-simulation.
//!
//! All engines share one protocol ([`Engine`]): run until a channel
//! operation, report *measured* elapsed cycles, resume after the
//! transaction. Three implementations exist:
//!
//! - [`MicroArchEngine`] — compiled code on the cycle-accurate in-order
//!   core with real caches and predictor (processors on the board);
//! - [`HwEngine`] — custom hardware as a scheduled-FSM sequencer: each
//!   basic block's exact Algorithm-1 schedule (which is exact for a
//!   non-pipelined, hardwired-control datapath) is walked cycle by cycle;
//! - [`CoarseIssEngine`] — the vendor-style ISS timing, used by
//!   [`crate::board::run_iss`] for the Table-2 baseline.

use std::sync::Arc;

use tlm_cdfg::dfg::block_dfg;
use tlm_cdfg::interp::{Exec, ExecHook, Machine};
use tlm_cdfg::ir::Module;
use tlm_cdfg::{BlockId, FuncId, OpClass};
use tlm_core::pum::MemoryPath;
use tlm_core::schedule::schedule_block;
use tlm_core::{EstimateError, Pum};
use tlm_iss::codegen::{build_program, CodegenError};
use tlm_iss::cpu::{Cpu, CpuExec};
use tlm_iss::microarch::{MicroArch, MicroArchConfig};
use tlm_iss::timing::{IssSim, IssTimingConfig};

/// Why an engine yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineExec {
    /// Finished.
    Done,
    /// Blocked on a channel receive.
    RecvPending(u32),
    /// Blocked on a channel send, carrying the value.
    SendPending(u32, i64),
    /// Died with an error.
    Trap(String),
    /// Fuel slice exhausted; run again to continue.
    OutOfFuel,
}

/// Measured micro-architectural counters of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineCounters {
    /// Instructions (or IR operations for HW engines) executed.
    pub instructions: u64,
    /// Instruction fetches and misses (processors only).
    pub ifetches: u64,
    /// I-cache misses.
    pub imisses: u64,
    /// Data accesses.
    pub daccesses: u64,
    /// D-cache misses.
    pub dmisses: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
}

/// The common engine protocol of the board co-simulation.
pub trait Engine {
    /// Runs up to `fuel` steps.
    fn run(&mut self, fuel: u64) -> EngineExec;
    /// Delivers a pending receive.
    fn complete_recv(&mut self, value: i64);
    /// Completes a pending send.
    fn complete_send(&mut self);
    /// Measured cycles elapsed so far.
    fn cycles(&self) -> u64;
    /// Observable outputs so far.
    fn outputs(&self) -> Vec<i64>;
    /// Measured counters so far.
    fn counters(&self) -> EngineCounters;
}

/// Errors constructing an engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Code generation for a processor PE failed.
    Codegen(CodegenError),
    /// Scheduling a HW block failed.
    Estimate(EstimateError),
    /// The PE kind is not supported by the requested engine (e.g. custom
    /// hardware under the vendor ISS, as in the paper).
    Unsupported {
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Codegen(e) => write!(f, "{e}"),
            EngineError::Estimate(e) => write!(f, "{e}"),
            EngineError::Unsupported { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Derives a cycle-accurate core configuration from a processor PUM, so the
/// board agrees with the model's documented latencies.
pub fn microarch_config_from_pum(pum: &Pum) -> MicroArchConfig {
    let cache_size = |path: &MemoryPath| match path {
        MemoryPath::Cached(c) => c.size,
        _ => 0,
    };
    let fu_delay = |class: OpClass, default: u64| -> u64 {
        pum.binding(class)
            .ok()
            .and_then(|b| b.usage.first())
            .map(|u| u64::from(pum.datapath.units[u.fu].modes[u.mode].delay))
            .unwrap_or(default)
    };
    let mut config = MicroArchConfig::microblaze_like(
        cache_size(&pum.memory.ifetch),
        cache_size(&pum.memory.data),
    );
    config.miss_penalty = pum.memory.external_latency;
    config.branch_penalty = pum.branch.as_ref().map_or(0, |b| b.penalty);
    config.mul_latency = fu_delay(OpClass::Mul, 3);
    config.div_latency = fu_delay(OpClass::Div, 32);
    // Multiple PUM pipelines model superscalar issue (§4.1); mirror that in
    // the cycle-accurate front end.
    config.issue_width = pum.datapath.pipelines.len().max(1) as u32;
    config
}

/// Whether a PUM describes custom hardware (hardwired control, no fetch).
pub fn is_custom_hw(pum: &Pum) -> bool {
    matches!(pum.memory.ifetch, MemoryPath::Hardwired)
}

/// Processor engine: compiled code on the cycle-accurate core.
#[derive(Debug)]
pub struct MicroArchEngine {
    core: MicroArch,
}

impl MicroArchEngine {
    /// Compiles the module and builds the core per the PUM.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Codegen`] if compilation fails.
    pub fn build(
        module: &Module,
        entry: FuncId,
        args: &[i64],
        pum: &Pum,
    ) -> Result<MicroArchEngine, EngineError> {
        let program = Arc::new(build_program(module, entry, args).map_err(EngineError::Codegen)?);
        Ok(MicroArchEngine { core: MicroArch::new(program, microarch_config_from_pum(pum)) })
    }
}

impl Engine for MicroArchEngine {
    fn run(&mut self, fuel: u64) -> EngineExec {
        convert_cpu_exec(self.core.run(fuel))
    }

    fn complete_recv(&mut self, value: i64) {
        self.core.complete_recv(value as i32);
    }

    fn complete_send(&mut self) {
        self.core.complete_send();
    }

    fn cycles(&self) -> u64 {
        self.core.cycles()
    }

    fn outputs(&self) -> Vec<i64> {
        self.core.cpu().outputs().to_vec()
    }

    fn counters(&self) -> EngineCounters {
        let ic = self.core.icache_stats();
        let dc = self.core.dcache_stats();
        let bp = self.core.predictor_stats();
        EngineCounters {
            instructions: self.core.cpu().stats().instructions,
            ifetches: ic.accesses,
            imisses: ic.misses,
            daccesses: dc.accesses,
            dmisses: dc.misses,
            branches: bp.branches,
            mispredicts: bp.mispredicts,
        }
    }
}

/// Vendor-style ISS engine: same compiled code, coarse timing.
#[derive(Debug)]
pub struct CoarseIssEngine {
    sim: IssSim,
}

impl CoarseIssEngine {
    /// Compiles the module and wraps it in the coarse timing model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Codegen`] if compilation fails.
    pub fn build(
        module: &Module,
        entry: FuncId,
        args: &[i64],
        pum: &Pum,
    ) -> Result<CoarseIssEngine, EngineError> {
        let program = Arc::new(build_program(module, entry, args).map_err(EngineError::Codegen)?);
        let cache_size = |path: &MemoryPath| match path {
            MemoryPath::Cached(c) => c.size,
            _ => 0,
        };
        let config = IssTimingConfig::for_caches(
            cache_size(&pum.memory.ifetch),
            cache_size(&pum.memory.data),
        );
        Ok(CoarseIssEngine { sim: IssSim::new(Cpu::new(program), config) })
    }
}

impl Engine for CoarseIssEngine {
    fn run(&mut self, fuel: u64) -> EngineExec {
        convert_cpu_exec(self.sim.run(fuel))
    }

    fn complete_recv(&mut self, value: i64) {
        self.sim.complete_recv(value as i32);
    }

    fn complete_send(&mut self) {
        self.sim.complete_send();
    }

    fn cycles(&self) -> u64 {
        self.sim.cycles()
    }

    fn outputs(&self) -> Vec<i64> {
        self.sim.cpu().outputs().to_vec()
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            instructions: self.sim.cpu().stats().instructions,
            ..EngineCounters::default()
        }
    }
}

fn convert_cpu_exec(exec: CpuExec) -> EngineExec {
    match exec {
        CpuExec::Done => EngineExec::Done,
        CpuExec::RecvPending(ch) => EngineExec::RecvPending(ch),
        CpuExec::SendPending(ch, v) => EngineExec::SendPending(ch, i64::from(v)),
        CpuExec::Trap(t) => EngineExec::Trap(t.to_string()),
        CpuExec::OutOfFuel => EngineExec::OutOfFuel,
    }
}

/// One basic block's exact sequencer schedule.
#[derive(Debug, Clone)]
struct BlockSchedule {
    cycles: u64,
    /// Issue cycles of the block's ops, ascending (the sequencer's control
    /// events).
    issue_events: Vec<u64>,
}

/// Custom-hardware engine: the CDFG executed functionally, timed by walking
/// the exact per-block schedule cycle by cycle like the synthesized
/// controller's FSM would.
pub struct HwEngine {
    machine: Machine,
    schedules: Arc<Vec<Vec<BlockSchedule>>>,
    cycles: u64,
    ops_issued: u64,
}

impl HwEngine {
    /// Precomputes every block's schedule under the (non-pipelined) HW PUM
    /// and readies the machine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Estimate`] if some block cannot be scheduled,
    /// or [`EngineError::Unsupported`] if the PUM is not custom hardware
    /// (pipelined CPUs must use [`MicroArchEngine`] — Algorithm 1 is exact
    /// only for hardwired single-stage datapaths).
    pub fn build(
        module: &Module,
        entry: FuncId,
        args: &[i64],
        pum: &Pum,
    ) -> Result<HwEngine, EngineError> {
        if !is_custom_hw(pum) {
            return Err(EngineError::Unsupported {
                message: format!("PUM `{}` is not custom hardware", pum.name),
            });
        }
        let mut schedules = Vec::with_capacity(module.functions.len());
        for (fid, func) in module.functions_iter() {
            let mut per_block = Vec::with_capacity(func.blocks.len());
            for (bid, block) in func.blocks_iter() {
                let dfg = block_dfg(block);
                let result =
                    schedule_block(pum, block, &dfg, fid, bid).map_err(EngineError::Estimate)?;
                let mut issue_events: Vec<u64> =
                    result.issue_cycle.iter().flatten().copied().collect();
                issue_events.sort_unstable();
                per_block.push(BlockSchedule { cycles: result.cycles, issue_events });
            }
            schedules.push(per_block);
        }
        Ok(HwEngine {
            machine: Machine::new(module, entry, args),
            schedules: Arc::new(schedules),
            cycles: 0,
            ops_issued: 0,
        })
    }
}

/// Sequencer hook: on block entry, step the controller FSM through the
/// block's schedule.
struct SequencerHook<'a> {
    schedules: &'a [Vec<BlockSchedule>],
    cycles: &'a mut u64,
    ops_issued: &'a mut u64,
}

impl ExecHook for SequencerHook<'_> {
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        let sched = &self.schedules[func.0 as usize][block.0 as usize];
        // Walk the FSM: one state per datapath cycle, consuming issue
        // events as they fire. (This per-cycle walk is what makes PCAM
        // simulation slow, faithfully.)
        let mut next_event = 0usize;
        for cycle in 0..sched.cycles {
            while next_event < sched.issue_events.len() && sched.issue_events[next_event] == cycle {
                next_event += 1;
                *self.ops_issued += 1;
            }
        }
        *self.cycles += sched.cycles;
    }
}

impl Engine for HwEngine {
    fn run(&mut self, fuel: u64) -> EngineExec {
        let schedules = self.schedules.clone();
        let mut hook = SequencerHook {
            schedules: &schedules,
            cycles: &mut self.cycles,
            ops_issued: &mut self.ops_issued,
        };
        match self.machine.run_fuel(&mut hook, fuel) {
            Exec::Done => EngineExec::Done,
            Exec::RecvPending(ch) => EngineExec::RecvPending(ch.0),
            Exec::SendPending(ch, v) => EngineExec::SendPending(ch.0, v),
            Exec::Trap(t) => EngineExec::Trap(t.to_string()),
            Exec::OutOfFuel => EngineExec::OutOfFuel,
        }
    }

    fn complete_recv(&mut self, value: i64) {
        self.cycles += 1; // handshake register transfer
        self.machine.complete_recv(value);
    }

    fn complete_send(&mut self) {
        self.cycles += 1;
        self.machine.complete_send();
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn outputs(&self) -> Vec<i64> {
        self.machine.outputs().to_vec()
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters { instructions: self.machine.stats().ops, ..EngineCounters::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_core::library;

    fn module(src: &str) -> Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    const KERNEL: &str = "int t[32];
        void main() {
            for (int i = 0; i < 32; i++) { t[i] = i * i; }
            int s = 0;
            for (int i = 0; i < 32; i++) { s += t[i]; }
            out(s);
        }";

    #[test]
    fn all_engines_agree_functionally() {
        let m = module(KERNEL);
        let entry = m.function_id("main").expect("main");
        let cpu_pum = library::microblaze_like(8 << 10, 4 << 10);
        let hw_pum = library::custom_hw("hw", 2, 2);

        let mut board = MicroArchEngine::build(&m, entry, &[], &cpu_pum).expect("builds");
        let mut iss = CoarseIssEngine::build(&m, entry, &[], &cpu_pum).expect("builds");
        let mut hw = HwEngine::build(&m, entry, &[], &hw_pum).expect("builds");
        assert_eq!(board.run(u64::MAX), EngineExec::Done);
        assert_eq!(iss.run(u64::MAX), EngineExec::Done);
        assert_eq!(hw.run(u64::MAX), EngineExec::Done);
        let expect: i64 = (0..32).map(|i| i * i).sum();
        assert_eq!(board.outputs(), vec![expect]);
        assert_eq!(iss.outputs(), vec![expect]);
        assert_eq!(hw.outputs(), vec![expect]);
    }

    #[test]
    fn hw_engine_is_faster_in_cycles_than_the_cpu() {
        let m = module(KERNEL);
        let entry = m.function_id("main").expect("main");
        let mut cpu =
            MicroArchEngine::build(&m, entry, &[], &library::microblaze_like(8 << 10, 4 << 10))
                .expect("builds");
        let mut hw =
            HwEngine::build(&m, entry, &[], &library::custom_hw("hw", 2, 2)).expect("builds");
        cpu.run(u64::MAX);
        hw.run(u64::MAX);
        assert!(hw.cycles() * 2 < cpu.cycles(), "hw {} vs cpu {}", hw.cycles(), cpu.cycles());
    }

    #[test]
    fn hw_engine_rejects_cpu_pums() {
        let m = module(KERNEL);
        let entry = m.function_id("main").expect("main");
        let Err(err) = HwEngine::build(&m, entry, &[], &library::microblaze_like(0, 0)) else {
            panic!("CPU PUM is not custom HW");
        };
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn microarch_config_derivation() {
        let pum = library::microblaze_like(16 << 10, 2 << 10);
        let config = microarch_config_from_pum(&pum);
        assert_eq!(config.icache.size_bytes, 16 << 10);
        assert_eq!(config.dcache.size_bytes, 2 << 10);
        assert_eq!(config.mul_latency, 3);
        assert_eq!(config.div_latency, 32);
        assert_eq!(config.branch_penalty, 2);
        assert_eq!(config.miss_penalty, library::EXTERNAL_LATENCY);
    }

    #[test]
    fn counters_flow_through() {
        let m = module(KERNEL);
        let entry = m.function_id("main").expect("main");
        let mut engine =
            MicroArchEngine::build(&m, entry, &[], &library::microblaze_like(2 << 10, 2 << 10))
                .expect("builds");
        engine.run(u64::MAX);
        let c = engine.counters();
        assert!(c.instructions > 0);
        assert!(c.ifetches >= c.instructions);
        assert!(c.branches > 0);
        assert!(c.daccesses >= 64, "64 array accesses at least");
    }

    #[test]
    fn channel_protocol_round_trip_on_hw() {
        let m = module("void main() { int v = ch_recv(0); ch_send(1, v + 5); }");
        let entry = m.function_id("main").expect("main");
        let mut hw =
            HwEngine::build(&m, entry, &[], &library::custom_hw("hw", 1, 1)).expect("builds");
        assert_eq!(hw.run(u64::MAX), EngineExec::RecvPending(0));
        hw.complete_recv(10);
        assert_eq!(hw.run(u64::MAX), EngineExec::SendPending(1, 15));
        hw.complete_send();
        assert_eq!(hw.run(u64::MAX), EngineExec::Done);
        assert!(hw.cycles() > 0);
    }
}
