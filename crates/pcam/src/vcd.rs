//! A minimal VCD (Value Change Dump, IEEE 1364 §18) writer for the RTL
//! layer, so waveforms from [`crate::rtl`] simulations open in GTKWave and
//! friends — the artifact an RTL engineer expects from a PCAM run.

use std::fmt::Write as _;

use crate::rtl::{Rtl, Sim, Wire};

/// Records selected wires every cycle and renders a VCD document.
#[derive(Debug)]
pub struct VcdRecorder {
    wires: Vec<(Wire, String)>,
    /// Last emitted value per wire (change detection).
    last: Vec<Option<u32>>,
    /// Collected `(cycle, wire index, value)` changes.
    changes: Vec<(u64, usize, u32)>,
    /// Cycles sampled so far.
    sampled: u64,
}

impl VcdRecorder {
    /// Starts a recorder over the given wires (names are taken from the
    /// netlist).
    pub fn new(rtl: &Rtl, wires: &[Wire]) -> VcdRecorder {
        VcdRecorder {
            wires: wires.iter().map(|&w| (w, rtl.name(w).to_string())).collect(),
            last: vec![None; wires.len()],
            changes: Vec::new(),
            sampled: 0,
        }
    }

    /// Samples the current wire values at `cycle` (call once per cycle,
    /// after [`Sim::step`]).
    pub fn sample(&mut self, rtl: &Rtl, cycle: u64) {
        for (i, &(wire, _)) in self.wires.iter().enumerate() {
            let value = rtl.get(wire);
            if self.last[i] != Some(value) {
                self.last[i] = Some(value);
                self.changes.push((cycle, i, value));
            }
        }
        self.sampled += 1;
    }

    /// Number of value changes recorded.
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Renders the VCD document (timescale: one cycle = 1 ns).
    pub fn render(&self, top: &str) -> String {
        let mut out = String::new();
        out.push_str("$date reproduction run $end\n");
        out.push_str("$version tlm-pcam rtl $end\n");
        out.push_str("$timescale 1ns $end\n");
        let _ = writeln!(out, "$scope module {top} $end");
        for (i, (_, name)) in self.wires.iter().enumerate() {
            let _ = writeln!(out, "$var wire 32 {} {} [31:0] $end", ident(i), sanitize(name));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut current = u64::MAX;
        for &(cycle, wire, value) in &self.changes {
            if cycle != current {
                let _ = writeln!(out, "#{cycle}");
                current = cycle;
            }
            let _ = writeln!(out, "b{value:b} {}", ident(wire));
        }
        let _ = writeln!(out, "#{}", self.sampled);
        out
    }
}

/// Short printable-ASCII identifier codes, VCD style.
fn ident(mut index: usize) -> String {
    let mut out = String::new();
    loop {
        out.push(char::from(b'!' + (index % 94) as u8));
        index /= 94;
        if index == 0 {
            return out;
        }
        index -= 1;
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_graphic() { c } else { '_' }).collect()
}

/// Convenience: runs `sim` for `cycles` steps while recording `wires`, and
/// returns the VCD text.
pub fn capture(sim: &mut Sim, wires: &[Wire], cycles: u64, top: &str) -> String {
    let mut rec = VcdRecorder::new(&sim.rtl, wires);
    for cycle in 0..cycles {
        sim.step();
        rec.sample(&sim.rtl, cycle);
    }
    rec.render(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{Counter, Rtl, Sim};

    #[test]
    fn counter_waveform_has_header_and_changes() {
        let mut rtl = Rtl::new();
        let counter = Counter::new(&mut rtl);
        let out = counter.out;
        let mut sim = Sim::new(rtl);
        sim.add(counter);
        let vcd = capture(&mut sim, &[out], 8, "tb");
        for needle in [
            "$timescale 1ns $end",
            "$scope module tb $end",
            "$var wire 32 ! count [31:0] $end",
            "$enddefinitions $end",
            "#0",
            "b0 !",
            "b111 !",
        ] {
            assert!(vcd.contains(needle), "missing `{needle}` in:\n{vcd}");
        }
    }

    #[test]
    fn only_changes_are_recorded() {
        let mut rtl = Rtl::new();
        let constant = rtl.wire("steady");
        rtl.set(constant, 7);
        let mut sim = Sim::new(rtl);
        let mut rec = VcdRecorder::new(&sim.rtl, &[constant]);
        for cycle in 0..100 {
            sim.step();
            rec.sample(&sim.rtl, cycle);
        }
        assert_eq!(rec.change_count(), 1, "initial value only");
    }

    #[test]
    fn ident_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = ident(i);
            assert!(id.chars().all(|c| c.is_ascii_graphic()));
            assert!(seen.insert(id), "collision at {i}");
        }
    }

    #[test]
    fn dct_engine_waveform_captures_the_handshake() {
        use crate::rtl_dct::DctEngine;
        let mut rtl = Rtl::new();
        let engine = DctEngine::new(&mut rtl);
        let start = engine.start;
        let valid = engine.out_valid;
        let done = engine.done;
        let x0 = engine.x_in[0];
        let mut sim = Sim::new(rtl);
        sim.add(engine);
        sim.rtl.set(x0, 50);
        sim.rtl.set(start, 1);
        let mut rec = VcdRecorder::new(&sim.rtl, &[start, valid, done]);
        for cycle in 0..80 {
            if cycle == 1 {
                sim.rtl.set(start, 0);
            }
            sim.step();
            rec.sample(&sim.rtl, cycle);
        }
        let vcd = rec.render("dct");
        // start toggles, out_valid pulses 8 times, done rises once:
        // plenty of changes.
        assert!(rec.change_count() >= 10, "{}", rec.change_count());
        assert!(vcd.contains("$scope module dct $end"));
    }
}
