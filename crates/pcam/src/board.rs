//! Full-platform cycle-accurate co-simulation: the board model.
//!
//! Structure mirrors the timed TLM (`tlm-platform`): every process runs on
//! the `tlm-desim` kernel and synchronizes at transaction boundaries. The
//! difference is fidelity — between boundaries each process executes on a
//! cycle-accurate engine ([`crate::engine`]), so the cycles applied to PE
//! clocks are *measured*, not estimated. Bus transfers reserve the bus
//! exactly as the RTL arbiter serializes them (validated in
//! [`crate::rtl`]'s tests).
//!
//! [`run_board`] is the ground truth of Tables 2/3; [`run_iss`] swaps in
//! the coarse vendor-ISS timing and, like the paper, refuses designs with
//! custom hardware ("fast cycle accurate C models were unavailable for
//! custom HW components").

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::time::{Duration, Instant};

use tlm_cdfg::ChanId;
use tlm_desim::{Ctx, Fifo, Kernel, Process, Resume, RunReport, SimTime};
use tlm_platform::clock::{BusClock, PeClock, SharedBus, SharedPe};
use tlm_platform::desc::Platform;

use crate::engine::{
    is_custom_hw, CoarseIssEngine, Engine, EngineCounters, EngineError, EngineExec, HwEngine,
    MicroArchEngine,
};

/// Board/ISS run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardConfig {
    /// Simulated-time limit; `None` runs to completion.
    pub time_limit: Option<SimTime>,
    /// Engine steps per kernel resumption.
    pub fuel_slice: u64,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig { time_limit: None, fuel_slice: 4_000_000 }
    }
}

/// Per-process result of a board run.
#[derive(Debug, Clone, Default)]
pub struct BoardProcessReport {
    /// Observable outputs.
    pub outputs: Vec<i64>,
    /// Measured compute cycles applied for this process.
    pub cycles: u64,
    /// Measured counters.
    pub counters: EngineCounters,
    /// Whether the process completed.
    pub finished: bool,
    /// Trap message, if any.
    pub trap: Option<String>,
}

/// Result of a board or ISS run.
#[derive(Debug, Clone)]
pub struct BoardReport {
    /// Final simulated time.
    pub end_time: SimTime,
    /// Kernel statistics.
    pub sim: RunReport,
    /// Outputs per process.
    pub outputs: BTreeMap<String, Vec<i64>>,
    /// Per-process details.
    pub processes: BTreeMap<String, BoardProcessReport>,
    /// Per-PE `(name, measured busy cycles)`.
    pub pe_cycles: Vec<(String, u64)>,
    /// Per-PE aggregated counters (summed over its processes).
    pub pe_counters: Vec<(String, EngineCounters)>,
    /// Wall-clock cost of the simulation.
    pub wall: Duration,
}

impl BoardReport {
    /// Total measured cycles across all PEs — the headline number compared
    /// against the TLM estimate in Tables 2/3.
    pub fn total_cycles(&self) -> u64 {
        self.pe_cycles.iter().map(|&(_, c)| c).sum()
    }

    /// Whether every process finished.
    pub fn all_finished(&self) -> bool {
        self.processes.values().all(|p| p.finished)
    }
}

/// Which engine family a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    CycleAccurate,
    CoarseIss,
}

/// Runs the cycle-accurate board model.
///
/// # Errors
///
/// Propagates engine construction failures (code generation, scheduling).
pub fn run_board(platform: &Platform, config: &BoardConfig) -> Result<BoardReport, EngineError> {
    run_with(platform, config, EngineKind::CycleAccurate)
}

/// Runs the coarse vendor-style ISS model.
///
/// # Errors
///
/// Fails with [`EngineError::Unsupported`] if the platform contains custom
/// hardware (no ISS models exist for it, as in the paper), and propagates
/// engine construction failures.
pub fn run_iss(platform: &Platform, config: &BoardConfig) -> Result<BoardReport, EngineError> {
    run_with(platform, config, EngineKind::CoarseIss)
}

fn run_with(
    platform: &Platform,
    config: &BoardConfig,
    kind: EngineKind,
) -> Result<BoardReport, EngineError> {
    let mut kernel = Kernel::new();
    let pe_clocks: Vec<SharedPe> = platform
        .pes
        .iter()
        .map(|pe| PeClock::new(SimTime::from_ps(pe.pum.clock_period_ps), pe.rtos))
        .collect();
    let bus_clocks: Vec<SharedBus> = platform
        .buses
        .iter()
        .map(|bus| BusClock::new(bus.period, bus.sync_overhead, bus.cycles_per_word))
        .collect();

    let mut fifos: HashMap<ChanId, Fifo<i64>> = HashMap::new();
    for (&chan, binding) in &platform.channels {
        fifos.insert(chan, Fifo::new(&mut kernel, format!("{chan}"), Some(binding.capacity)));
    }

    let mut outcomes = Vec::new();
    for (index, proc) in platform.processes.iter().enumerate() {
        let pum = &platform.pes[proc.pe.0].pum;
        let engine: Box<dyn Engine> = match (kind, is_custom_hw(pum)) {
            (EngineKind::CycleAccurate, false) => {
                Box::new(MicroArchEngine::build(&proc.module, proc.entry, &proc.args, pum)?)
            }
            (EngineKind::CycleAccurate, true) => {
                Box::new(HwEngine::build(&proc.module, proc.entry, &proc.args, pum)?)
            }
            (EngineKind::CoarseIss, false) => {
                Box::new(CoarseIssEngine::build(&proc.module, proc.entry, &proc.args, pum)?)
            }
            (EngineKind::CoarseIss, true) => {
                return Err(EngineError::Unsupported {
                    message: format!(
                        "no ISS model exists for custom HW PE `{}` (design `{}`)",
                        platform.pes[proc.pe.0].name, platform.name
                    ),
                })
            }
        };
        let outcome = Rc::new(RefCell::new(BoardProcessReport::default()));
        outcomes.push(outcome.clone());
        let chans: HashMap<u32, BoardChan> = platform
            .channels
            .iter()
            .map(|(&chan, binding)| {
                (
                    chan.0,
                    BoardChan {
                        fifo: fifos[&chan].clone(),
                        bus: binding.bus.map(|b| bus_clocks[b.0].clone()),
                    },
                )
            })
            .collect();
        kernel.spawn(
            proc.name.clone(),
            BoardProcess {
                index,
                engine,
                applied: 0,
                pe: pe_clocks[proc.pe.0].clone(),
                chans,
                fuel_slice: config.fuel_slice.max(1),
                phase: Phase::Run,
                outcome,
            },
        );
    }

    let wall_start = Instant::now();
    let sim = match config.time_limit {
        Some(limit) => kernel.run_until(limit),
        None => kernel.run(),
    };
    let wall = wall_start.elapsed();

    let mut outputs = BTreeMap::new();
    let mut processes = BTreeMap::new();
    let mut pe_counter_acc: Vec<EngineCounters> =
        vec![EngineCounters::default(); platform.pes.len()];
    for (proc, outcome) in platform.processes.iter().zip(&outcomes) {
        let report = outcome.borrow().clone();
        let acc = &mut pe_counter_acc[proc.pe.0];
        let c = report.counters;
        acc.instructions += c.instructions;
        acc.ifetches += c.ifetches;
        acc.imisses += c.imisses;
        acc.daccesses += c.daccesses;
        acc.dmisses += c.dmisses;
        acc.branches += c.branches;
        acc.mispredicts += c.mispredicts;
        outputs.insert(proc.name.clone(), report.outputs.clone());
        processes.insert(proc.name.clone(), report);
    }
    let pe_cycles = platform
        .pes
        .iter()
        .zip(&pe_clocks)
        .map(|(pe, clock)| (pe.name.clone(), clock.borrow().busy_cycles()))
        .collect();
    let pe_counters =
        platform.pes.iter().zip(pe_counter_acc).map(|(pe, acc)| (pe.name.clone(), acc)).collect();

    Ok(BoardReport {
        end_time: kernel.time(),
        sim,
        outputs,
        processes,
        pe_cycles,
        pe_counters,
        wall,
    })
}

struct BoardChan {
    fifo: Fifo<i64>,
    bus: Option<SharedBus>,
}

#[derive(Debug, Clone, Copy)]
enum After {
    Recv(u32),
    Send(u32, i64),
    Finish,
}

enum Phase {
    Run,
    Wait { until: SimTime, after: After },
    BlockedRecv(u32),
    BlockedSend(u32, i64),
    Done,
}

struct BoardProcess {
    index: usize,
    engine: Box<dyn Engine>,
    /// Engine cycles already applied to the PE clock.
    applied: u64,
    pe: SharedPe,
    chans: HashMap<u32, BoardChan>,
    fuel_slice: u64,
    phase: Phase,
    outcome: Rc<RefCell<BoardProcessReport>>,
}

impl BoardProcess {
    /// Applies measured elapsed cycles to the PE and any transfer cost to
    /// the bus; returns when the transaction may proceed.
    fn boundary(&mut self, now: SimTime, transfer: Option<u32>) -> SimTime {
        let elapsed = self.engine.cycles() - self.applied;
        let mut at = now;
        if elapsed > 0 {
            at = self.pe.borrow_mut().reserve(at, self.index, elapsed);
            self.applied = self.engine.cycles();
            self.outcome.borrow_mut().cycles += elapsed;
        }
        if let Some(chan) = transfer {
            let handle = &self.chans[&chan];
            at = match &handle.bus {
                Some(bus) => bus.borrow_mut().reserve(at, 1),
                None => self.pe.borrow_mut().reserve(at, self.index, Platform::LOCAL_SYNC_CYCLES),
            };
        }
        at
    }

    fn finish(&mut self, trap: Option<String>) {
        let mut outcome = self.outcome.borrow_mut();
        outcome.outputs = self.engine.outputs();
        outcome.counters = self.engine.counters();
        outcome.finished = trap.is_none();
        outcome.trap = trap;
        self.phase = Phase::Done;
    }
}

impl Process for BoardProcess {
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Resume {
        loop {
            match self.phase {
                Phase::Done => return Resume::Finish,
                Phase::Wait { until, after } => {
                    let now = ctx.time();
                    if now < until {
                        return Resume::WaitTime(until - now);
                    }
                    self.phase = match after {
                        After::Recv(ch) => Phase::BlockedRecv(ch),
                        After::Send(ch, v) => Phase::BlockedSend(ch, v),
                        After::Finish => {
                            self.finish(None);
                            continue;
                        }
                    };
                }
                Phase::BlockedRecv(ch) => {
                    let fifo = self.chans[&ch].fifo.clone();
                    match fifo.try_recv(ctx) {
                        Some(v) => {
                            self.engine.complete_recv(v);
                            self.phase = Phase::Run;
                        }
                        None => return Resume::WaitEvent(fifo.readable_event()),
                    }
                }
                Phase::BlockedSend(ch, v) => {
                    let fifo = self.chans[&ch].fifo.clone();
                    match fifo.try_send(ctx, v) {
                        Ok(()) => {
                            self.engine.complete_send();
                            self.phase = Phase::Run;
                        }
                        Err(_) => return Resume::WaitEvent(fifo.writable_event()),
                    }
                }
                Phase::Run => {
                    let exec = self.engine.run(self.fuel_slice);
                    let now = ctx.time();
                    match exec {
                        EngineExec::Done => {
                            let until = self.boundary(now, None);
                            if until > now {
                                self.phase = Phase::Wait { until, after: After::Finish };
                            } else {
                                self.finish(None);
                            }
                        }
                        EngineExec::RecvPending(ch) => {
                            let until = self.boundary(now, None);
                            self.phase = if until > now {
                                Phase::Wait { until, after: After::Recv(ch) }
                            } else {
                                Phase::BlockedRecv(ch)
                            };
                        }
                        EngineExec::SendPending(ch, v) => {
                            let until = self.boundary(now, Some(ch));
                            self.phase = if until > now {
                                Phase::Wait { until, after: After::Send(ch, v) }
                            } else {
                                Phase::BlockedSend(ch, v)
                            };
                        }
                        EngineExec::Trap(t) => self.finish(Some(t)),
                        EngineExec::OutOfFuel => return Resume::WaitTime(SimTime::ZERO),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_core::library;
    use tlm_platform::desc::PlatformBuilder;
    use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

    fn module(src: &str) -> tlm_cdfg::ir::Module {
        tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers")
    }

    fn two_pe_platform() -> Platform {
        let producer = module(
            "void main() {
                for (int i = 0; i < 24; i++) { ch_send(0, i * 5 - 7); }
             }",
        );
        let filter = module(
            "void main() {
                for (int i = 0; i < 24; i++) {
                    int v = ch_recv(0);
                    int acc = 0;
                    for (int k = 0; k < 8; k++) { acc += (v + k) * (v - k); }
                    ch_send(1, acc >> 3);
                }
             }",
        );
        let sink = module(
            "void main() {
                int s = 0;
                for (int i = 0; i < 24; i++) { s += ch_recv(1); }
                out(s);
             }",
        );
        let mut b = PlatformBuilder::new("two-pe");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        let hw = b.add_pe("hw", library::custom_hw("filter_hw", 2, 2));
        b.add_process("producer", &producer, "main", &[], cpu).expect("ok");
        b.add_process("filter", &filter, "main", &[], hw).expect("ok");
        b.add_process("sink", &sink, "main", &[], cpu).expect("ok");
        b.build().expect("builds")
    }

    #[test]
    fn board_and_tlm_agree_functionally() {
        let p = two_pe_platform();
        let board = run_board(&p, &BoardConfig::default()).expect("board runs");
        let tlm = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("tlm runs");
        assert!(board.all_finished());
        assert_eq!(board.outputs["sink"], tlm.outputs["sink"]);
    }

    #[test]
    fn tlm_estimate_is_within_a_factor_of_the_board() {
        // The headline accuracy claim, coarse version: the cycle estimate
        // tracks the measurement within a small factor even before
        // characterization (Tables 2/3 tighten this with measured rates).
        let p = two_pe_platform();
        let board = run_board(&p, &BoardConfig::default()).expect("board runs");
        let tlm = run_tlm(&p, TlmMode::Timed, &TlmConfig::default()).expect("tlm runs");
        let measured = board.total_cycles() as f64;
        let estimated: f64 = tlm.pe_busy.iter().map(|&(_, c)| c).sum::<u64>() as f64;
        assert!(measured > 0.0 && estimated > 0.0);
        let ratio = estimated / measured;
        assert!(
            (0.4..2.5).contains(&ratio),
            "estimate {estimated} vs measured {measured} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn board_is_deterministic() {
        let p = two_pe_platform();
        let a = run_board(&p, &BoardConfig::default()).expect("runs");
        let b = run_board(&p, &BoardConfig::default()).expect("runs");
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.pe_cycles, b.pe_cycles);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn iss_refuses_custom_hardware() {
        let p = two_pe_platform();
        let err = run_iss(&p, &BoardConfig::default()).expect_err("HW present");
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn iss_runs_software_only_designs() {
        let producer = module("void main() { for (int i = 0; i < 8; i++) { ch_send(0, i); } }");
        let sink = module(
            "void main() { int s = 0; for (int i = 0; i < 8; i++) { s += ch_recv(0); } out(s); }",
        );
        let mut b = PlatformBuilder::new("sw-only");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        b.add_process("producer", &producer, "main", &[], cpu).expect("ok");
        b.add_process("sink", &sink, "main", &[], cpu).expect("ok");
        let p = b.build().expect("builds");
        let iss = run_iss(&p, &BoardConfig::default()).expect("runs");
        let board = run_board(&p, &BoardConfig::default()).expect("runs");
        assert_eq!(iss.outputs["sink"], vec![28]);
        assert_eq!(iss.outputs, board.outputs);
        // Both produce nonzero but different cycle counts (different
        // timing fidelity).
        assert!(iss.total_cycles() > 0);
        assert!(board.total_cycles() > 0);
        assert_ne!(iss.total_cycles(), board.total_cycles());
    }

    #[test]
    fn measured_counters_are_aggregated_per_pe() {
        let p = two_pe_platform();
        let board = run_board(&p, &BoardConfig::default()).expect("runs");
        let cpu =
            board.pe_counters.iter().find(|(n, _)| n == "cpu").map(|(_, c)| *c).expect("cpu PE");
        assert!(cpu.ifetches > 0);
        assert!(cpu.branches > 0);
        let hw = board.pe_counters.iter().find(|(n, _)| n == "hw").map(|(_, c)| *c).expect("hw PE");
        assert_eq!(hw.ifetches, 0, "hardwired control fetches nothing");
    }

    #[test]
    fn time_limit_is_honoured() {
        let spin = module("void main() { while (1) { ch_send(0, 1); } }");
        let sink = module("void main() { while (1) { int v = ch_recv(0); out(v); } }");
        let mut b = PlatformBuilder::new("spin");
        let cpu = b.add_pe("cpu", library::microblaze_like(8 << 10, 4 << 10));
        let hw = b.add_pe("hw", library::custom_hw("hw", 1, 1));
        b.add_process("spin", &spin, "main", &[], cpu).expect("ok");
        b.add_process("sink", &sink, "main", &[], hw).expect("ok");
        let p = b.build().expect("builds");
        let r = run_board(
            &p,
            &BoardConfig { time_limit: Some(SimTime::from_us(50)), ..Default::default() },
        )
        .expect("runs");
        assert_eq!(r.sim.stop, tlm_desim::StopReason::TimeLimit);
    }
}
