//! A small cycle-based structural RTL layer.
//!
//! Components own registers; wires carry 32-bit values between them. Each
//! simulated cycle evaluates combinational logic to a fixpoint (bounded,
//! so combinational loops are detected instead of hanging) and then clocks
//! every component's registers — the classic two-phase cycle-based RTL
//! evaluation model.
//!
//! The PCAM uses it for the bus arbiter; unit tests validate that the
//! transaction-grain bus reservations used by the board co-simulation agree
//! with this arbiter cycle for cycle.

/// Handle to a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire(usize);

/// The wire store.
#[derive(Debug, Default)]
pub struct Rtl {
    values: Vec<u32>,
    names: Vec<String>,
}

impl Rtl {
    /// Creates an empty netlist.
    pub fn new() -> Rtl {
        Rtl::default()
    }

    /// Allocates a wire, initially 0.
    pub fn wire(&mut self, name: impl Into<String>) -> Wire {
        self.values.push(0);
        self.names.push(name.into());
        Wire(self.values.len() - 1)
    }

    /// Samples a wire.
    pub fn get(&self, w: Wire) -> u32 {
        self.values[w.0]
    }

    /// Drives a wire.
    pub fn set(&mut self, w: Wire, value: u32) {
        self.values[w.0] = value;
    }

    /// The registered name of a wire.
    pub fn name(&self, w: Wire) -> &str {
        &self.names[w.0]
    }

    fn snapshot(&self) -> Vec<u32> {
        self.values.clone()
    }
}

/// A clocked hardware component.
pub trait Component {
    /// Drives output wires from input wires and internal registers.
    /// Called repeatedly until all wires settle.
    fn comb(&self, rtl: &mut Rtl);
    /// Clock edge: update internal registers from wires.
    fn edge(&mut self, rtl: &Rtl);
}

/// A cycle-based simulator over a set of components.
pub struct Sim {
    /// The netlist (public so testbenches can poke stimulus wires).
    pub rtl: Rtl,
    components: Vec<Box<dyn Component>>,
    cycle: u64,
}

impl Sim {
    /// Iterations allowed for combinational settling before declaring a
    /// combinational loop.
    const MAX_SETTLE: usize = 16;

    /// Creates a simulator over a netlist.
    pub fn new(rtl: Rtl) -> Sim {
        Sim { rtl, components: Vec::new(), cycle: 0 }
    }

    /// Registers a component.
    pub fn add(&mut self, c: impl Component + 'static) {
        self.components.push(Box::new(c));
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulates one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if combinational logic fails to settle (a combinational
    /// loop).
    pub fn step(&mut self) {
        // Combinational fixpoint.
        let mut settled = false;
        for _ in 0..Self::MAX_SETTLE {
            let before = self.rtl.snapshot();
            for c in &self.components {
                c.comb(&mut self.rtl);
            }
            if self.rtl.values == before {
                settled = true;
                break;
            }
        }
        assert!(settled, "combinational loop detected at cycle {}", self.cycle);
        // Clock edge.
        for c in &mut self.components {
            c.edge(&self.rtl);
        }
        self.cycle += 1;
    }
}

/// A round-robin bus arbiter: `n` request wires, `n` grant wires; at most
/// one grant, rotating priority, hold while request stays high (no
/// preemption mid-burst).
pub struct RrArbiter {
    requests: Vec<Wire>,
    grants: Vec<Wire>,
    /// Currently granted master (register).
    owner: Option<usize>,
    /// Next master to consider (register).
    rr_next: usize,
}

impl RrArbiter {
    /// Builds the arbiter and allocates its grant wires.
    pub fn new(rtl: &mut Rtl, requests: Vec<Wire>) -> RrArbiter {
        let grants = (0..requests.len()).map(|i| rtl.wire(format!("gnt{i}"))).collect();
        RrArbiter { requests, grants, owner: None, rr_next: 0 }
    }

    /// The grant wire of master `i`.
    pub fn grant(&self, i: usize) -> Wire {
        self.grants[i]
    }

    fn pick(&self, rtl: &Rtl) -> Option<usize> {
        // Hold the current owner while it still requests.
        if let Some(owner) = self.owner {
            if rtl.get(self.requests[owner]) != 0 {
                return Some(owner);
            }
        }
        let n = self.requests.len();
        (0..n).map(|k| (self.rr_next + k) % n).find(|&i| rtl.get(self.requests[i]) != 0)
    }
}

impl Component for RrArbiter {
    fn comb(&self, rtl: &mut Rtl) {
        let winner = self.pick(rtl);
        for (i, &g) in self.grants.iter().enumerate() {
            rtl.set(g, u32::from(winner == Some(i)));
        }
    }

    fn edge(&mut self, rtl: &Rtl) {
        self.owner = self.pick(rtl);
        if let Some(owner) = self.owner {
            self.rr_next = (owner + 1) % self.requests.len();
        }
    }
}

/// A free-running counter register, as a minimal clocked-component example.
pub struct Counter {
    /// Output wire carrying the count.
    pub out: Wire,
    value: u32,
}

impl Counter {
    /// Builds a counter driving a fresh wire.
    pub fn new(rtl: &mut Rtl) -> Counter {
        let out = rtl.wire("count");
        Counter { out, value: 0 }
    }
}

impl Component for Counter {
    fn comb(&self, rtl: &mut Rtl) {
        rtl.set(self.out, self.value);
    }

    fn edge(&mut self, _rtl: &Rtl) {
        self.value = self.value.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut rtl = Rtl::new();
        let counter = Counter::new(&mut rtl);
        let out = counter.out;
        let mut sim = Sim::new(rtl);
        sim.add(counter);
        for expect in 0..5u32 {
            sim.step();
            assert_eq!(sim.rtl.get(out), expect);
        }
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn arbiter_grants_one_master_at_a_time() {
        let mut rtl = Rtl::new();
        let req: Vec<Wire> = (0..3).map(|i| rtl.wire(format!("req{i}"))).collect();
        let arb = RrArbiter::new(&mut rtl, req.clone());
        let grants: Vec<Wire> = (0..3).map(|i| arb.grant(i)).collect();
        let mut sim = Sim::new(rtl);
        sim.add(arb);

        sim.rtl.set(req[0], 1);
        sim.rtl.set(req[2], 1);
        sim.step();
        let granted: Vec<u32> = grants.iter().map(|&g| sim.rtl.get(g)).collect();
        assert_eq!(granted.iter().sum::<u32>(), 1, "exactly one grant");
    }

    #[test]
    fn arbiter_holds_burst_then_rotates() {
        let mut rtl = Rtl::new();
        let req: Vec<Wire> = (0..2).map(|i| rtl.wire(format!("req{i}"))).collect();
        let arb = RrArbiter::new(&mut rtl, req.clone());
        let g0 = arb.grant(0);
        let g1 = arb.grant(1);
        let mut sim = Sim::new(rtl);
        sim.add(arb);

        // Both request; master 0 wins and holds for its 3-cycle burst.
        sim.rtl.set(req[0], 1);
        sim.rtl.set(req[1], 1);
        for _ in 0..3 {
            sim.step();
            assert_eq!(sim.rtl.get(g0), 1);
            assert_eq!(sim.rtl.get(g1), 0);
        }
        // Master 0 done; master 1 takes over.
        sim.rtl.set(req[0], 0);
        sim.step();
        assert_eq!(sim.rtl.get(g1), 1);
    }

    #[test]
    fn arbiter_total_service_matches_reservation_model() {
        // Two masters each transferring a 6-cycle burst: the RTL arbiter
        // serializes them into 12 bus cycles, which is exactly what the
        // transaction-grain `BusClock::reserve` model charges.
        let mut rtl = Rtl::new();
        let req: Vec<Wire> = (0..2).map(|i| rtl.wire(format!("req{i}"))).collect();
        let arb = RrArbiter::new(&mut rtl, req.clone());
        let grants = [arb.grant(0), arb.grant(1)];
        let mut sim = Sim::new(rtl);
        sim.add(arb);

        let burst = 6u32;
        let mut remaining = [burst, burst];
        sim.rtl.set(req[0], 1);
        sim.rtl.set(req[1], 1);
        let mut cycles = 0u64;
        while remaining.iter().any(|&r| r > 0) {
            sim.step();
            cycles += 1;
            for m in 0..2 {
                if sim.rtl.get(grants[m]) == 1 && remaining[m] > 0 {
                    remaining[m] -= 1;
                    if remaining[m] == 0 {
                        sim.rtl.set(req[m], 0);
                    }
                }
            }
            assert!(cycles < 100, "arbiter starvation");
        }
        assert_eq!(cycles, u64::from(burst) * 2, "perfect serialization");
    }

    #[test]
    #[should_panic(expected = "combinational loop")]
    fn combinational_loop_is_detected() {
        struct Inverter {
            a: Wire,
        }
        impl Component for Inverter {
            fn comb(&self, rtl: &mut Rtl) {
                let v = rtl.get(self.a);
                rtl.set(self.a, 1 - (v & 1));
            }
            fn edge(&mut self, _rtl: &Rtl) {}
        }
        let mut rtl = Rtl::new();
        let a = rtl.wire("a");
        let mut sim = Sim::new(rtl);
        sim.add(Inverter { a });
        sim.step();
    }
}
