//! A structural-RTL 8-point DCT datapath — the paper's Fig. 4 hardware
//! unit realized at register-transfer level on [`crate::rtl`].
//!
//! Architecture: a coefficient ROM, a single multiply-accumulate unit and
//! a sequencer FSM that walks `u = 0..8 × k = 0..8` — one MAC per cycle,
//! 64 compute cycles plus one output cycle per coefficient. Tests verify
//! bit-exactness against the direct fixed-point computation and that the
//! cycle count matches the sequencer's schedule, tying the RTL level to
//! the scheduled-FSM engines the board model uses.

use crate::rtl::{Component, Rtl, Sim, Wire};

/// Number of points of the transform.
pub const N: usize = 8;

/// Q10 DCT coefficient, as used by the MiniC kernels.
pub fn coefficient(u: usize, x: usize) -> i32 {
    let angle = std::f64::consts::PI / 8.0 * (x as f64 + 0.5) * u as f64;
    (1024.0 * angle.cos()).round() as i32
}

/// Sequencer states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Mac { u: usize, k: usize, acc: i64 },
    Emit { u: usize, acc: i64 },
    Done,
}

/// The DCT engine: input register file, ROM, MAC and sequencer in one
/// clocked component (hierarchy flattened for clarity; the wires expose
/// the handshake).
pub struct DctEngine {
    /// Input sample wires (driven by the testbench before `start`).
    pub x_in: Vec<Wire>,
    /// Start strobe (testbench drives high for one cycle).
    pub start: Wire,
    /// High for one cycle as each output coefficient appears.
    pub out_valid: Wire,
    /// Output coefficient bus (valid when `out_valid` is high).
    pub out_data: Wire,
    /// High once all eight coefficients have been emitted.
    pub done: Wire,
    /// Latched input samples.
    x: [i32; N],
    state: State,
    /// Registered outputs for the current cycle.
    reg_valid: bool,
    reg_data: i32,
    reg_done: bool,
}

impl DctEngine {
    /// Builds the engine and allocates its interface wires.
    pub fn new(rtl: &mut Rtl) -> DctEngine {
        DctEngine {
            x_in: (0..N).map(|i| rtl.wire(format!("x{i}"))).collect(),
            start: rtl.wire("start"),
            out_valid: rtl.wire("out_valid"),
            out_data: rtl.wire("out_data"),
            done: rtl.wire("done"),
            x: [0; N],
            state: State::Idle,
            reg_valid: false,
            reg_data: 0,
            reg_done: false,
        }
    }
}

impl Component for DctEngine {
    fn comb(&self, rtl: &mut Rtl) {
        rtl.set(self.out_valid, u32::from(self.reg_valid));
        rtl.set(self.out_data, self.reg_data as u32);
        rtl.set(self.done, u32::from(self.reg_done));
    }

    fn edge(&mut self, rtl: &Rtl) {
        self.reg_valid = false;
        self.state = match self.state {
            State::Idle => {
                if rtl.get(self.start) != 0 {
                    // Latch the input register file.
                    for (i, slot) in self.x.iter_mut().enumerate() {
                        *slot = rtl.get(self.x_in[i]) as i32;
                    }
                    State::Mac { u: 0, k: 0, acc: 0 }
                } else {
                    State::Idle
                }
            }
            State::Mac { u, k, acc } => {
                // One multiply-accumulate per cycle.
                let acc = acc + i64::from(self.x[k]) * i64::from(coefficient(u, k));
                if k + 1 < N {
                    State::Mac { u, k: k + 1, acc }
                } else {
                    State::Emit { u, acc }
                }
            }
            State::Emit { u, acc } => {
                self.reg_valid = true;
                self.reg_data = (acc >> 10) as i32;
                if u + 1 < N {
                    State::Mac { u: u + 1, k: 0, acc: 0 }
                } else {
                    self.reg_done = true;
                    State::Done
                }
            }
            State::Done => State::Done,
        };
    }
}

/// Runs one transform on the RTL engine, returning the outputs and the
/// cycle count from `start` to `done`.
///
/// # Panics
///
/// Panics if the engine fails to finish within a generous bound.
pub fn run_dct_rtl(samples: &[i32; N]) -> ([i32; N], u64) {
    let mut rtl = Rtl::new();
    let engine = DctEngine::new(&mut rtl);
    let x_in = engine.x_in.clone();
    let start = engine.start;
    let out_valid = engine.out_valid;
    let out_data = engine.out_data;
    let done = engine.done;
    let mut sim = Sim::new(rtl);
    sim.add(engine);

    for (i, &v) in samples.iter().enumerate() {
        sim.rtl.set(x_in[i], v as u32);
    }
    sim.rtl.set(start, 1);
    sim.step();
    sim.rtl.set(start, 0);

    let mut outputs = [0i32; N];
    let mut n_out = 0;
    let mut cycles = 1u64;
    while sim.rtl.get(done) == 0 {
        sim.step();
        cycles += 1;
        if sim.rtl.get(out_valid) != 0 {
            outputs[n_out] = sim.rtl.get(out_data) as i32;
            n_out += 1;
        }
        assert!(cycles < 1000, "engine failed to finish");
    }
    assert_eq!(n_out, N, "all coefficients emitted");
    (outputs, cycles)
}

/// The direct fixed-point reference the RTL must match.
pub fn dct_reference(samples: &[i32; N]) -> [i32; N] {
    let mut out = [0i32; N];
    for (u, slot) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (x, &s) in samples.iter().enumerate() {
            acc += i64::from(s) * i64::from(coefficient(u, x));
        }
        *slot = (acc >> 10) as i32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtl_matches_reference_on_known_vectors() {
        for samples in [
            [0i32; N],
            [100, 100, 100, 100, 100, 100, 100, 100],
            [-128, 127, -64, 63, -32, 31, -16, 15],
            [1, 2, 3, 4, 5, 6, 7, 8],
        ] {
            let (rtl_out, _) = run_dct_rtl(&samples);
            assert_eq!(rtl_out, dct_reference(&samples), "input {samples:?}");
        }
    }

    #[test]
    fn dc_input_concentrates_energy_in_dc_coefficient() {
        let (out, _) = run_dct_rtl(&[100; N]);
        assert!(out[0] > 700, "DC term {}", out[0]);
        assert!(out[1..].iter().all(|&v| v.abs() <= 1), "{out:?}");
    }

    #[test]
    fn cycle_count_matches_the_sequencer_schedule() {
        // 1 latch cycle + per coefficient (8 MACs + 1 emit) + 1 cycle for
        // the registered `done` flag to become visible = 2 + 8*9.
        let (_, cycles) = run_dct_rtl(&[5; N]);
        assert_eq!(cycles, 2 + (N as u64) * (N as u64 + 1));
    }

    #[test]
    fn rtl_agrees_with_the_minic_kernel_row_pass() {
        // The dct8x8 MiniC kernel's row pass uses the same Q10 table; feed
        // one row through both and compare.
        use tlm_cdfg::interp::{Exec, Machine, NoopHook};
        let row: [i32; N] = [12, -7, 33, 0, -100, 55, 8, -1];
        let row_list = row.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let src = format!(
            "int ct[64] = {{{table}}};
             int x[8] = {{{row_list}}};
             void main() {{
                for (int u = 0; u < 8; u++) {{
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {{ acc += x[k] * ct[u * 8 + k]; }}
                    out(acc >> 10);
                }}
             }}",
            table = (0..64)
                .map(|i| coefficient(i / 8, i % 8).to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(&src).expect("parses")).expect("lowers");
        let main = module.function_id("main").expect("main");
        let mut machine = Machine::new(&module, main, &[]);
        assert_eq!(machine.run(&mut NoopHook), Exec::Done);
        let (rtl_out, _) = run_dct_rtl(&row);
        let sw: Vec<i64> = rtl_out.iter().map(|&v| i64::from(v)).collect();
        assert_eq!(machine.outputs(), sw, "RTL and software kernel agree");
    }
}
