//! Pin/Cycle-Accurate Model (PCAM) — the reproduction's "board".
//!
//! The paper validates its TLM estimates against on-board measurements of a
//! Xilinx FPGA system and reports PCAM (RTL-level) simulation times. With
//! no board available, this crate provides the cycle-accurate golden model
//! that plays both roles:
//!
//! - [`rtl`] — a small cycle-based structural RTL layer (wires, clocked
//!   components) used for the bus arbiter and as the validation substrate
//!   for the transaction-grain bus cost model; [`rtl_dct`] realizes the
//!   paper's Fig. 4 DCT datapath on it and proves it bit-exact against the
//!   software kernels;
//! - [`engine`] — per-PE execution engines: the cycle-accurate
//!   [`tlm_iss::microarch::MicroArch`] core for processors, a scheduled-FSM
//!   sequencer for custom hardware, and the deliberately coarse vendor-ISS
//!   timing for the Table-2 baseline;
//! - [`board`] — full-platform co-simulation: engines run between
//!   transaction boundaries, their *measured* (not estimated) cycles are
//!   applied to PE clocks, and transfers reserve the bus.
//!
//! The board simulation is the ground truth of Tables 2 and 3 and the
//! "PCAM" row of Table 1; it also produces the per-PE cache/branch counters
//! that characterize the statistical PUM models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod engine;
pub mod rtl;
pub mod rtl_dct;
pub mod vcd;

pub use board::{run_board, run_iss, BoardConfig, BoardReport};
