//! The four MP3 platform designs of the paper's evaluation (§5).
//!
//! - **SW** — every process on the MicroBlaze-like CPU;
//! - **SW+1** — the left-channel FilterCore moved to custom HW;
//! - **SW+2** — left FilterCore and left IMDCT on custom HW;
//! - **SW+4** — FilterCore and IMDCT of both channels on custom HW.
//!
//! Cache sizes of the CPU are a free parameter, swept by Tables 2 and 3.

use std::fmt;

use tlm_core::library;
use tlm_pipeline::{DesignBuilder, Pipeline, PipelineError, PreparedDesign};
use tlm_platform::desc::{PeId, Platform};

use crate::mp3::{self, chan, GRANULES_PER_FRAME};

/// Which of the paper's designs to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mp3Design {
    /// Pure software.
    Sw,
    /// Left FilterCore in HW.
    SwPlus1,
    /// Left FilterCore + left IMDCT in HW.
    SwPlus2,
    /// Both FilterCores + both IMDCTs in HW.
    SwPlus4,
}

impl Mp3Design {
    /// All four designs, in the paper's order.
    pub const ALL: [Mp3Design; 4] =
        [Mp3Design::Sw, Mp3Design::SwPlus1, Mp3Design::SwPlus2, Mp3Design::SwPlus4];

    /// Number of custom HW PEs in the design.
    pub fn hw_count(self) -> usize {
        match self {
            Mp3Design::Sw => 0,
            Mp3Design::SwPlus1 => 1,
            Mp3Design::SwPlus2 => 2,
            Mp3Design::SwPlus4 => 4,
        }
    }
}

impl fmt::Display for Mp3Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mp3Design::Sw => "SW",
            Mp3Design::SwPlus1 => "SW+1",
            Mp3Design::SwPlus2 => "SW+2",
            Mp3Design::SwPlus4 => "SW+4",
        };
        f.write_str(s)
    }
}

/// Workload parameters: the bitstream seed and how many frames to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mp3Params {
    /// Seed of the synthetic bitstream.
    pub seed: i32,
    /// Frames to decode.
    pub frames: u32,
}

impl Mp3Params {
    /// The training input used to characterize statistical PUM parameters.
    pub fn training() -> Mp3Params {
        Mp3Params { seed: 0x1234_5678, frames: 2 }
    }

    /// The evaluation input the accuracy tables are measured on.
    pub fn evaluation() -> Mp3Params {
        Mp3Params { seed: 0x6b43_a9b5, frames: 3 }
    }

    /// Total granules decoded.
    pub fn granules(&self) -> i64 {
        i64::from(self.frames) * GRANULES_PER_FRAME as i64
    }
}

/// Builds one design as a pipeline artifact: the six MiniC process sources
/// are lowered through `pipeline`'s shared front-end (the paper annotates
/// compiler-processed IR, so the scalar cleanup passes run), and the
/// resulting [`PreparedDesign`] can demand annotation and reports by key.
///
/// # Errors
///
/// Propagates [`PipelineError`] (should not occur for the built-in
/// sources).
pub fn mp3_design(
    pipeline: &Pipeline,
    design: Mp3Design,
    params: Mp3Params,
    icache_bytes: u32,
    dcache_bytes: u32,
) -> Result<PreparedDesign, PipelineError> {
    let mut b = DesignBuilder::new(pipeline, format!("mp3-{design}"));
    let cpu = b.add_pe("cpu", library::microblaze_like(icache_bytes, dcache_bytes));

    let hw = |b: &mut DesignBuilder<'_>, name: &str, mac: u32| -> PeId {
        b.add_pe(name, library::custom_hw(name, 2, mac))
    };
    let (pe_fl, pe_il, pe_fr, pe_ir) = match design {
        Mp3Design::Sw => (cpu, cpu, cpu, cpu),
        Mp3Design::SwPlus1 => (hw(&mut b, "filter_hw_l", 2), cpu, cpu, cpu),
        Mp3Design::SwPlus2 => (hw(&mut b, "filter_hw_l", 2), hw(&mut b, "imdct_hw_l", 2), cpu, cpu),
        Mp3Design::SwPlus4 => (
            hw(&mut b, "filter_hw_l", 2),
            hw(&mut b, "imdct_hw_l", 2),
            hw(&mut b, "filter_hw_r", 2),
            hw(&mut b, "imdct_hw_r", 2),
        ),
    };

    let granules = params.granules();
    b.add_process(
        "frontend",
        &mp3::frontend_source(),
        "main",
        &[i64::from(params.seed), i64::from(params.frames)],
        cpu,
    )?;
    b.add_process(
        "imdct_l",
        &mp3::imdct_source(chan::SPEC_L, chan::SUB_L),
        "main",
        &[granules],
        pe_il,
    )?;
    b.add_process(
        "imdct_r",
        &mp3::imdct_source(chan::SPEC_R, chan::SUB_R),
        "main",
        &[granules],
        pe_ir,
    )?;
    b.add_process(
        "filter_l",
        &mp3::filter_source(chan::SUB_L, chan::PCM_L),
        "main",
        &[granules],
        pe_fl,
    )?;
    b.add_process(
        "filter_r",
        &mp3::filter_source(chan::SUB_R, chan::PCM_R),
        "main",
        &[granules],
        pe_fr,
    )?;
    b.add_process("sink", &mp3::sink_source(), "main", &[granules], cpu)?;
    b.build()
}

/// [`mp3_design`] on the process-wide pipeline, returning the bare
/// platform.
///
/// # Errors
///
/// Same as [`mp3_design`].
pub fn build_mp3_platform(
    design: Mp3Design,
    params: Mp3Params,
    icache_bytes: u32,
    dcache_bytes: u32,
) -> Result<Platform, PipelineError> {
    Ok(mp3_design(Pipeline::global(), design, params, icache_bytes, dcache_bytes)?.platform)
}

/// The cache configurations swept by the paper's Tables 2 and 3, as
/// `(label, icache bytes, dcache bytes)`.
pub const CACHE_SWEEP: [(&str, u32, u32); 5] = [
    ("0k/0k", 0, 0),
    ("2k/2k", 2 << 10, 2 << 10),
    ("8k/4k", 8 << 10, 4 << 10),
    ("16k/16k", 16 << 10, 16 << 10),
    ("32k/16k", 32 << 10, 16 << 10),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_build() {
        for design in Mp3Design::ALL {
            let p = build_mp3_platform(design, Mp3Params::training(), 8 << 10, 4 << 10)
                .unwrap_or_else(|e| panic!("{design}: {e}"));
            assert_eq!(p.processes.len(), 6);
            assert_eq!(p.pes.len(), 1 + design.hw_count());
            // All six channels bound.
            assert_eq!(p.channels.len(), 6);
        }
    }

    #[test]
    fn sw_design_keeps_all_channels_local() {
        let p = build_mp3_platform(Mp3Design::Sw, Mp3Params::training(), 0, 0).expect("builds");
        assert!(p.channels.values().all(|c| c.bus.is_none()));
    }

    #[test]
    fn hw_designs_use_the_bus() {
        let p =
            build_mp3_platform(Mp3Design::SwPlus4, Mp3Params::training(), 0, 0).expect("builds");
        let on_bus = p.channels.values().filter(|c| c.bus.is_some()).count();
        assert_eq!(on_bus, 6, "every hop crosses PEs in SW+4");
    }

    #[test]
    fn params_granule_math() {
        assert_eq!(Mp3Params { seed: 1, frames: 4 }.granules(), 8);
        assert_ne!(Mp3Params::training().seed, Mp3Params::evaluation().seed);
    }
}
