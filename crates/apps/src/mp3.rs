//! The MP3-style decoder process network, in MiniC.
//!
//! Substitution note (see DESIGN.md): the paper used a real MP3 reference
//! decoder; this is a synthetic stand-in with the same computational
//! skeleton — per granule and channel, 576 spectral values are produced by
//! a pseudo-Huffman/dequantisation front end (seeded LCG plus per-band
//! scalefactor processing and mid/side stereo), transformed by a windowed
//! 18→36 IMDCT with overlap-add per sub-band, and rendered by a polyphase
//! `FilterCore` (64×32 matrixing into a 1024-entry V FIFO plus 16-tap
//! windowing per PCM sample). All arithmetic is 32-bit fixed point.
//!
//! Channel ids: `frontend → imdct_l` (0), `frontend → imdct_r` (1),
//! `imdct_l → filter_l` (2), `imdct_r → filter_r` (3),
//! `filter_l → sink` (4), `filter_r → sink` (5).

use std::fmt::Write as _;

/// Samples per granule and channel (32 sub-bands × 18 samples).
pub const GRANULE_SAMPLES: usize = 576;
/// Granules per frame.
pub const GRANULES_PER_FRAME: usize = 2;

/// Channel ids of the process network.
pub mod chan {
    /// frontend → imdct_l
    pub const SPEC_L: u32 = 0;
    /// frontend → imdct_r
    pub const SPEC_R: u32 = 1;
    /// imdct_l → filter_l
    pub const SUB_L: u32 = 2;
    /// imdct_r → filter_r
    pub const SUB_R: u32 = 3;
    /// filter_l → sink
    pub const PCM_L: u32 = 4;
    /// filter_r → sink
    pub const PCM_R: u32 = 5;
}

fn table(values: &[i64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out
}

/// The 36×18 windowed IMDCT coefficient table (Q12).
pub fn imdct_table() -> Vec<i64> {
    let mut t = Vec::with_capacity(36 * 18);
    for n in 0..36usize {
        let window = (std::f64::consts::PI / 36.0 * (n as f64 + 0.5)).sin();
        for k in 0..18usize {
            let angle = std::f64::consts::PI / 72.0
                * (2.0 * n as f64 + 1.0 + 18.0)
                * (2.0 * k as f64 + 1.0);
            t.push((4096.0 * angle.cos() * window).round() as i64);
        }
    }
    t
}

/// The 64×32 synthesis matrixing table (Q12).
pub fn matrix_table() -> Vec<i64> {
    let mut t = Vec::with_capacity(64 * 32);
    for i in 0..64usize {
        for k in 0..32usize {
            let angle = std::f64::consts::PI / 64.0 * ((16 + i) as f64) * (2.0 * k as f64 + 1.0);
            t.push((4096.0 * angle.cos()).round() as i64);
        }
    }
    t
}

/// The 512-tap synthesis window (Q10, raised-cosine shape).
pub fn window_table() -> Vec<i64> {
    (0..512usize)
        .map(|j| {
            let x = std::f64::consts::PI * (j as f64 + 0.5) / 512.0;
            (1024.0 * x.sin() * x.sin()).round() as i64
        })
        .collect()
}

/// MiniC source of the front end (pseudo-Huffman decode, dequantisation,
/// scalefactors, mid/side stereo). Entry: `main(seed, nframes)`.
pub fn frontend_source() -> String {
    format!(
        r#"
// MP3-style front end: bitstream unpack + dequantize + stereo.
int xl[576];
int xr[576];
int gains[22];

int next(int state) {{
    return state * 1103515245 + 12345;
}}

void main(int seed, int nframes) {{
    int state = seed;
    for (int f = 0; f < nframes; f++) {{
        for (int g = 0; g < 2; g++) {{
            // "Huffman decode" + requantize both channels.
            for (int i = 0; i < 576; i++) {{
                int band = i >> 5;
                state = next(state);
                int v = ((state >> 16) & 4095) - 2048;
                xl[i] = (v * (18 - band)) >> 4;
                state = next(state);
                v = ((state >> 16) & 4095) - 2048;
                xr[i] = (v * (18 - band)) >> 4;
            }}
            // Scalefactor application over 22 bands.
            for (int b = 0; b < 22; b++) {{
                state = next(state);
                gains[b] = 2048 + ((state >> 20) & 2047);
            }}
            for (int i = 0; i < 576; i++) {{
                int b = i / 27;
                if (b > 21) {{ b = 21; }}
                xl[i] = (xl[i] * gains[b]) >> 12;
                xr[i] = (xr[i] * gains[b]) >> 12;
            }}
            // Mid/side stereo on even frames.
            if ((f & 1) == 0) {{
                for (int i = 0; i < 576; i++) {{
                    int m = xl[i];
                    int s = xr[i];
                    xl[i] = (m + s) >> 1;
                    xr[i] = (m - s) >> 1;
                }}
            }}
            for (int i = 0; i < 576; i++) {{ ch_send({spec_l}, xl[i]); }}
            for (int i = 0; i < 576; i++) {{ ch_send({spec_r}, xr[i]); }}
        }}
    }}
}}
"#,
        spec_l = chan::SPEC_L,
        spec_r = chan::SPEC_R,
    )
}

/// MiniC source of one IMDCT process. Entry: `main(ngranules)`.
///
/// `ch_in`/`ch_out` select the left or right instance.
pub fn imdct_source(ch_in: u32, ch_out: u32) -> String {
    format!(
        r#"
// Windowed 18-to-36 IMDCT with overlap-add, per sub-band.
int xin[576];
int prev[576];
int cosw[648] = {{{cosw}}};

void granule() {{
    for (int sb = 0; sb < 32; sb++) {{
        int base = sb * 18;
        for (int n = 0; n < 36; n++) {{
            int acc = 0;
            for (int k = 0; k < 18; k++) {{
                acc += xin[base + k] * cosw[n * 18 + k];
            }}
            acc = acc >> 12;
            if (n < 18) {{
                ch_send({ch_out}, acc + prev[base + n]);
            }} else {{
                prev[base + n - 18] = acc;
            }}
        }}
    }}
}}

void main(int ngranules) {{
    for (int g = 0; g < ngranules; g++) {{
        for (int i = 0; i < 576; i++) {{ xin[i] = ch_recv({ch_in}); }}
        granule();
    }}
}}
"#,
        cosw = table(&imdct_table()),
    )
}

/// MiniC source of one FilterCore (polyphase synthesis) process.
/// Entry: `main(ngranules)`.
pub fn filter_source(ch_in: u32, ch_out: u32) -> String {
    format!(
        r#"
// Polyphase synthesis filter bank: 64x32 matrixing into a 1024-entry
// V FIFO, then 16-tap windowing per PCM sample.
int s[576];
int v[1024];
int voff;
int nmat[2048] = {{{nmat}}};
int dwin[512] = {{{dwin}}};

void synth(int t) {{
    voff = (voff - 64) & 1023;
    for (int i = 0; i < 64; i++) {{
        int acc = 0;
        for (int k = 0; k < 32; k++) {{
            acc += nmat[i * 32 + k] * s[k * 18 + t];
        }}
        v[(voff + i) & 1023] = acc >> 12;
    }}
    for (int j = 0; j < 32; j++) {{
        int acc = 0;
        for (int b = 0; b < 16; b++) {{
            acc += dwin[j + (b << 5)] * v[(voff + b * 96 + j) & 1023];
        }}
        ch_send({ch_out}, acc >> 10);
    }}
}}

void main(int ngranules) {{
    voff = 0;
    for (int g = 0; g < ngranules; g++) {{
        for (int i = 0; i < 576; i++) {{ s[i] = ch_recv({ch_in}); }}
        for (int t = 0; t < 18; t++) {{ synth(t); }}
    }}
}}
"#,
        nmat = table(&matrix_table()),
        dwin = table(&window_table()),
    )
}

/// MiniC source of the sink (mix, per-granule energy, running checksum).
/// Entry: `main(ngranules)`.
pub fn sink_source() -> String {
    format!(
        r#"
// PCM sink: interleave L/R, emit per-granule energy and final checksum.
void main(int ngranules) {{
    int checksum = 0;
    for (int g = 0; g < ngranules; g++) {{
        int energy = 0;
        for (int i = 0; i < 576; i++) {{
            int l = ch_recv({pcm_l});
            int r = ch_recv({pcm_r});
            int mono = (l + r) >> 1;
            checksum = (checksum ^ mono) + (mono & 255);
            if (mono < 0) {{
                energy += -mono;
            }} else {{
                energy += mono;
            }}
        }}
        out(energy >> 8);
    }}
    out(checksum);
}}
"#,
        pcm_l = chan::PCM_L,
        pcm_r = chan::PCM_R,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_lower() {
        for (name, src) in [
            ("frontend", frontend_source()),
            ("imdct", imdct_source(chan::SPEC_L, chan::SUB_L)),
            ("filter", filter_source(chan::SUB_L, chan::PCM_L)),
            ("sink", sink_source()),
        ] {
            let artifact = tlm_pipeline::Pipeline::global()
                .frontend_with(&src, false)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            artifact.module().validate().unwrap_or_else(|e| panic!("{name} invalid: {e}"));
        }
    }

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(imdct_table().len(), 648);
        assert_eq!(matrix_table().len(), 2048);
        assert_eq!(window_table().len(), 512);
        // Q12 coefficients stay in range.
        assert!(imdct_table().iter().all(|&v| v.abs() <= 4096));
        assert!(matrix_table().iter().all(|&v| v.abs() <= 4096));
        assert!(window_table().iter().all(|&v| (0..=1024).contains(&v)));
    }

    #[test]
    fn imdct_window_is_nontrivial() {
        let t = imdct_table();
        let nonzero = t.iter().filter(|&&v| v != 0).count();
        assert!(nonzero > 500, "table mostly populated, got {nonzero}");
        // Not constant.
        assert!(t.iter().any(|&v| v > 1000) && t.iter().any(|&v| v < -1000));
    }
}
