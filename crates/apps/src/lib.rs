//! Application workloads for the estimation experiments.
//!
//! The paper evaluates on an MP3 decoder whose heavy kernels (per-channel
//! `FilterCore` polyphase synthesis and `IMDCT`) are progressively moved to
//! custom hardware. The original reference code is proprietary; [`mp3`]
//! provides a fixed-point MP3-*style* decoder written in MiniC with the
//! same computational structure and the same offload cut points, organized
//! as the paper's process network (Fig. 6):
//!
//! ```text
//! frontend ──ch0──▶ imdct_l ──ch2──▶ filter_l ──ch4──▶
//!          ──ch1──▶ imdct_r ──ch3──▶ filter_r ──ch5──▶ sink
//! ```
//!
//! [`designs`] maps that network onto the four platforms of the paper (SW,
//! SW+1, SW+2, SW+4) with configurable cache sizes, [`imagepipe`] provides
//! a second process network (a JPEG-style compressor with an optional DCT
//! accelerator), and [`kernels`] provides smaller single-process programs
//! (FIR, matmul, quicksort, CRC32, DCT 8×8) for unit-scale experiments and
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod imagepipe;
pub mod kernels;
pub mod mp3;

pub use designs::{build_mp3_platform, mp3_design, Mp3Design, Mp3Params};
pub use imagepipe::{build_image_platform, image_design, ImageParams};
