//! A JPEG-style image-compression pipeline, the second multi-process
//! workload (the paper's methodology is application-agnostic; a second
//! process network exercises the tool chain on a different traffic and
//! compute profile: block-structured data, variable-length output).
//!
//! ```text
//! camera ──ch10──▶ transform ──ch11──▶ encoder ──ch12──▶ store
//!  (tiles)          (DCT+quant)         (zigzag+RLE)       (size+checksum)
//! ```
//!
//! Each message on `ch10`/`ch11` is one 8×8 block (64 words). The encoder
//! emits a word count followed by that many packed words per block.

use std::fmt::Write as _;

use tlm_core::library;
use tlm_pipeline::{DesignBuilder, Pipeline, PipelineError, PreparedDesign};
use tlm_platform::desc::Platform;

/// Channel ids of the pipeline (distinct from the MP3 network's 0..=5).
pub mod chan {
    /// camera → transform (raw blocks)
    pub const RAW: u32 = 10;
    /// transform → encoder (quantized blocks)
    pub const QUANT: u32 = 11;
    /// encoder → store (count + packed words)
    pub const PACKED: u32 = 12;
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageParams {
    /// Seed of the synthetic sensor noise.
    pub seed: i32,
    /// Number of 8×8 blocks to compress.
    pub blocks: u32,
}

impl ImageParams {
    /// A small default workload.
    pub fn small() -> ImageParams {
        ImageParams { seed: 0x0123_4567, blocks: 24 }
    }
}

fn dct_table() -> String {
    let mut out = String::new();
    for u in 0..8usize {
        for x in 0..8usize {
            if u > 0 || x > 0 {
                out.push_str(", ");
            }
            let angle = std::f64::consts::PI / 8.0 * (x as f64 + 0.5) * u as f64;
            let _ = write!(out, "{}", (1024.0 * angle.cos()).round() as i64);
        }
    }
    out
}

fn quant_table() -> String {
    // A luminance-like quantisation matrix: coarser at high frequencies.
    let mut out = String::new();
    for v in 0..8usize {
        for u in 0..8usize {
            if u > 0 || v > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", 8 + 2 * (u + v) as i64);
        }
    }
    out
}

fn zigzag_table() -> String {
    // The standard 8×8 zigzag scan order.
    let mut order = [0usize; 64];
    let (mut r, mut c) = (0isize, 0isize);
    let mut up = true;
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = (r * 8 + c) as usize;
        let _ = i;
        if up {
            if c == 7 {
                r += 1;
                up = false;
            } else if r == 0 {
                c += 1;
                up = false;
            } else {
                r -= 1;
                c += 1;
            }
        } else if r == 7 {
            c += 1;
            up = true;
        } else if c == 0 {
            r += 1;
            up = true;
        } else {
            r += 1;
            c -= 1;
        }
    }
    let mut out = String::new();
    for (i, v) in order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out
}

/// MiniC source of the camera/source process. Entry: `main(seed, blocks)`.
pub fn camera_source() -> String {
    format!(
        r#"
// Synthetic sensor: smooth gradient + noise, per 8x8 tile, with a
// white-balance pass before shipping.
int tile[64];
void main(int seed, int blocks) {{
    int state = seed;
    for (int b = 0; b < blocks; b++) {{
        int base = (b * 37) & 127;
        for (int y = 0; y < 8; y++) {{
            for (int x = 0; x < 8; x++) {{
                state = state * 1103515245 + 12345;
                int noise = ((state >> 18) & 31) - 16;
                tile[y * 8 + x] = base + y * 6 + x * 3 + noise - 128;
            }}
        }}
        // White balance: normalize tile mean toward zero.
        int mean = 0;
        for (int i = 0; i < 64; i++) {{ mean += tile[i]; }}
        mean = mean >> 6;
        for (int i = 0; i < 64; i++) {{
            ch_send({raw}, tile[i] - mean);
        }}
    }}
}}
"#,
        raw = chan::RAW,
    )
}

/// MiniC source of the DCT + quantisation process. Entry: `main(blocks)`.
pub fn transform_source() -> String {
    format!(
        r#"
// 2-D 8x8 DCT (rows then columns, Q10 fixed point) plus quantisation.
int ct[64] = {{{ct}}};
int qt[64] = {{{qt}}};
int blk[64];
int tmp[64];
void main(int blocks) {{
    for (int b = 0; b < blocks; b++) {{
        for (int i = 0; i < 64; i++) {{ blk[i] = ch_recv({raw}); }}
        for (int y = 0; y < 8; y++) {{
            for (int u = 0; u < 8; u++) {{
                int acc = 0;
                for (int x = 0; x < 8; x++) {{
                    acc += blk[y * 8 + x] * ct[u * 8 + x];
                }}
                tmp[y * 8 + u] = acc >> 10;
            }}
        }}
        for (int u = 0; u < 8; u++) {{
            for (int v = 0; v < 8; v++) {{
                int acc = 0;
                for (int y = 0; y < 8; y++) {{
                    acc += tmp[y * 8 + u] * ct[v * 8 + y];
                }}
                int coeff = acc >> 10;
                ch_send({quant}, coeff / qt[v * 8 + u]);
            }}
        }}
    }}
}}
"#,
        ct = dct_table(),
        qt = quant_table(),
        raw = chan::RAW,
        quant = chan::QUANT,
    )
}

/// MiniC source of the zigzag + run-length encoder. Entry: `main(blocks)`.
pub fn encoder_source() -> String {
    format!(
        r#"
// Zigzag scan, then (run, level) pairs packed as run*4096 + (level & 4095),
// preceded by the word count for the block.
int zz[64] = {{{zz}}};
int coeffs[64];
int packed[66];
void main(int blocks) {{
    for (int b = 0; b < blocks; b++) {{
        for (int i = 0; i < 64; i++) {{ coeffs[i] = ch_recv({quant}); }}
        int n = 0;
        int run = 0;
        for (int i = 0; i < 64; i++) {{
            int level = coeffs[zz[i]];
            if (level == 0) {{
                run++;
            }} else {{
                packed[n] = run * 4096 + (level & 4095);
                n++;
                run = 0;
            }}
        }}
        ch_send({packed}, n);
        for (int i = 0; i < n; i++) {{ ch_send({packed}, packed[i]); }}
    }}
}}
"#,
        zz = zigzag_table(),
        quant = chan::QUANT,
        packed = chan::PACKED,
    )
}

/// MiniC source of the store/sink process. Entry: `main(blocks)`.
pub fn store_source() -> String {
    format!(
        r#"
// Accumulate compressed size and a checksum of the packed stream.
void main(int blocks) {{
    int words = 0;
    int checksum = 0;
    for (int b = 0; b < blocks; b++) {{
        int n = ch_recv({packed});
        words += n;
        for (int i = 0; i < n; i++) {{
            int w = ch_recv({packed});
            checksum = (checksum ^ w) + ((checksum << 1) & 0xffff);
        }}
    }}
    out(words);
    out(checksum);
}}
"#,
        packed = chan::PACKED,
    )
}

/// Builds the image pipeline as a pipeline artifact. With `accelerated`
/// set, the DCT transform runs on a custom-HW PE (the paper's Fig. 4
/// scenario); the other processes share the CPU. Sources are lowered
/// through `pipeline`'s shared front-end (the scalar cleanups run, so the
/// op mix matches compiled code).
///
/// # Errors
///
/// Propagates [`PipelineError`] (should not occur for the built-in
/// sources).
pub fn image_design(
    pipeline: &Pipeline,
    accelerated: bool,
    params: ImageParams,
    icache_bytes: u32,
    dcache_bytes: u32,
) -> Result<PreparedDesign, PipelineError> {
    let mut b = DesignBuilder::new(pipeline, if accelerated { "image-hw" } else { "image-sw" });
    let cpu = b.add_pe("cpu", library::microblaze_like(icache_bytes, dcache_bytes));
    let transform_pe =
        if accelerated { b.add_pe("dct_hw", library::custom_hw("dct_hw", 2, 2)) } else { cpu };
    let blocks = i64::from(params.blocks);
    b.add_process("camera", &camera_source(), "main", &[i64::from(params.seed), blocks], cpu)?;
    b.add_process("transform", &transform_source(), "main", &[blocks], transform_pe)?;
    b.add_process("encoder", &encoder_source(), "main", &[blocks], cpu)?;
    b.add_process("store", &store_source(), "main", &[blocks], cpu)?;
    b.build()
}

/// [`image_design`] on the process-wide pipeline, returning the bare
/// platform.
///
/// # Errors
///
/// Same as [`image_design`].
pub fn build_image_platform(
    accelerated: bool,
    params: ImageParams,
    icache_bytes: u32,
    dcache_bytes: u32,
) -> Result<Platform, PipelineError> {
    Ok(image_design(Pipeline::global(), accelerated, params, icache_bytes, dcache_bytes)?.platform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm_platform::tlm::{run_tlm, TlmConfig, TlmMode};

    #[test]
    fn sources_parse_and_lower() {
        for (name, src) in [
            ("camera", camera_source()),
            ("transform", transform_source()),
            ("encoder", encoder_source()),
            ("store", store_source()),
        ] {
            Pipeline::global().frontend(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn pipeline_compresses_something() {
        let p =
            build_image_platform(false, ImageParams::small(), 8 << 10, 4 << 10).expect("builds");
        let r = run_tlm(&p, TlmMode::Functional, &TlmConfig::default()).expect("runs");
        assert!(r.all_finished());
        let outs = &r.outputs["store"];
        assert_eq!(outs.len(), 2);
        let words = outs[0];
        // Compression: fewer than 64 words per block, more than zero.
        let blocks = i64::from(ImageParams::small().blocks);
        assert!(words > 0 && words < blocks * 64, "compressed to {words} words");
    }

    #[test]
    fn acceleration_preserves_output_and_saves_time() {
        let params = ImageParams::small();
        let sw = build_image_platform(false, params, 8 << 10, 4 << 10).expect("builds");
        let hw = build_image_platform(true, params, 8 << 10, 4 << 10).expect("builds");
        let rs = run_tlm(&sw, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        let rh = run_tlm(&hw, TlmMode::Timed, &TlmConfig::default()).expect("runs");
        assert_eq!(rs.outputs["store"], rh.outputs["store"]);
        assert!(rh.end_time < rs.end_time, "hw {} vs sw {}", rh.end_time, rs.end_time);
    }

    #[test]
    fn zigzag_table_is_a_permutation() {
        let text = zigzag_table();
        let mut seen = [false; 64];
        for tok in text.split(", ") {
            let v: usize = tok.parse().expect("number");
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
