//! Cycle-accurate in-order timing model — the "board measurement" stand-in.
//!
//! Models a single-issue in-order 5-stage core with blocking caches, a real
//! branch predictor and full forwarding, using the standard scoreboard
//! formulation: each retired instruction advances the cycle counter by its
//! issue slot plus any stall it incurs (i-cache miss, operand-not-ready,
//! structural hazard on the multiplier/divider, d-cache miss, branch
//! misprediction). For an in-order pipeline this is cycle-equivalent to
//! simulating the stages explicitly, and it is what the estimator's output
//! is judged against in Tables 2 and 3.
//!
//! Direct jumps, calls and returns are charged one issue cycle and no
//! refill (an idealized instruction buffer); conditional branches pay
//! `branch_penalty` on a misprediction.

use std::sync::Arc;

use crate::branch::{Predictor, PredictorKind, PredictorStats};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::codegen::Program;
use crate::cpu::{Cpu, CpuExec, Step, StepInfo};
use crate::isa::{AluOp, Inst, Reg};

/// Configuration of the cycle-accurate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroArchConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Branch prediction scheme.
    pub predictor: PredictorKind,
    /// External memory latency in cycles (cache miss penalty).
    pub miss_penalty: u32,
    /// Refill cycles after a mispredicted conditional branch.
    pub branch_penalty: u32,
    /// Multiplier latency.
    pub mul_latency: u64,
    /// Divider latency.
    pub div_latency: u64,
    /// Cycles from load issue until a consumer may issue (hit).
    pub load_latency: u64,
    /// Instructions issued per cycle (in order); 1 models a scalar core,
    /// 2+ a superscalar front end. Taken control transfers always end the
    /// issue group.
    pub issue_width: u32,
}

impl MicroArchConfig {
    /// A MicroBlaze-like board configuration with the given cache sizes.
    pub fn microblaze_like(icache_bytes: u32, dcache_bytes: u32) -> MicroArchConfig {
        MicroArchConfig {
            icache: CacheConfig::direct_mapped(icache_bytes),
            dcache: CacheConfig::direct_mapped(dcache_bytes),
            predictor: PredictorKind::StaticBtfn,
            miss_penalty: 24,
            branch_penalty: 2,
            mul_latency: 3,
            div_latency: 32,
            load_latency: 2,
            issue_width: 1,
        }
    }
}

/// The cycle-accurate core.
#[derive(Debug, Clone)]
pub struct MicroArch {
    cpu: Cpu,
    config: MicroArchConfig,
    icache: Cache,
    dcache: Cache,
    predictor: Predictor,
    /// Current cycle (issue time of the most recent instruction).
    cycle: u64,
    /// Issue slots already used in the current cycle.
    slots_used: u32,
    /// Earliest cycle at which a consumer of each register may issue.
    reg_ready: [u64; 32],
    mul_free: u64,
    div_free: u64,
}

impl MicroArch {
    /// Builds the timed core around a fresh functional core.
    pub fn new(program: Arc<Program>, config: MicroArchConfig) -> MicroArch {
        MicroArch {
            cpu: Cpu::new(program),
            config,
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            predictor: Predictor::new(config.predictor),
            cycle: 0,
            slots_used: 0,
            reg_ready: [0; 32],
            mul_free: 0,
            div_free: 0,
        }
    }

    /// Cycles elapsed so far (the current partially-filled issue group
    /// counts as one cycle).
    pub fn cycles(&self) -> u64 {
        self.cycle + u64::from(self.slots_used > 0)
    }

    /// The functional core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// I-cache counters (for characterization).
    pub fn icache_stats(&self) -> &CacheStats {
        self.icache.stats()
    }

    /// D-cache counters (for characterization).
    pub fn dcache_stats(&self) -> &CacheStats {
        self.dcache.stats()
    }

    /// Predictor counters (for characterization).
    pub fn predictor_stats(&self) -> &PredictorStats {
        self.predictor.stats()
    }

    /// Advances the clock for externally-imposed waiting (bus arbitration,
    /// blocked channels) during platform co-simulation.
    pub fn advance_cycles(&mut self, n: u64) {
        self.cycle += n;
    }

    /// Delivers a pending receive; the transfer itself costs one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a receive.
    pub fn complete_recv(&mut self, value: i32) {
        self.cycle += 1;
        self.cpu.complete_recv(value);
    }

    /// Completes a pending send; the transfer itself costs one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a send.
    pub fn complete_send(&mut self) {
        self.cycle += 1;
        self.cpu.complete_send();
    }

    /// Runs until halt, suspension, trap or fuel exhaustion.
    pub fn run(&mut self, mut fuel: u64) -> CpuExec {
        loop {
            if fuel == 0 {
                return CpuExec::OutOfFuel;
            }
            fuel -= 1;
            match self.cpu.step_info() {
                Step::Retired(info) => self.account(&info),
                Step::Stopped(exec) => return exec,
            }
        }
    }

    fn account(&mut self, info: &StepInfo) {
        // Claim an issue slot; a full group starts the next cycle.
        if self.slots_used >= self.config.issue_width.max(1) {
            self.cycle += 1;
            self.slots_used = 0;
        }

        // Instruction fetch through the i-cache (blocking).
        let fetch_addr = (info.pc as u32) * 4;
        if !self.icache.access(fetch_addr) {
            self.cycle += u64::from(self.config.miss_penalty);
            self.slots_used = 0;
        }

        // Operand stalls (full forwarding: reg_ready holds the earliest
        // issue cycle of a consumer). An in-order core cannot issue a
        // younger instruction past a stalled one, so a stall starts a new
        // issue group.
        let (srcs, dst) = inst_regs(&info.inst);
        for src in srcs.into_iter().flatten() {
            let ready = self.reg_ready[src.0 as usize];
            if ready > self.cycle {
                self.cycle = ready;
                self.slots_used = 0;
            }
        }

        // Structural hazards on long-latency units.
        let exec_latency: u64 = match info.inst {
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
                AluOp::Mul => {
                    if self.mul_free > self.cycle {
                        self.cycle = self.mul_free;
                        self.slots_used = 0;
                    }
                    self.mul_free = self.cycle + self.config.mul_latency;
                    self.config.mul_latency
                }
                AluOp::Div | AluOp::Rem => {
                    if self.div_free > self.cycle {
                        self.cycle = self.div_free;
                        self.slots_used = 0;
                    }
                    self.div_free = self.cycle + self.config.div_latency;
                    self.config.div_latency
                }
                _ => 1,
            },
            _ => 1,
        };

        // Data access through the d-cache (blocking).
        let mut result_latency = exec_latency;
        if let Some((addr, _is_store)) = info.mem {
            if !self.dcache.access(addr) {
                self.cycle += u64::from(self.config.miss_penalty);
                self.slots_used = 0;
            }
            result_latency = self.config.load_latency;
        }

        // Branch resolution.
        if let Some(taken) = info.taken {
            let correct = self.predictor.predict_and_update(info.pc, info.next_pc, taken);
            if !correct {
                self.cycle += u64::from(self.config.branch_penalty);
                self.slots_used = 0;
            } else if taken {
                // A correctly-predicted taken branch still ends the group
                // (the fetch redirects).
                self.slots_used = self.config.issue_width;
            }
        }
        self.slots_used += 1;

        // Publish the result time.
        if let Some(rd) = dst {
            if rd != Reg::ZERO {
                self.reg_ready[rd.0 as usize] = self.cycle + result_latency;
            }
        }
    }
}

/// Source and destination registers of an instruction.
fn inst_regs(inst: &Inst) -> ([Option<Reg>; 3], Option<Reg>) {
    match *inst {
        Inst::Alu { rd, rs1, rs2, .. } => ([Some(rs1), Some(rs2), None], Some(rd)),
        Inst::AluI { rd, rs1, .. } => ([Some(rs1), None, None], Some(rd)),
        Inst::Lw { rd, base, .. } => ([Some(base), None, None], Some(rd)),
        Inst::Sw { rs, base, .. } => ([Some(rs), Some(base), None], None),
        Inst::Lwx { rd, base, index } => ([Some(base), Some(index), None], Some(rd)),
        Inst::Swx { rs, base, index } => ([Some(rs), Some(base), Some(index)], None),
        Inst::Branch { rs1, rs2, .. } => ([Some(rs1), Some(rs2), None], None),
        Inst::Jump { .. } => ([None; 3], None),
        Inst::Jal { .. } => ([None; 3], Some(Reg::RA)),
        Inst::Jr { rs } => ([Some(rs), None, None], None),
        Inst::CRecv { rd, .. } => ([None; 3], Some(rd)),
        Inst::CSend { rs, .. } => ([Some(rs), None, None], None),
        Inst::Out { rs } => ([Some(rs), None, None], None),
        Inst::Halt => ([None; 3], None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_program;

    fn board_for(src: &str, icache: u32, dcache: u32) -> MicroArch {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let id = module.function_id("main").expect("main");
        let program = Arc::new(build_program(&module, id, &[]).expect("compiles"));
        MicroArch::new(program, MicroArchConfig::microblaze_like(icache, dcache))
    }

    const WORK: &str = "int t[512];
        void main() {
            for (int i = 0; i < 512; i++) { t[i] = i * 7 + 3; }
            int s = 0;
            for (int i = 0; i < 512; i++) { s += t[i] >> 1; }
            out(s);
        }";

    #[test]
    fn cycles_at_least_instructions() {
        let mut board = board_for(WORK, 8 << 10, 4 << 10);
        assert_eq!(board.run(u64::MAX), CpuExec::Done);
        assert!(board.cycles() >= board.cpu().stats().instructions);
    }

    #[test]
    fn cache_size_sweep_is_monotone() {
        let mut cycles = Vec::new();
        for (ic, dc) in [(0, 0), (2 << 10, 2 << 10), (8 << 10, 4 << 10), (32 << 10, 16 << 10)] {
            let mut board = board_for(WORK, ic, dc);
            board.run(u64::MAX);
            cycles.push(board.cycles());
        }
        for pair in cycles.windows(2) {
            assert!(pair[0] >= pair[1], "more cache never hurts here: {cycles:?}");
        }
        assert!(cycles[0] > cycles[3] * 2, "cacheless should be dramatically slower: {cycles:?}");
    }

    #[test]
    fn dependent_multiplies_pay_latency() {
        let chain = "void main() {
            int a = 3;
            for (int i = 0; i < 1000; i++) { a = a * a + 1; }
            out(a);
        }";
        let loop_only = "void main() {
            int a = 3;
            for (int i = 0; i < 1000; i++) { a = a + 1; }
            out(a);
        }";
        let mut with_mul = board_for(chain, 32 << 10, 16 << 10);
        with_mul.run(u64::MAX);
        let mut without = board_for(loop_only, 32 << 10, 16 << 10);
        without.run(u64::MAX);
        // 1000 multiplies at ~3 cycles each must show up.
        assert!(with_mul.cycles() > without.cycles() + 1500);
    }

    #[test]
    fn predictor_stats_are_collected() {
        let mut board = board_for(WORK, 8 << 10, 4 << 10);
        board.run(u64::MAX);
        let stats = board.predictor_stats();
        assert!(stats.branches >= 1024);
        // Loop-closing backward branches are predicted well by BTFN.
        assert!(stats.miss_rate() < 0.2, "rate {}", stats.miss_rate());
    }

    #[test]
    fn cache_stats_reflect_locality() {
        let mut board = board_for(WORK, 8 << 10, 4 << 10);
        board.run(u64::MAX);
        assert!(board.icache_stats().hit_rate() > 0.95, "tiny loop body");
        assert!(board.dcache_stats().hit_rate() > 0.5, "sequential sweep");
    }

    #[test]
    fn functional_behaviour_is_untouched() {
        let mut board = board_for(WORK, 2 << 10, 2 << 10);
        board.run(u64::MAX);
        let expect: i64 = (0..512).map(|i| (i * 7 + 3) >> 1).sum();
        assert_eq!(board.cpu().outputs(), [expect]);
    }

    #[test]
    fn dual_issue_speeds_up_independent_work_only() {
        let ilp = "void main() {
            int a = 0; int b = 0; int c = 0; int d = 0;
            for (int i = 0; i < 500; i++) {
                a += i; b ^= i; c += 2; d ^= 3;
            }
            out(a + b + c + d);
        }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(ilp).expect("parses")).expect("lowers");
        let id = module.function_id("main").expect("main");
        let program = Arc::new(build_program(&module, id, &[]).expect("compiles"));
        let run = |width: u32| {
            let mut config = MicroArchConfig::microblaze_like(32 << 10, 16 << 10);
            config.issue_width = width;
            let mut board = MicroArch::new(program.clone(), config);
            assert_eq!(board.run(u64::MAX), CpuExec::Done);
            board.cycles()
        };
        let scalar = run(1);
        let dual = run(2);
        assert!(
            dual * 4 <= scalar * 3,
            "dual-issue should save >25% on ILP code: {dual} vs {scalar}"
        );
        assert!(dual * 2 >= scalar, "cannot beat the 2x issue bound");

        // A fully serial dependence chain gains almost nothing from issue
        // width (no loop: loop control itself would be parallel work).
        let mut serial = String::from("void main() { int a = 1;\n");
        for _ in 0..200 {
            serial.push_str("a = a * 3 + 1;\n");
        }
        serial.push_str("out(a); }");
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(&serial).expect("parses")).expect("lowers");
        let id = module.function_id("main").expect("main");
        let program = Arc::new(build_program(&module, id, &[]).expect("compiles"));
        let run = |width: u32| {
            let mut config = MicroArchConfig::microblaze_like(32 << 10, 16 << 10);
            config.issue_width = width;
            let mut board = MicroArch::new(program.clone(), config);
            board.run(u64::MAX);
            board.cycles()
        };
        let scalar = run(1);
        let dual = run(2);
        assert!(dual * 10 >= scalar * 9, "serial chain gains <10%: {dual} vs {scalar}");
    }

    #[test]
    fn advance_cycles_adds_idle_time() {
        let mut board = board_for("void main() { }", 0, 0);
        board.run(u64::MAX);
        let before = board.cycles();
        board.advance_cycles(100);
        assert_eq!(board.cycles(), before + 100);
    }
}
