//! Code generation: CDFG IR → ISA, with linear-scan register allocation.
//!
//! The board and ISS models must execute *compiled-looking* code — the
//! paper's estimator assumes roughly one target instruction per IR
//! operation, which only holds if the back-end keeps values in registers.
//! This back-end does:
//!
//! - linear-scan register allocation over whole-function live intervals
//!   (non-SSA: an interval spans a register's first to last occurrence,
//!   which safely covers loop-carried values);
//! - a callee-saved ABI (a function saves every allocatable register it
//!   uses, plus `ra`), so calls do not disturb caller values;
//! - arguments in `r4..r7` and `r24..r27` (up to 8), return value in `r2`;
//! - indexed loads/stores (`lwx`/`swx`) for array accesses so a CDFG
//!   load/store expands to at most base-materialization plus one memory
//!   instruction.
//!
//! The emitted [`Program`] carries per-instruction metadata (owning
//! function and basic block) for profiling.

use std::error::Error;
use std::fmt;

use tlm_cdfg::ir::{
    ArrayScope, MemoryLayout, Module, OpKind, Terminator, UnOp, STACK_BASE, WORD_BYTES,
};
use tlm_cdfg::{ArrayId, BlockId, FuncId, VReg};
use tlm_minic::ast::BinOp;

use crate::isa::{AluOp, BrCond, Inst, Reg};

/// Registers the allocator may assign to IR virtual registers.
const ALLOCATABLE: [Reg; 13] = [
    Reg(12),
    Reg(13),
    Reg(14),
    Reg(15),
    Reg(16),
    Reg(17),
    Reg(18),
    Reg(19),
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(28),
];

/// Argument registers: `r4..r7` then `r24..r27`.
const ARG_REGS: [Reg; 8] = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(24), Reg(25), Reg(26), Reg(27)];

/// A compiled program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instruction stream.
    pub insts: Vec<Inst>,
    /// Owning (function, block) of each instruction.
    pub meta: Vec<(FuncId, BlockId)>,
    /// Initial data memory contents (byte address, value).
    pub globals_image: Vec<(u32, i32)>,
    /// The shared memory layout.
    pub layout: MemoryLayout,
    /// Index of the first startup-stub instruction.
    pub entry_pc: usize,
    /// Entry pc of each function.
    pub func_entry: Vec<usize>,
}

impl Program {
    /// Renders the whole program as assembly text.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:6}: {}", inst.mnemonic());
        }
        out
    }
}

/// A code-generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Description of the unsupported construct.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code generation failed: {}", self.message)
    }
}

impl Error for CodegenError {}

/// Compiles `module`, with a startup stub that calls `entry` with the given
/// constant arguments and halts.
///
/// # Errors
///
/// Returns [`CodegenError`] for unsupported shapes (more than 8 parameters).
pub fn build_program(
    module: &Module,
    entry: FuncId,
    entry_args: &[i64],
) -> Result<Program, CodegenError> {
    let layout = MemoryLayout::of(module);
    let mut insts: Vec<Inst> = Vec::new();
    let mut meta: Vec<(FuncId, BlockId)> = Vec::new();
    let mut call_fixups: Vec<(usize, FuncId)> = Vec::new();

    // Startup stub.
    let entry_func = module.function(entry);
    if entry_args.len() != entry_func.params.len() {
        return Err(CodegenError {
            message: format!(
                "entry `{}` expects {} args, got {}",
                entry_func.name,
                entry_func.params.len(),
                entry_args.len()
            ),
        });
    }
    let stub_meta = (entry, BlockId(0));
    insts.push(Inst::AluI { op: AluOp::Add, rd: Reg::SP, rs1: Reg::ZERO, imm: STACK_BASE as i32 });
    meta.push(stub_meta);
    for (i, &arg) in entry_args.iter().enumerate() {
        let Some(&reg) = ARG_REGS.get(i) else {
            return Err(CodegenError { message: "entry takes more than 8 args".into() });
        };
        insts.push(Inst::AluI { op: AluOp::Add, rd: reg, rs1: Reg::ZERO, imm: arg as i32 });
        meta.push(stub_meta);
    }
    call_fixups.push((insts.len(), entry));
    insts.push(Inst::Jal { target: usize::MAX });
    meta.push(stub_meta);
    insts.push(Inst::Halt);
    meta.push(stub_meta);

    // Functions.
    let mut func_entry = vec![0usize; module.functions.len()];
    for (fid, _) in module.functions_iter() {
        func_entry[fid.0 as usize] = insts.len();
        FuncEmitter::new(module, &layout, fid, &mut insts, &mut meta, &mut call_fixups).emit()?;
    }
    for (at, fid) in call_fixups {
        let Inst::Jal { target } = &mut insts[at] else {
            unreachable!("call fixup points at a jal");
        };
        *target = func_entry[fid.0 as usize];
    }

    // Global data image.
    let mut globals_image = Vec::new();
    for (i, array) in module.arrays.iter().enumerate() {
        if array.scope == ArrayScope::Global {
            let base = layout.array_base[i];
            for (j, &v) in array.init.iter().enumerate() {
                globals_image.push((base + (j as u32) * WORD_BYTES, v as i32));
            }
        }
    }

    Ok(Program { insts, meta, globals_image, layout, entry_pc: 0, func_entry })
}

/// Where a virtual register lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    /// Byte offset from `sp`.
    Spill(i32),
}

struct FuncEmitter<'a> {
    module: &'a Module,
    layout: &'a MemoryLayout,
    fid: FuncId,
    insts: &'a mut Vec<Inst>,
    meta: &'a mut Vec<(FuncId, BlockId)>,
    call_fixups: &'a mut Vec<(usize, FuncId)>,
    /// Per-vreg location.
    locs: Vec<Loc>,
    /// Registers actually used by the allocation (to save/restore).
    used_regs: Vec<Reg>,
    frame_bytes: i32,
    locals_off: i32,
    /// (instruction index, block) pairs to patch with block starts.
    block_fixups: Vec<(usize, BlockId)>,
    /// Instructions that must be patched to the epilogue.
    epilogue_fixups: Vec<usize>,
    current_block: BlockId,
}

impl<'a> FuncEmitter<'a> {
    fn new(
        module: &'a Module,
        layout: &'a MemoryLayout,
        fid: FuncId,
        insts: &'a mut Vec<Inst>,
        meta: &'a mut Vec<(FuncId, BlockId)>,
        call_fixups: &'a mut Vec<(usize, FuncId)>,
    ) -> Self {
        FuncEmitter {
            module,
            layout,
            fid,
            insts,
            meta,
            call_fixups,
            locs: Vec::new(),
            used_regs: Vec::new(),
            frame_bytes: 0,
            locals_off: 0,
            block_fixups: Vec::new(),
            epilogue_fixups: Vec::new(),
            current_block: BlockId(0),
        }
    }

    fn emit(mut self) -> Result<(), CodegenError> {
        let func = self.module.function(self.fid);
        if func.params.len() > ARG_REGS.len() {
            return Err(CodegenError {
                message: format!(
                    "function `{}` has {} parameters; the ABI supports {}",
                    func.name,
                    func.params.len(),
                    ARG_REGS.len()
                ),
            });
        }

        let (locs, used_regs, n_spills) = allocate_registers(self.module, self.fid);
        self.locs = locs;
        self.used_regs = used_regs;

        // Frame: [ra][saved regs][spills][local arrays], sp-relative.
        let saved_bytes = 4 * (1 + self.used_regs.len() as i32);
        let spill_base = saved_bytes;
        let locals_off = spill_base + 4 * n_spills as i32;
        let locals_bytes = (self.layout.frame_words[self.fid.0 as usize] * WORD_BYTES) as i32;
        self.locals_off = locals_off;
        self.frame_bytes = (locals_off + locals_bytes + 7) & !7;
        // Rebase spill offsets now that the spill area start is known.
        for loc in &mut self.locs {
            if let Loc::Spill(slot) = loc {
                *slot = spill_base + *slot * 4;
            }
        }

        // Prologue.
        self.current_block = BlockId(0);
        self.push(Inst::AluI { op: AluOp::Add, rd: Reg::SP, rs1: Reg::ZERO, imm: 0 });
        // Replace the placeholder with the real frame adjust (kept simple:
        // emit directly).
        let last = self.insts.len() - 1;
        self.insts[last] =
            Inst::AluI { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: -self.frame_bytes };
        self.push(Inst::Sw { rs: Reg::RA, base: Reg::SP, offset: 0 });
        let used = self.used_regs.clone();
        for (i, reg) in used.iter().enumerate() {
            self.push(Inst::Sw { rs: *reg, base: Reg::SP, offset: 4 * (1 + i as i32) });
        }
        // Move parameters to their homes.
        for (i, &param) in func.params.iter().enumerate() {
            let arg_reg = ARG_REGS[i];
            match self.locs[param.0 as usize] {
                Loc::Reg(r) => {
                    self.push(Inst::Alu { op: AluOp::Add, rd: r, rs1: arg_reg, rs2: Reg::ZERO });
                }
                Loc::Spill(off) => {
                    self.push(Inst::Sw { rs: arg_reg, base: Reg::SP, offset: off });
                }
            }
        }
        // Initialize local arrays (zero-fill, then explicit initializers).
        for &aid in &func.local_arrays {
            self.init_local_array(aid);
        }
        // The entry block is emitted immediately after the prologue, so
        // control simply falls through into it.

        // Blocks.
        let mut block_start = vec![0usize; func.blocks.len()];
        for (bid, block) in func.blocks_iter() {
            block_start[bid.0 as usize] = self.insts.len();
            self.current_block = bid;
            for op in &block.ops {
                self.emit_op(op)?;
            }
            // Fall-through-aware terminators: like a compiler's block
            // layout, a branch whose target is the next block is inverted
            // or dropped. This keeps loop-closing conditionals mostly
            // not-taken, which static predictors handle well.
            let next = BlockId(bid.0 + 1);
            match &block.term {
                Terminator::Jump(b) => {
                    if *b != next {
                        self.emit_jump_to(*b);
                    }
                }
                Terminator::Branch { cond, then_bb, else_bb } => {
                    let c = self.use_reg(*cond, Reg::T0);
                    if *then_bb == next {
                        // Fall through into the then-block; branch away on 0.
                        let at = self.insts.len();
                        self.block_fixups.push((at, *else_bb));
                        self.push(Inst::Branch {
                            cond: BrCond::Eq,
                            rs1: c,
                            rs2: Reg::ZERO,
                            target: usize::MAX,
                        });
                    } else {
                        let at = self.insts.len();
                        self.block_fixups.push((at, *then_bb));
                        self.push(Inst::Branch {
                            cond: BrCond::Ne,
                            rs1: c,
                            rs2: Reg::ZERO,
                            target: usize::MAX,
                        });
                        if *else_bb != next {
                            self.emit_jump_to(*else_bb);
                        }
                    }
                }
                Terminator::Return(value) => {
                    if let Some(v) = value {
                        let r = self.use_reg(*v, Reg::T0);
                        self.push(Inst::Alu {
                            op: AluOp::Add,
                            rd: Reg::RV,
                            rs1: r,
                            rs2: Reg::ZERO,
                        });
                    }
                    self.epilogue_fixups.push(self.insts.len());
                    self.push(Inst::Jump { target: usize::MAX });
                }
            }
        }

        // Epilogue.
        let epilogue = self.insts.len();
        self.push(Inst::Lw { rd: Reg::RA, base: Reg::SP, offset: 0 });
        let used = self.used_regs.clone();
        for (i, reg) in used.iter().enumerate() {
            self.push(Inst::Lw { rd: *reg, base: Reg::SP, offset: 4 * (1 + i as i32) });
        }
        self.push(Inst::AluI { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: self.frame_bytes });
        self.push(Inst::Jr { rs: Reg::RA });

        // Patch intra-function targets.
        for (at, bid) in std::mem::take(&mut self.block_fixups) {
            match &mut self.insts[at] {
                Inst::Branch { target, .. } | Inst::Jump { target } => {
                    *target = block_start[bid.0 as usize];
                }
                other => unreachable!("block fixup on {other:?}"),
            }
        }
        for at in std::mem::take(&mut self.epilogue_fixups) {
            let Inst::Jump { target } = &mut self.insts[at] else {
                unreachable!("epilogue fixup on a jump");
            };
            *target = epilogue;
        }
        Ok(())
    }

    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
        self.meta.push((self.fid, self.current_block));
    }

    fn emit_jump_to(&mut self, target: BlockId) {
        let at = self.insts.len();
        self.block_fixups.push((at, target));
        self.push(Inst::Jump { target: usize::MAX });
    }

    fn init_local_array(&mut self, aid: ArrayId) {
        let array = self.module.array(aid);
        let base_off = self.locals_off + self.layout.array_base[aid.0 as usize] as i32;
        if array.len > array.init.len() {
            // Zero-fill loop: t0 = cursor, t1 = end.
            self.push(Inst::AluI { op: AluOp::Add, rd: Reg::T0, rs1: Reg::SP, imm: base_off });
            self.push(Inst::AluI {
                op: AluOp::Add,
                rd: Reg::T1,
                rs1: Reg::T0,
                imm: (array.len as i32) * 4,
            });
            let loop_top = self.insts.len();
            self.push(Inst::Sw { rs: Reg::ZERO, base: Reg::T0, offset: 0 });
            self.push(Inst::AluI { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: 4 });
            self.push(Inst::Branch {
                cond: BrCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::T1,
                target: loop_top,
            });
        }
        for (j, &v) in array.init.iter().enumerate() {
            self.push(Inst::AluI { op: AluOp::Add, rd: Reg::T2, rs1: Reg::ZERO, imm: v as i32 });
            self.push(Inst::Sw { rs: Reg::T2, base: Reg::SP, offset: base_off + (j as i32) * 4 });
        }
    }

    /// Materializes a vreg value in a register (loading spills into
    /// `scratch`).
    fn use_reg(&mut self, v: VReg, scratch: Reg) -> Reg {
        match self.locs[v.0 as usize] {
            Loc::Reg(r) => r,
            Loc::Spill(off) => {
                self.push(Inst::Lw { rd: scratch, base: Reg::SP, offset: off });
                scratch
            }
        }
    }

    /// The register a result should be computed into; spilled results go
    /// through `scratch` and [`FuncEmitter::finish_def`] stores them.
    fn def_reg(&mut self, v: VReg, scratch: Reg) -> Reg {
        match self.locs[v.0 as usize] {
            Loc::Reg(r) => r,
            Loc::Spill(_) => scratch,
        }
    }

    fn finish_def(&mut self, v: VReg, computed_in: Reg) {
        if let Loc::Spill(off) = self.locs[v.0 as usize] {
            self.push(Inst::Sw { rs: computed_in, base: Reg::SP, offset: off });
        }
    }

    /// Materializes the base address of an array into `scratch` (global:
    /// absolute; local: sp-relative).
    fn array_base(&mut self, aid: ArrayId, scratch: Reg) -> Reg {
        let array = self.module.array(aid);
        match array.scope {
            ArrayScope::Global => {
                let base = self.layout.array_base[aid.0 as usize] as i32;
                self.push(Inst::AluI { op: AluOp::Add, rd: scratch, rs1: Reg::ZERO, imm: base });
            }
            ArrayScope::Local(_) => {
                let off = self.locals_off + self.layout.array_base[aid.0 as usize] as i32;
                self.push(Inst::AluI { op: AluOp::Add, rd: scratch, rs1: Reg::SP, imm: off });
            }
        }
        scratch
    }

    fn emit_op(&mut self, op: &tlm_cdfg::ir::Op) -> Result<(), CodegenError> {
        match &op.kind {
            OpKind::Const(v) => {
                let dest = op.result.expect("const has result");
                let rd = self.def_reg(dest, Reg::T2);
                self.push(Inst::AluI { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: *v as i32 });
                self.finish_def(dest, rd);
            }
            OpKind::Copy => {
                let src = self.use_reg(op.args[0], Reg::T0);
                let dest = op.result.expect("copy has result");
                let rd = self.def_reg(dest, Reg::T2);
                self.push(Inst::Alu { op: AluOp::Add, rd, rs1: src, rs2: Reg::ZERO });
                self.finish_def(dest, rd);
            }
            OpKind::Un(un) => {
                let a = self.use_reg(op.args[0], Reg::T0);
                let dest = op.result.expect("unary has result");
                let rd = self.def_reg(dest, Reg::T2);
                match un {
                    UnOp::Neg => {
                        self.push(Inst::Alu { op: AluOp::Sub, rd, rs1: Reg::ZERO, rs2: a });
                    }
                    UnOp::Not => {
                        self.push(Inst::Alu { op: AluOp::Seq, rd, rs1: a, rs2: Reg::ZERO });
                    }
                    UnOp::BitNot => {
                        self.push(Inst::AluI { op: AluOp::Xor, rd, rs1: a, imm: -1 });
                    }
                }
                self.finish_def(dest, rd);
            }
            OpKind::Bin(bin) => {
                let a = self.use_reg(op.args[0], Reg::T0);
                let b = self.use_reg(op.args[1], Reg::T1);
                let dest = op.result.expect("binary has result");
                let rd = self.def_reg(dest, Reg::T2);
                let (alu, swap) = map_binop(*bin);
                let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
                self.push(Inst::Alu { op: alu, rd, rs1, rs2 });
                self.finish_def(dest, rd);
            }
            OpKind::Load { array } => {
                let index = self.use_reg(op.args[0], Reg::T0);
                let base = self.array_base(*array, Reg::T1);
                let dest = op.result.expect("load has result");
                let rd = self.def_reg(dest, Reg::T2);
                self.push(Inst::Lwx { rd, base, index });
                self.finish_def(dest, rd);
            }
            OpKind::Store { array } => {
                let index = self.use_reg(op.args[0], Reg::T0);
                let value = self.use_reg(op.args[1], Reg::T2);
                let base = self.array_base(*array, Reg::T1);
                self.push(Inst::Swx { rs: value, base, index });
            }
            OpKind::Call { func } => {
                let callee = self.module.function(*func);
                if callee.params.len() > ARG_REGS.len() {
                    return Err(CodegenError {
                        message: format!(
                            "call to `{}` with {} args exceeds the ABI limit",
                            callee.name,
                            callee.params.len()
                        ),
                    });
                }
                for (i, &arg) in op.args.iter().enumerate() {
                    let src = self.use_reg(arg, Reg::T0);
                    self.push(Inst::Alu {
                        op: AluOp::Add,
                        rd: ARG_REGS[i],
                        rs1: src,
                        rs2: Reg::ZERO,
                    });
                }
                self.call_fixups.push((self.insts.len(), *func));
                self.push(Inst::Jal { target: usize::MAX });
                if let Some(dest) = op.result {
                    let rd = self.def_reg(dest, Reg::T2);
                    self.push(Inst::Alu { op: AluOp::Add, rd, rs1: Reg::RV, rs2: Reg::ZERO });
                    self.finish_def(dest, rd);
                }
            }
            OpKind::ChanRecv { chan } => {
                let dest = op.result.expect("recv has result");
                let rd = self.def_reg(dest, Reg::T2);
                self.push(Inst::CRecv { rd, chan: chan.0 });
                self.finish_def(dest, rd);
            }
            OpKind::ChanSend { chan } => {
                let value = self.use_reg(op.args[0], Reg::T0);
                self.push(Inst::CSend { rs: value, chan: chan.0 });
            }
            OpKind::Output => {
                let value = self.use_reg(op.args[0], Reg::T0);
                self.push(Inst::Out { rs: value });
            }
        }
        Ok(())
    }
}

/// Maps an IR binary op to an ALU op, possibly swapping operands.
fn map_binop(bin: BinOp) -> (AluOp, bool) {
    match bin {
        BinOp::Add => (AluOp::Add, false),
        BinOp::Sub => (AluOp::Sub, false),
        BinOp::Mul => (AluOp::Mul, false),
        BinOp::Div => (AluOp::Div, false),
        BinOp::Rem => (AluOp::Rem, false),
        BinOp::Shl => (AluOp::Sll, false),
        BinOp::Shr => (AluOp::Sra, false),
        BinOp::Lt => (AluOp::Slt, false),
        BinOp::Le => (AluOp::Sle, false),
        BinOp::Gt => (AluOp::Slt, true),
        BinOp::Ge => (AluOp::Sle, true),
        BinOp::Eq => (AluOp::Seq, false),
        BinOp::Ne => (AluOp::Sne, false),
        BinOp::BitAnd => (AluOp::And, false),
        BinOp::BitOr => (AluOp::Or, false),
        BinOp::BitXor => (AluOp::Xor, false),
        BinOp::LogAnd | BinOp::LogOr => {
            unreachable!("short-circuit ops are lowered to control flow")
        }
    }
}

/// Linear-scan register allocation for one function.
///
/// Intervals are derived from real per-block liveness (backward dataflow),
/// not from occurrence positions alone: with loops and branchy layouts a
/// value can be live in a block that sits *after* its last textual use
/// (e.g. an `if` inside a loop whose arms are laid out after the loop's
/// step block), and occurrence-based intervals would let the allocator
/// clobber it.
///
/// Returns the per-vreg locations (spill offsets are *slot indices*, to be
/// rebased by the caller), the list of allocatable registers actually used
/// and the number of spill slots.
fn allocate_registers(module: &Module, fid: FuncId) -> (Vec<Loc>, Vec<Reg>, usize) {
    let func = module.function(fid);
    let n = func.num_vregs as usize;
    let n_blocks = func.blocks.len();

    // Per-block upward-exposed uses and definitions (in op order), plus the
    // layout position range of each block.
    let mut uses: Vec<Vec<bool>> = vec![vec![false; n]; n_blocks];
    let mut defs: Vec<Vec<bool>> = vec![vec![false; n]; n_blocks];
    let mut block_lo = vec![0usize; n_blocks];
    let mut block_hi = vec![0usize; n_blocks];
    let mut occurrence_lo = vec![usize::MAX; n];
    let mut occurrence_hi = vec![0usize; n];
    let mut pos = 0usize;
    fn mark_use(
        v: VReg,
        p: usize,
        uses_b: &mut [bool],
        defs_b: &[bool],
        lo: &mut [usize],
        hi: &mut [usize],
    ) {
        let i = v.0 as usize;
        if !defs_b[i] {
            uses_b[i] = true;
        }
        lo[i] = lo[i].min(p);
        hi[i] = hi[i].max(p);
    }
    for (b, block) in func.blocks.iter().enumerate() {
        block_lo[b] = pos + 1;
        for op in &block.ops {
            pos += 1;
            for &a in &op.args {
                mark_use(a, pos, &mut uses[b], &defs[b], &mut occurrence_lo, &mut occurrence_hi);
            }
            if let Some(r) = op.result {
                let i = r.0 as usize;
                defs[b][i] = true;
                occurrence_lo[i] = occurrence_lo[i].min(pos);
                occurrence_hi[i] = occurrence_hi[i].max(pos);
            }
        }
        pos += 1;
        match &block.term {
            Terminator::Branch { cond, .. } => {
                mark_use(
                    *cond,
                    pos,
                    &mut uses[b],
                    &defs[b],
                    &mut occurrence_lo,
                    &mut occurrence_hi,
                );
            }
            Terminator::Return(Some(v)) => {
                mark_use(*v, pos, &mut uses[b], &defs[b], &mut occurrence_lo, &mut occurrence_hi);
            }
            _ => {}
        }
        block_hi[b] = pos;
    }
    // Parameters are defined on entry.
    for &p in &func.params {
        occurrence_lo[p.0 as usize] = 0;
    }

    // Backward liveness to a fixpoint.
    let succs: Vec<Vec<usize>> = func
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|s| s.0 as usize).collect())
        .collect();
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; n]; n_blocks];
    let mut live_out: Vec<Vec<bool>> = vec![vec![false; n]; n_blocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n_blocks).rev() {
            for v in 0..n {
                let out = succs[b].iter().any(|&s| live_in[s][v]);
                if out != live_out[b][v] {
                    live_out[b][v] = out;
                    changed = true;
                }
                let inn = uses[b][v] || (out && !defs[b][v]);
                if inn != live_in[b][v] {
                    live_in[b][v] = inn;
                    changed = true;
                }
            }
        }
    }

    // Intervals: every occurrence plus the full span of every block the
    // value is live into or out of.
    let mut start = occurrence_lo;
    let mut end = occurrence_hi;
    for b in 0..n_blocks {
        for v in 0..n {
            if live_in[b][v] {
                start[v] = start[v].min(block_lo[b]);
                end[v] = end[v].max(block_lo[b]);
            }
            if live_out[b][v] {
                start[v] = start[v].min(block_hi[b]);
                end[v] = end[v].max(block_hi[b]);
            }
        }
    }

    let mut order: Vec<usize> = (0..n).filter(|&i| start[i] != usize::MAX).collect();
    order.sort_by_key(|&i| start[i]);

    let mut locs = vec![Loc::Spill(0); n];
    let mut free: Vec<Reg> = ALLOCATABLE.iter().rev().copied().collect();
    let mut active: Vec<usize> = Vec::new(); // vreg indices, sorted by end
    let mut used: Vec<Reg> = Vec::new();
    let mut n_spills = 0usize;
    let spill_slot = |locs: &mut Vec<Loc>, i: usize, n_spills: &mut usize| {
        locs[i] = Loc::Spill(*n_spills as i32);
        *n_spills += 1;
    };

    for &i in &order {
        // Expire finished intervals.
        let mut j = 0;
        while j < active.len() {
            let a = active[j];
            if end[a] < start[i] {
                if let Loc::Reg(r) = locs[a] {
                    free.push(r);
                }
                active.remove(j);
            } else {
                j += 1;
            }
        }
        if let Some(reg) = free.pop() {
            locs[i] = Loc::Reg(reg);
            if !used.contains(&reg) {
                used.push(reg);
            }
            active.push(i);
            active.sort_by_key(|&a| end[a]);
        } else {
            // Spill the interval that ends last.
            let &last = active.last().expect("active non-empty when no regs free");
            if end[last] > end[i] {
                let Loc::Reg(r) = locs[last] else { unreachable!("active holds regs") };
                locs[i] = Loc::Reg(r);
                spill_slot(&mut locs, last, &mut n_spills);
                active.pop();
                active.push(i);
                active.sort_by_key(|&a| end[a]);
            } else {
                spill_slot(&mut locs, i, &mut n_spills);
            }
        }
    }
    used.sort_by_key(|r| r.0);
    (locs, used, n_spills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, CpuExec};
    use std::sync::Arc;

    fn compile(src: &str, entry: &str, args: &[i64]) -> Program {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let id = module.function_id(entry).expect("entry exists");
        build_program(&module, id, args).expect("compiles")
    }

    fn run(src: &str, entry: &str, args: &[i64]) -> (Vec<i64>, Option<i32>) {
        let program = compile(src, entry, args);
        let mut cpu = Cpu::new(Arc::new(program));
        assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
        (cpu.outputs().to_vec(), cpu.return_value())
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        let src = "int f(int a, int b) { return (a * b + 7) % (a + 1) - (b >> 1); }";
        let (_, rv) = run(src, "f", &[13, 9]);
        assert_eq!(rv, Some((13 * 9 + 7) % 14 - 4));
    }

    #[test]
    fn loops_and_arrays_work() {
        let src = "void main() {
            int fib[12];
            fib[0] = 0; fib[1] = 1;
            for (int i = 2; i < 12; i++) { fib[i] = fib[i-1] + fib[i-2]; }
            out(fib[11]);
        }";
        let (outs, _) = run(src, "main", &[]);
        assert_eq!(outs, vec![89]);
    }

    #[test]
    fn calls_and_recursion() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
                   void main() { out(fact(7)); }";
        let (outs, _) = run(src, "main", &[]);
        assert_eq!(outs, vec![5040]);
    }

    #[test]
    fn globals_and_initializers() {
        let src = "int bias = 100;
                   int tab[4] = {1, 2, 3, 4};
                   void main() { bias += tab[3]; out(bias); }";
        let (outs, _) = run(src, "main", &[]);
        assert_eq!(outs, vec![104]);
    }

    #[test]
    fn local_array_zero_fill_and_init() {
        let src = "int f() { int t[6] = {5}; int s = 0;
                     for (int i = 0; i < 6; i++) { s += t[i]; }
                     return s; }
                   void main() { out(f()); }";
        let (outs, _) = run(src, "main", &[]);
        assert_eq!(outs, vec![5], "elements beyond the initializer are zero");
    }

    #[test]
    fn register_pressure_forces_spills_and_still_computes() {
        // 20+ simultaneously-live values exceed the 13 allocatable regs.
        let mut body = String::new();
        for i in 0..20 {
            body.push_str(&format!("int x{i} = a + {i};\n"));
        }
        body.push_str("int s = 0;\n");
        for i in 0..20 {
            body.push_str(&format!("s += x{i} * x{i};\n"));
        }
        let src = format!("int f(int a) {{ {body} return s; }}");
        let (_, rv) = run(&src, "f", &[3]);
        let expect: i32 = (0..20).map(|i| (3 + i) * (3 + i)).sum();
        assert_eq!(rv, Some(expect));
    }

    #[test]
    fn instruction_expansion_is_bounded() {
        // Compiled code should stay within ~2.5 instructions per IR op for
        // typical kernels; that bound is what makes the estimator's
        // fetch-count model workable.
        let src = "int t[64];
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += t[i] * (i + 1); }
                return s;
            }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let ops: usize = module.functions[0].op_count();
        let id = module.function_id("f").expect("f");
        let program = build_program(&module, id, &[64]).expect("compiles");
        let insts = program.insts.len();
        assert!(
            insts <= ops * 5 / 2 + 24,
            "{insts} instructions for {ops} ops is too much expansion"
        );
    }

    #[test]
    fn eight_arg_calls_are_supported_nine_rejected() {
        let ok = "int add8(int a, int b, int c, int d, int e, int f, int g, int h) {
                      return a + b + c + d + e + f + g + h;
                  }
                  void main() { out(add8(1, 2, 3, 4, 5, 6, 7, 8)); }";
        let (outs, _) = run(ok, "main", &[]);
        assert_eq!(outs, vec![36]);

        let too_many = "int f(int a, int b, int c, int d, int e, int g, int h, int i, int j) {
                            return a + j;
                        }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(too_many).expect("parses")).expect("lowers");
        let id = module.function_id("f").expect("f");
        assert!(build_program(&module, id, &[0; 9]).is_err());
    }

    #[test]
    fn disassembly_is_renderable() {
        let p = compile("void main() { out(1); }", "main", &[]);
        let text = p.disassemble();
        assert!(text.contains("halt"));
        assert!(text.contains("out "));
    }
}
