//! Branch predictors for the cycle-accurate board model.

/// Prediction schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Always predict not-taken.
    StaticNotTaken,
    /// Backward taken, forward not taken.
    StaticBtfn,
    /// Bimodal table of 2-bit saturating counters, indexed by pc.
    Bimodal {
        /// Table size (power of two).
        entries: u32,
    },
}

/// Prediction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub branches: u64,
    /// Mispredictions among them.
    pub mispredicts: u64,
}

impl PredictorStats {
    /// Misprediction ratio; 0.0 when no branches were seen.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// A branch predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    kind: PredictorKind,
    /// 2-bit saturating counters for the bimodal scheme.
    table: Vec<u8>,
    stats: PredictorStats,
}

impl Predictor {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics if a bimodal table size is not a power of two.
    pub fn new(kind: PredictorKind) -> Predictor {
        let table = match kind {
            PredictorKind::Bimodal { entries } => {
                assert!(entries.is_power_of_two(), "bimodal table must be a power of two");
                vec![1u8; entries as usize] // weakly not-taken
            }
            _ => Vec::new(),
        };
        Predictor { kind, table, stats: PredictorStats::default() }
    }

    /// The scheme in use.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Counters so far.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Predicts, then updates with the actual outcome. Returns `true` when
    /// the prediction was correct.
    pub fn predict_and_update(&mut self, pc: usize, target: usize, taken: bool) -> bool {
        let prediction = match self.kind {
            PredictorKind::StaticNotTaken => false,
            PredictorKind::StaticBtfn => target <= pc,
            PredictorKind::Bimodal { entries } => {
                let idx = pc & (entries as usize - 1);
                self.table[idx] >= 2
            }
        };
        if let PredictorKind::Bimodal { entries } = self.kind {
            let idx = pc & (entries as usize - 1);
            let counter = &mut self.table[idx];
            if taken {
                *counter = (*counter + 1).min(3);
            } else {
                *counter = counter.saturating_sub(1);
            }
        }
        self.stats.branches += 1;
        let correct = prediction == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_not_taken() {
        let mut p = Predictor::new(PredictorKind::StaticNotTaken);
        assert!(p.predict_and_update(10, 20, false));
        assert!(!p.predict_and_update(10, 20, true));
        assert_eq!(p.stats().branches, 2);
        assert_eq!(p.stats().mispredicts, 1);
        assert!((p.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn btfn_predicts_loop_back_edges() {
        let mut p = Predictor::new(PredictorKind::StaticBtfn);
        // Backward branch (loop): predicted taken.
        assert!(p.predict_and_update(100, 50, true));
        // Forward branch: predicted not taken.
        assert!(p.predict_and_update(100, 200, false));
    }

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = Predictor::new(PredictorKind::Bimodal { entries: 64 });
        // Warm up: always taken. After a couple of updates it predicts
        // taken and stays correct.
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict_and_update(42, 10, true) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "learned after warm-up, got {correct}");
    }

    #[test]
    fn bimodal_on_alternating_branch_is_poor() {
        let mut p = Predictor::new(PredictorKind::Bimodal { entries: 64 });
        for i in 0..100 {
            p.predict_and_update(42, 10, i % 2 == 0);
        }
        assert!(p.stats().miss_rate() > 0.4, "alternation defeats 2-bit counters");
    }

    #[test]
    fn empty_stats_rate() {
        let p = Predictor::new(PredictorKind::StaticNotTaken);
        assert_eq!(p.stats().miss_rate(), 0.0);
    }
}
