//! A two-way textual assembler: parses the exact syntax
//! [`Inst::mnemonic`] produces, so `disassemble ∘ assemble` and
//! `assemble ∘ disassemble` are both identities. Useful for golden tests,
//! hand-written test fixtures and inspecting compiled images.

use std::error::Error;
use std::fmt;

use crate::isa::{AluOp, BrCond, Inst, Reg};

/// An assembly syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn alu_by_name(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sle" => AluOp::Sle,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        _ => return None,
    })
}

struct Line<'a> {
    number: usize,
    text: &'a str,
}

impl Line<'_> {
    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError { line: self.number, message: message.into() }
    }

    fn reg(&self, token: &str) -> Result<Reg, AsmError> {
        let token = token.trim();
        let digits = token
            .strip_prefix('r')
            .ok_or_else(|| self.err(format!("expected register, got `{token}`")))?;
        let n: u8 = digits.parse().map_err(|_| self.err(format!("bad register `{token}`")))?;
        if n >= 32 {
            return Err(self.err(format!("register `{token}` out of range")));
        }
        Ok(Reg(n))
    }

    fn int(&self, token: &str) -> Result<i64, AsmError> {
        token.trim().parse().map_err(|_| self.err(format!("bad integer `{}`", token.trim())))
    }

    fn target(&self, token: &str) -> Result<usize, AsmError> {
        let token = token.trim();
        let digits = token
            .strip_prefix('@')
            .ok_or_else(|| self.err(format!("expected `@target`, got `{token}`")))?;
        digits.parse().map_err(|_| self.err(format!("bad target `{token}`")))
    }

    fn chan(&self, token: &str) -> Result<u32, AsmError> {
        let token = token.trim();
        let digits = token
            .strip_prefix("ch")
            .ok_or_else(|| self.err(format!("expected channel, got `{token}`")))?;
        digits.parse().map_err(|_| self.err(format!("bad channel `{token}`")))
    }

    /// Parses `offset(base)`.
    fn mem_operand(&self, token: &str) -> Result<(i32, Reg), AsmError> {
        let token = token.trim();
        let open = token
            .find('(')
            .ok_or_else(|| self.err(format!("expected `off(base)`, got `{token}`")))?;
        let close = token
            .strip_suffix(')')
            .ok_or_else(|| self.err(format!("expected `off(base)`, got `{token}`")))?;
        let offset = self.int(&token[..open])? as i32;
        let base = self.reg(&close[open + 1..])?;
        Ok((offset, base))
    }

    /// Parses `base[index]`.
    fn indexed_operand(&self, token: &str) -> Result<(Reg, Reg), AsmError> {
        let token = token.trim();
        let open = token
            .find('[')
            .ok_or_else(|| self.err(format!("expected `base[index]`, got `{token}`")))?;
        let inner = token
            .strip_suffix(']')
            .ok_or_else(|| self.err(format!("expected `base[index]`, got `{token}`")))?;
        Ok((self.reg(&token[..open])?, self.reg(&inner[open + 1..])?))
    }
}

/// Assembles the [`Inst::mnemonic`] syntax. Lines may carry an optional
/// leading `N:` address label (ignored), blank lines and `;` comments.
///
/// # Errors
///
/// Returns the first [`AsmError`] with its line number.
pub fn assemble(text: &str) -> Result<Vec<Inst>, AsmError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = Line { number: i + 1, text: raw };
        let mut body = raw;
        if let Some(semi) = body.find(';') {
            body = &body[..semi];
        }
        // Strip a leading `   12:` address label.
        if let Some(colon) = body.find(':') {
            if body[..colon].trim().chars().all(|c| c.is_ascii_digit())
                && !body[..colon].trim().is_empty()
            {
                body = &body[colon + 1..];
            }
        }
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        let (mnemonic, rest) = body.split_once(' ').unwrap_or((body, ""));
        let ops: Vec<&str> = if rest.trim().is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let argc = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(line.err(format!("`{mnemonic}` takes {n} operand(s), got {}", ops.len())))
            }
        };
        let _ = line.text;
        let inst = match mnemonic {
            m if alu_by_name(m).is_some() => {
                argc(3)?;
                Inst::Alu {
                    op: alu_by_name(m).expect("checked"),
                    rd: line.reg(ops[0])?,
                    rs1: line.reg(ops[1])?,
                    rs2: line.reg(ops[2])?,
                }
            }
            m if m.ends_with('i') && alu_by_name(&m[..m.len() - 1]).is_some() => {
                argc(3)?;
                Inst::AluI {
                    op: alu_by_name(&m[..m.len() - 1]).expect("checked"),
                    rd: line.reg(ops[0])?,
                    rs1: line.reg(ops[1])?,
                    imm: line.int(ops[2])? as i32,
                }
            }
            "lw" => {
                argc(2)?;
                let (offset, base) = line.mem_operand(ops[1])?;
                Inst::Lw { rd: line.reg(ops[0])?, base, offset }
            }
            "sw" => {
                argc(2)?;
                let (offset, base) = line.mem_operand(ops[1])?;
                Inst::Sw { rs: line.reg(ops[0])?, base, offset }
            }
            "lwx" => {
                argc(2)?;
                let (base, index) = line.indexed_operand(ops[1])?;
                Inst::Lwx { rd: line.reg(ops[0])?, base, index }
            }
            "swx" => {
                argc(2)?;
                let (base, index) = line.indexed_operand(ops[1])?;
                Inst::Swx { rs: line.reg(ops[0])?, base, index }
            }
            "beq" | "bne" => {
                argc(3)?;
                Inst::Branch {
                    cond: if mnemonic == "beq" { BrCond::Eq } else { BrCond::Ne },
                    rs1: line.reg(ops[0])?,
                    rs2: line.reg(ops[1])?,
                    target: line.target(ops[2])?,
                }
            }
            "j" => {
                argc(1)?;
                Inst::Jump { target: line.target(ops[0])? }
            }
            "jal" => {
                argc(1)?;
                Inst::Jal { target: line.target(ops[0])? }
            }
            "jr" => {
                argc(1)?;
                Inst::Jr { rs: line.reg(ops[0])? }
            }
            "crecv" => {
                argc(2)?;
                Inst::CRecv { rd: line.reg(ops[0])?, chan: line.chan(ops[1])? }
            }
            "csend" => {
                argc(2)?;
                Inst::CSend { rs: line.reg(ops[0])?, chan: line.chan(ops[1])? }
            }
            "out" => {
                argc(1)?;
                Inst::Out { rs: line.reg(ops[0])? }
            }
            "halt" => {
                argc(0)?;
                Inst::Halt
            }
            other => return Err(line.err(format!("unknown mnemonic `{other}`"))),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_program;
    use crate::cpu::{Cpu, CpuExec};
    use std::sync::Arc;

    #[test]
    fn disassembly_round_trips_through_the_assembler() {
        let src = "int t[8] = {3, 1, 4, 1, 5, 9, 2, 6};
            void main() {
                int best = -1;
                for (int i = 0; i < 8; i++) {
                    if (t[i] > best) { best = t[i]; }
                }
                out(best);
                ch_send(2, best);
            }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let main = module.function_id("main").expect("main");
        let program = build_program(&module, main, &[]).expect("compiles");
        let text = program.disassemble();
        let parsed = assemble(&text).expect("assembles");
        assert_eq!(parsed, program.insts);
    }

    #[test]
    fn hand_written_program_runs() {
        // out(6 * 7); halt — written by hand.
        let text = "
            ; compute the answer
            addi r4, r0, 6
            addi r5, r0, 7
            mul  r2, r4, r5
            out  r2
            halt
        ";
        let insts = assemble(text).expect("assembles");
        let module = tlm_cdfg::ir::Module::default();
        let program = crate::codegen::Program {
            insts,
            meta: vec![(tlm_cdfg::FuncId(0), tlm_cdfg::BlockId(0)); 5],
            globals_image: vec![],
            layout: tlm_cdfg::ir::MemoryLayout::of(&module),
            entry_pc: 0,
            func_entry: vec![],
        };
        let mut cpu = Cpu::new(Arc::new(program));
        assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
        assert_eq!(cpu.outputs(), [42]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("add r1, r2, r3\nfrobnicate r1\n").expect_err("bad mnemonic");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));

        let err = assemble("add r1, r2\n").expect_err("arity");
        assert!(err.message.contains("3 operand"));

        let err = assemble("add r1, r2, r99\n").expect_err("register range");
        assert!(err.message.contains("out of range"));

        let err = assemble("lw r1, nonsense\n").expect_err("operand form");
        assert!(err.message.contains("off(base)"));
    }

    #[test]
    fn labels_and_comments_are_tolerated() {
        let insts = assemble("   0: addi r1, r0, 5   ; five\n\n   1: halt\n").expect("assembles");
        assert_eq!(insts.len(), 2);
    }
}
