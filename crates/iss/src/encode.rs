//! Binary encoding of the ISA.
//!
//! The simulators execute the structured [`Inst`] form directly (no decode
//! cost), but a real toolchain stores images as words; this module defines
//! that format and proves it lossless. The encoding is deliberately
//! regular:
//!
//! ```text
//! word 0:  [31:26] opcode   [25:21] ra   [20:16] rb   [15:11] rc
//!          [10:5]  funct    [4:0]   reserved (zero)
//! word 1:  present iff the opcode carries an immediate (offsets, branch
//!          targets, channel ids): the raw 32-bit value.
//! ```
//!
//! Immediate-carrying instructions are always two words — the layout a
//! simple fetch unit can decode with a table lookup, at the cost of code
//! density (documented; density is not modelled by the timing layers, which
//! count instructions, not words).

use std::error::Error;
use std::fmt;

use crate::isa::{AluOp, BrCond, Inst, Reg};

/// A malformed binary image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Word index of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at word {}: {}", self.at, self.message)
    }
}

impl Error for DecodeError {}

const OP_ALU: u32 = 0;
const OP_ALUI: u32 = 1;
const OP_LW: u32 = 2;
const OP_SW: u32 = 3;
const OP_LWX: u32 = 4;
const OP_SWX: u32 = 5;
const OP_BEQ: u32 = 6;
const OP_BNE: u32 = 7;
const OP_JUMP: u32 = 8;
const OP_JAL: u32 = 9;
const OP_JR: u32 = 10;
const OP_CRECV: u32 = 11;
const OP_CSEND: u32 = 12;
const OP_OUT: u32 = 13;
const OP_HALT: u32 = 14;

/// Whether an opcode is followed by an immediate word.
fn has_imm(opcode: u32) -> bool {
    matches!(
        opcode,
        OP_ALUI | OP_LW | OP_SW | OP_BEQ | OP_BNE | OP_JUMP | OP_JAL | OP_CRECV | OP_CSEND
    )
}

fn funct_of(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Sra => 9,
        AluOp::Slt => 10,
        AluOp::Sle => 11,
        AluOp::Seq => 12,
        AluOp::Sne => 13,
    }
}

fn alu_of(funct: u32) -> Option<AluOp> {
    Some(match funct {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Sra,
        10 => AluOp::Slt,
        11 => AluOp::Sle,
        12 => AluOp::Seq,
        13 => AluOp::Sne,
        _ => return None,
    })
}

fn word0(opcode: u32, ra: u8, rb: u8, rc: u8, funct: u32) -> u32 {
    opcode << 26
        | u32::from(ra & 31) << 21
        | u32::from(rb & 31) << 16
        | u32::from(rc & 31) << 11
        | (funct & 63) << 5
}

/// Encodes an instruction stream to words.
pub fn encode(insts: &[Inst]) -> Vec<u32> {
    let mut out = Vec::with_capacity(insts.len() * 2);
    for inst in insts {
        let (w0, imm): (u32, Option<u32>) = match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                (word0(OP_ALU, rd.0, rs1.0, rs2.0, funct_of(op)), None)
            }
            Inst::AluI { op, rd, rs1, imm } => {
                (word0(OP_ALUI, rd.0, rs1.0, 0, funct_of(op)), Some(imm as u32))
            }
            Inst::Lw { rd, base, offset } => {
                (word0(OP_LW, rd.0, base.0, 0, 0), Some(offset as u32))
            }
            Inst::Sw { rs, base, offset } => {
                (word0(OP_SW, rs.0, base.0, 0, 0), Some(offset as u32))
            }
            Inst::Lwx { rd, base, index } => (word0(OP_LWX, rd.0, base.0, index.0, 0), None),
            Inst::Swx { rs, base, index } => (word0(OP_SWX, rs.0, base.0, index.0, 0), None),
            Inst::Branch { cond, rs1, rs2, target } => {
                let opcode = match cond {
                    BrCond::Eq => OP_BEQ,
                    BrCond::Ne => OP_BNE,
                };
                (word0(opcode, rs1.0, rs2.0, 0, 0), Some(target as u32))
            }
            Inst::Jump { target } => (word0(OP_JUMP, 0, 0, 0, 0), Some(target as u32)),
            Inst::Jal { target } => (word0(OP_JAL, 0, 0, 0, 0), Some(target as u32)),
            Inst::Jr { rs } => (word0(OP_JR, rs.0, 0, 0, 0), None),
            Inst::CRecv { rd, chan } => (word0(OP_CRECV, rd.0, 0, 0, 0), Some(chan)),
            Inst::CSend { rs, chan } => (word0(OP_CSEND, rs.0, 0, 0, 0), Some(chan)),
            Inst::Out { rs } => (word0(OP_OUT, rs.0, 0, 0, 0), None),
            Inst::Halt => (word0(OP_HALT, 0, 0, 0, 0), None),
        };
        out.push(w0);
        if let Some(imm) = imm {
            out.push(imm);
        }
    }
    out
}

/// Decodes a binary image back to instructions.
///
/// # Errors
///
/// Returns [`DecodeError`] on unknown opcodes, bad ALU functs or truncated
/// immediate words.
pub fn decode(words: &[u32]) -> Result<Vec<Inst>, DecodeError> {
    let mut out = Vec::with_capacity(words.len());
    let mut pos = 0usize;
    while pos < words.len() {
        let at = pos;
        let word = words[pos];
        pos += 1;
        let opcode = word >> 26;
        let ra = Reg(((word >> 21) & 31) as u8);
        let rb = Reg(((word >> 16) & 31) as u8);
        let rc = Reg(((word >> 11) & 31) as u8);
        let funct = (word >> 5) & 63;
        let imm = if has_imm(opcode) {
            let Some(&v) = words.get(pos) else {
                return Err(DecodeError { at, message: "truncated immediate".into() });
            };
            pos += 1;
            Some(v)
        } else {
            None
        };
        let bad_funct = || DecodeError { at, message: format!("bad ALU funct {funct}") };
        let inst = match opcode {
            OP_ALU => {
                Inst::Alu { op: alu_of(funct).ok_or_else(bad_funct)?, rd: ra, rs1: rb, rs2: rc }
            }
            OP_ALUI => Inst::AluI {
                op: alu_of(funct).ok_or_else(bad_funct)?,
                rd: ra,
                rs1: rb,
                imm: imm.expect("has_imm") as i32,
            },
            OP_LW => Inst::Lw { rd: ra, base: rb, offset: imm.expect("has_imm") as i32 },
            OP_SW => Inst::Sw { rs: ra, base: rb, offset: imm.expect("has_imm") as i32 },
            OP_LWX => Inst::Lwx { rd: ra, base: rb, index: rc },
            OP_SWX => Inst::Swx { rs: ra, base: rb, index: rc },
            OP_BEQ => Inst::Branch {
                cond: BrCond::Eq,
                rs1: ra,
                rs2: rb,
                target: imm.expect("has_imm") as usize,
            },
            OP_BNE => Inst::Branch {
                cond: BrCond::Ne,
                rs1: ra,
                rs2: rb,
                target: imm.expect("has_imm") as usize,
            },
            OP_JUMP => Inst::Jump { target: imm.expect("has_imm") as usize },
            OP_JAL => Inst::Jal { target: imm.expect("has_imm") as usize },
            OP_JR => Inst::Jr { rs: ra },
            OP_CRECV => Inst::CRecv { rd: ra, chan: imm.expect("has_imm") },
            OP_CSEND => Inst::CSend { rs: ra, chan: imm.expect("has_imm") },
            OP_OUT => Inst::Out { rs: ra },
            OP_HALT => Inst::Halt,
            other => return Err(DecodeError { at, message: format!("unknown opcode {other}") }),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_program;

    #[test]
    fn every_instruction_kind_round_trips() {
        let insts = vec![
            Inst::Alu { op: AluOp::Mul, rd: Reg(3), rs1: Reg(4), rs2: Reg(5) },
            Inst::AluI { op: AluOp::Add, rd: Reg::SP, rs1: Reg::ZERO, imm: 0x0010_0000 },
            Inst::AluI { op: AluOp::Xor, rd: Reg(7), rs1: Reg(7), imm: -1 },
            Inst::Lw { rd: Reg(2), base: Reg::SP, offset: -8 },
            Inst::Sw { rs: Reg(2), base: Reg::SP, offset: 1024 },
            Inst::Lwx { rd: Reg(12), base: Reg(13), index: Reg(14) },
            Inst::Swx { rs: Reg(15), base: Reg(16), index: Reg(17) },
            Inst::Branch { cond: BrCond::Ne, rs1: Reg(1), rs2: Reg::ZERO, target: 12345 },
            Inst::Branch { cond: BrCond::Eq, rs1: Reg(9), rs2: Reg(10), target: 0 },
            Inst::Jump { target: 7 },
            Inst::Jal { target: 99 },
            Inst::Jr { rs: Reg::RA },
            Inst::CRecv { rd: Reg(2), chan: 42 },
            Inst::CSend { rs: Reg(3), chan: 0 },
            Inst::Out { rs: Reg(4) },
            Inst::Halt,
        ];
        let words = encode(&insts);
        assert_eq!(decode(&words).expect("decodes"), insts);
    }

    #[test]
    fn compiled_programs_round_trip() {
        let src = "int t[32];
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += t[i] * (i - 3); }
                return s;
            }
            void main() { out(f(32)); ch_send(0, 1); }";
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let main = module.function_id("main").expect("main");
        let program = build_program(&module, main, &[]).expect("compiles");
        let words = encode(&program.insts);
        let back = decode(&words).expect("decodes");
        assert_eq!(back, program.insts);
        // Density: at most two words per instruction.
        assert!(words.len() <= program.insts.len() * 2);
        assert!(words.len() > program.insts.len(), "some immediates exist");
    }

    #[test]
    fn truncated_image_is_rejected() {
        let insts = vec![Inst::Jump { target: 5 }];
        let mut words = encode(&insts);
        words.pop();
        let err = decode(&words).expect_err("truncated");
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let err = decode(&[63 << 26]).expect_err("bad opcode");
        assert!(err.message.contains("unknown opcode"));
    }

    #[test]
    fn bad_funct_is_rejected() {
        let word = super::word0(OP_ALU, 1, 2, 3, 45);
        let err = decode(&[word]).expect_err("bad funct");
        assert!(err.message.contains("funct"));
    }
}
