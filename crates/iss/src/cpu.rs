//! The functional (untimed) processor core.
//!
//! Executes a compiled [`Program`] instruction by instruction. Like the
//! CDFG interpreter, the core is resumable: channel instructions suspend it
//! and [`Cpu::complete_recv`]/[`Cpu::complete_send`] resume it, so it can be
//! embedded in any co-simulation. Timing layers ([`crate::timing`],
//! [`crate::microarch`]) drive it through [`Cpu::step_info`] and observe
//! each retired instruction.

use std::fmt;
use std::sync::Arc;

use tlm_cdfg::ir::{GLOBALS_BASE, STACK_BASE};

use crate::codegen::Program;
use crate::isa::{alu_eval, BrCond, Inst, Reg};

/// Why a [`Cpu::run`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuExec {
    /// `halt` retired.
    Done,
    /// Blocked on `crecv` of this channel.
    RecvPending(u32),
    /// Blocked on `csend`: channel and the value to deliver.
    SendPending(u32, i32),
    /// A runtime error; the core is dead.
    Trap(CpuTrap),
    /// The fuel budget ran out; calling `run` again continues.
    OutOfFuel,
}

/// Runtime errors of the core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuTrap {
    /// Division or remainder by zero.
    DivByZero {
        /// Faulting pc.
        pc: usize,
    },
    /// Data access outside the memory image or misaligned.
    BadAddress {
        /// Faulting pc.
        pc: usize,
        /// Offending byte address.
        addr: i64,
    },
    /// Jump outside the instruction stream.
    BadPc {
        /// Offending target.
        target: usize,
    },
}

impl fmt::Display for CpuTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuTrap::DivByZero { pc } => write!(f, "division by zero at pc {pc}"),
            CpuTrap::BadAddress { pc, addr } => {
                write!(f, "bad data address {addr:#x} at pc {pc}")
            }
            CpuTrap::BadPc { target } => write!(f, "jump to invalid pc {target}"),
        }
    }
}

/// What one retired instruction did — the timing layers' food.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Pc of the retired instruction.
    pub pc: usize,
    /// Pc of the next instruction.
    pub next_pc: usize,
    /// The instruction itself.
    pub inst: Inst,
    /// Data access performed: `(byte address, is_store)`.
    pub mem: Option<(u32, bool)>,
    /// For conditional branches: was it taken?
    pub taken: Option<bool>,
}

/// One stepping outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// An instruction retired.
    Retired(StepInfo),
    /// The core blocked or stopped; see the inner value.
    Stopped(CpuExec),
}

/// Execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Data memory accesses.
    pub mem_accesses: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches taken.
    pub branches_taken: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    AwaitRecv(u32),
    AwaitSend(u32),
    Finished,
    Trapped,
}

/// The functional core.
#[derive(Debug, Clone)]
pub struct Cpu {
    program: Arc<Program>,
    regs: [i32; 32],
    pc: usize,
    memory: Vec<i32>,
    state: State,
    outputs: Vec<i64>,
    stats: CpuStats,
    return_value: Option<i32>,
}

impl Cpu {
    /// Creates a core with the program loaded and memory initialized.
    pub fn new(program: Arc<Program>) -> Cpu {
        let mut memory = vec![0i32; (STACK_BASE / 4) as usize];
        for &(addr, value) in &program.globals_image {
            memory[(addr / 4) as usize] = value;
        }
        let pc = program.entry_pc;
        Cpu {
            program,
            regs: [0; 32],
            pc,
            memory,
            state: State::Running,
            outputs: Vec::new(),
            stats: CpuStats::default(),
            return_value: None,
        }
    }

    /// Observable outputs produced by `out` so far.
    pub fn outputs(&self) -> &[i64] {
        &self.outputs
    }

    /// Execution counters.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Value left in the return-value register at `halt`.
    pub fn return_value(&self) -> Option<i32> {
        self.return_value
    }

    /// The loaded program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Reads a register (diagnostics).
    pub fn reg(&self, r: Reg) -> i32 {
        self.regs[r.0 as usize]
    }

    /// Delivers the value a pending `crecv` waits for.
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a receive.
    pub fn complete_recv(&mut self, value: i32) {
        let State::AwaitRecv(_) = self.state else {
            panic!("complete_recv called but core is not awaiting a receive");
        };
        let Inst::CRecv { rd, .. } = self.program.insts[self.pc] else {
            unreachable!("awaiting state points at a crecv");
        };
        self.write_reg(rd, value);
        self.pc += 1;
        self.stats.instructions += 1;
        self.state = State::Running;
    }

    /// Acknowledges that a pending `csend` value was consumed.
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a send.
    pub fn complete_send(&mut self) {
        let State::AwaitSend(_) = self.state else {
            panic!("complete_send called but core is not awaiting a send");
        };
        self.pc += 1;
        self.stats.instructions += 1;
        self.state = State::Running;
    }

    /// Runs until halt, suspension, trap or fuel exhaustion.
    pub fn run(&mut self, mut fuel: u64) -> CpuExec {
        loop {
            if fuel == 0 {
                return CpuExec::OutOfFuel;
            }
            fuel -= 1;
            match self.step_info() {
                Step::Retired(_) => {}
                Step::Stopped(exec) => return exec,
            }
        }
    }

    fn write_reg(&mut self, rd: Reg, value: i32) {
        if rd != Reg::ZERO {
            self.regs[rd.0 as usize] = value;
        }
    }

    fn mem_index(&self, pc: usize, addr: i64) -> Result<usize, CpuTrap> {
        if addr < 0 || addr % 4 != 0 || addr >= i64::from(STACK_BASE) {
            return Err(CpuTrap::BadAddress { pc, addr });
        }
        Ok((addr / 4) as usize)
    }

    /// Executes one instruction, reporting what it did.
    pub fn step_info(&mut self) -> Step {
        match self.state {
            State::Running => {}
            State::AwaitRecv(ch) => return Step::Stopped(CpuExec::RecvPending(ch)),
            State::AwaitSend(ch) => {
                let Inst::CSend { rs, .. } = self.program.insts[self.pc] else {
                    unreachable!("awaiting state points at a csend");
                };
                return Step::Stopped(CpuExec::SendPending(ch, self.regs[rs.0 as usize]));
            }
            State::Finished => return Step::Stopped(CpuExec::Done),
            State::Trapped => panic!("stepping a trapped core"),
        }
        let pc = self.pc;
        let Some(&inst) = self.program.insts.get(pc) else {
            self.state = State::Trapped;
            return Step::Stopped(CpuExec::Trap(CpuTrap::BadPc { target: pc }));
        };
        let mut mem = None;
        let mut taken = None;
        let mut next_pc = pc + 1;

        macro_rules! trap {
            ($t:expr) => {{
                self.state = State::Trapped;
                return Step::Stopped(CpuExec::Trap($t));
            }};
        }

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1.0 as usize];
                let b = self.regs[rs2.0 as usize];
                match alu_eval(op, a, b) {
                    Some(v) => self.write_reg(rd, v),
                    None => trap!(CpuTrap::DivByZero { pc }),
                }
            }
            Inst::AluI { op, rd, rs1, imm } => {
                let a = self.regs[rs1.0 as usize];
                match alu_eval(op, a, imm) {
                    Some(v) => self.write_reg(rd, v),
                    None => trap!(CpuTrap::DivByZero { pc }),
                }
            }
            Inst::Lw { rd, base, offset } => {
                let addr = i64::from(self.regs[base.0 as usize]) + i64::from(offset);
                match self.mem_index(pc, addr) {
                    Ok(i) => {
                        let v = self.memory[i];
                        self.write_reg(rd, v);
                        mem = Some((addr as u32, false));
                    }
                    Err(t) => trap!(t),
                }
            }
            Inst::Sw { rs, base, offset } => {
                let addr = i64::from(self.regs[base.0 as usize]) + i64::from(offset);
                match self.mem_index(pc, addr) {
                    Ok(i) => {
                        self.memory[i] = self.regs[rs.0 as usize];
                        mem = Some((addr as u32, true));
                    }
                    Err(t) => trap!(t),
                }
            }
            Inst::Lwx { rd, base, index } => {
                let addr = i64::from(self.regs[base.0 as usize])
                    + (i64::from(self.regs[index.0 as usize]) << 2);
                match self.mem_index(pc, addr) {
                    Ok(i) => {
                        let v = self.memory[i];
                        self.write_reg(rd, v);
                        mem = Some((addr as u32, false));
                    }
                    Err(t) => trap!(t),
                }
            }
            Inst::Swx { rs, base, index } => {
                let addr = i64::from(self.regs[base.0 as usize])
                    + (i64::from(self.regs[index.0 as usize]) << 2);
                match self.mem_index(pc, addr) {
                    Ok(i) => {
                        self.memory[i] = self.regs[rs.0 as usize];
                        mem = Some((addr as u32, true));
                    }
                    Err(t) => trap!(t),
                }
            }
            Inst::Branch { cond, rs1, rs2, target } => {
                let a = self.regs[rs1.0 as usize];
                let b = self.regs[rs2.0 as usize];
                let t = match cond {
                    BrCond::Eq => a == b,
                    BrCond::Ne => a != b,
                };
                taken = Some(t);
                self.stats.branches += 1;
                self.stats.branches_taken += u64::from(t);
                if t {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::Jal { target } => {
                self.write_reg(Reg::RA, (pc + 1) as i32);
                next_pc = target;
            }
            Inst::Jr { rs } => {
                let t = self.regs[rs.0 as usize];
                if t < 0 || t as usize >= self.program.insts.len() {
                    trap!(CpuTrap::BadPc { target: t.max(0) as usize });
                }
                next_pc = t as usize;
            }
            Inst::CRecv { chan, .. } => {
                self.state = State::AwaitRecv(chan);
                return Step::Stopped(CpuExec::RecvPending(chan));
            }
            Inst::CSend { rs, chan } => {
                self.state = State::AwaitSend(chan);
                return Step::Stopped(CpuExec::SendPending(chan, self.regs[rs.0 as usize]));
            }
            Inst::Out { rs } => {
                self.outputs.push(i64::from(self.regs[rs.0 as usize]));
            }
            Inst::Halt => {
                self.state = State::Finished;
                self.return_value = Some(self.regs[Reg::RV.0 as usize]);
                return Step::Stopped(CpuExec::Done);
            }
        }
        if mem.is_some() {
            self.stats.mem_accesses += 1;
        }
        self.pc = next_pc;
        self.stats.instructions += 1;
        Step::Retired(StepInfo { pc, next_pc, inst, mem, taken })
    }

    /// Reads a word of data memory (diagnostics/tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or misaligned.
    pub fn read_word(&self, addr: u32) -> i32 {
        assert!(addr.is_multiple_of(4) && addr < STACK_BASE, "bad read address {addr:#x}");
        self.memory[(addr / 4) as usize]
    }

    /// Base address of the globals region (re-exported for tests).
    pub fn globals_base() -> u32 {
        GLOBALS_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_program;

    fn cpu_for(src: &str, entry: &str, args: &[i64]) -> Cpu {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let id = module.function_id(entry).expect("entry exists");
        Cpu::new(Arc::new(build_program(&module, id, args).expect("compiles")))
    }

    #[test]
    fn channel_round_trip() {
        let mut cpu = cpu_for(
            "void main() { int a = ch_recv(0); int b = ch_recv(0); ch_send(1, a * b); }",
            "main",
            &[],
        );
        assert_eq!(cpu.run(u64::MAX), CpuExec::RecvPending(0));
        cpu.complete_recv(6);
        assert_eq!(cpu.run(u64::MAX), CpuExec::RecvPending(0));
        cpu.complete_recv(7);
        assert_eq!(cpu.run(u64::MAX), CpuExec::SendPending(1, 42));
        cpu.complete_send();
        assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut cpu = cpu_for("int main(int d) { return 10 / d; }", "main", &[0]);
        assert!(matches!(cpu.run(u64::MAX), CpuExec::Trap(CpuTrap::DivByZero { .. })));
    }

    #[test]
    fn out_of_bounds_index_traps() {
        // A very out-of-range index escapes the memory image entirely.
        let mut cpu = cpu_for("int t[4]; int main(int i) { return t[i]; }", "main", &[0x1000_0000]);
        assert!(matches!(cpu.run(u64::MAX), CpuExec::Trap(CpuTrap::BadAddress { .. })));
    }

    #[test]
    fn fuel_is_respected_and_resumable() {
        let mut cpu = cpu_for("void main() { while (1) { } }", "main", &[]);
        assert_eq!(cpu.run(1000), CpuExec::OutOfFuel);
        assert_eq!(cpu.run(1000), CpuExec::OutOfFuel);
        assert!(cpu.stats().instructions >= 2000);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut cpu = cpu_for("int main() { return 0; }", "main", &[]);
        cpu.run(u64::MAX);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn stats_count_branches() {
        let mut cpu = cpu_for("void main() { for (int i = 0; i < 5; i++) { } }", "main", &[]);
        assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
        assert!(cpu.stats().branches >= 6);
        assert!(cpu.stats().branches_taken < cpu.stats().branches);
    }

    #[test]
    fn matches_cdfg_interpreter_on_kernels() {
        use tlm_cdfg::interp::{Exec, Machine, NoopHook};
        let kernels = [
            "void main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i * i; } out(s); }",
            "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }
             void main() { out(gcd(84, 126)); }",
            "int t[16];
             void main() {
                for (int i = 0; i < 16; i++) { t[i] = (i * 37 + 11) % 64; }
                int best = -1;
                for (int i = 0; i < 16; i++) { if (t[i] > best) { best = t[i]; } }
                out(best);
             }",
        ];
        for src in kernels {
            let module =
                tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
            let id = module.function_id("main").expect("main");
            let mut machine = Machine::new(&module, id, &[]);
            assert_eq!(machine.run(&mut NoopHook), Exec::Done);

            let mut cpu = Cpu::new(Arc::new(build_program(&module, id, &[]).expect("compiles")));
            assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
            assert_eq!(cpu.outputs(), machine.outputs(), "engines disagree on {src}");
        }
    }
}
