//! The instruction set: a MIPS-flavoured 32-register RISC with transaction
//! channel extensions.
//!
//! Instructions are kept in structured (pre-decoded) form for simulation
//! speed; [`Inst::mnemonic`] renders assembly text for diagnostics and
//! golden tests. Branch and call targets are absolute instruction indices —
//! an idealization of a real encoding's PC-relative immediates that changes
//! nothing about timing behaviour.

use std::fmt;

/// A register number, `r0`..`r31`. `r0` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-value register.
    pub const RV: Reg = Reg(2);
    /// First scratch register reserved for spills/addressing.
    pub const T0: Reg = Reg(8);
    /// Second scratch register.
    pub const T1: Reg = Reg(9);
    /// Third scratch register.
    pub const T2: Reg = Reg(10);
    /// First argument register (`r4`..`r7` carry arguments).
    pub const A0: Reg = Reg(4);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Link register written by [`Inst::Jal`].
    pub const RA: Reg = Reg(31);

    /// Number of argument registers.
    pub const N_ARGS: usize = 4;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Three-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Signed multiplication (low 32 bits).
    Mul,
    /// Signed division (traps on zero divisor).
    Div,
    /// Signed remainder (traps on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (count masked mod 32).
    Sll,
    /// Arithmetic shift right.
    Sra,
    /// Set if less than (signed).
    Slt,
    /// Set if less or equal (signed).
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = rs1 <op> rs2`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm`
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// `rd = mem[rs1 + offset]` (word access, byte offset)
    Lw {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[rs1 + offset] = rs`
    Sw {
        /// Value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Indexed word load: `rd = mem[base + (index << 2)]`.
    Lwx {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        index: Reg,
    },
    /// Indexed word store: `mem[base + (index << 2)] = rs`.
    Swx {
        /// Value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        index: Reg,
    },
    /// Conditional branch comparing two registers.
    Branch {
        /// Condition.
        cond: BrCond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Absolute target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target instruction index.
        target: usize,
    },
    /// Call: `ra = pc + 1; pc = target`.
    Jal {
        /// Absolute target instruction index.
        target: usize,
    },
    /// Indirect jump (function return).
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Receive one word from a transaction channel into `rd`.
    CRecv {
        /// Destination.
        rd: Reg,
        /// Channel id.
        chan: u32,
    },
    /// Send `rs` to a transaction channel.
    CSend {
        /// Value register.
        rs: Reg,
        /// Channel id.
        chan: u32,
    },
    /// Emit `rs` to the observable output stream.
    Out {
        /// Value register.
        rs: Reg,
    },
    /// Stop the core.
    Halt,
}

impl Inst {
    /// Whether this instruction reads or writes data memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Inst::Lw { .. } | Inst::Sw { .. } | Inst::Lwx { .. } | Inst::Swx { .. })
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Assembly-like rendering.
    pub fn mnemonic(&self) -> String {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                format!("{} {rd}, {rs1}, {rs2}", alu_name(*op))
            }
            Inst::AluI { op, rd, rs1, imm } => {
                format!("{}i {rd}, {rs1}, {imm}", alu_name(*op))
            }
            Inst::Lw { rd, base, offset } => format!("lw {rd}, {offset}({base})"),
            Inst::Sw { rs, base, offset } => format!("sw {rs}, {offset}({base})"),
            Inst::Lwx { rd, base, index } => format!("lwx {rd}, {base}[{index}]"),
            Inst::Swx { rs, base, index } => format!("swx {rs}, {base}[{index}]"),
            Inst::Branch { cond, rs1, rs2, target } => {
                let name = match cond {
                    BrCond::Eq => "beq",
                    BrCond::Ne => "bne",
                };
                format!("{name} {rs1}, {rs2}, @{target}")
            }
            Inst::Jump { target } => format!("j @{target}"),
            Inst::Jal { target } => format!("jal @{target}"),
            Inst::Jr { rs } => format!("jr {rs}"),
            Inst::CRecv { rd, chan } => format!("crecv {rd}, ch{chan}"),
            Inst::CSend { rs, chan } => format!("csend {rs}, ch{chan}"),
            Inst::Out { rs } => format!("out {rs}"),
            Inst::Halt => "halt".to_string(),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sle => "sle",
        AluOp::Seq => "seq",
        AluOp::Sne => "sne",
    }
}

/// Applies an ALU op with 32-bit wrapping semantics.
///
/// Returns `None` for division/remainder by zero.
pub fn alu_eval(op: AluOp, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        AluOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32),
        AluOp::Sra => a.wrapping_shr(b as u32),
        AluOp::Slt => i32::from(a < b),
        AluOp::Sle => i32::from(a <= b),
        AluOp::Seq => i32::from(a == b),
        AluOp::Sne => i32::from(a != b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_eval(AluOp::Add, i32::MAX, 1), Some(i32::MIN));
        assert_eq!(alu_eval(AluOp::Div, -7, 2), Some(-3));
        assert_eq!(alu_eval(AluOp::Rem, -7, 2), Some(-1));
        assert_eq!(alu_eval(AluOp::Div, 1, 0), None);
        assert_eq!(alu_eval(AluOp::Sra, -8, 1), Some(-4));
        assert_eq!(alu_eval(AluOp::Sll, 1, 33), Some(2));
        assert_eq!(alu_eval(AluOp::Slt, 1, 2), Some(1));
        assert_eq!(alu_eval(AluOp::Sne, 3, 3), Some(0));
    }

    #[test]
    fn mnemonics_render() {
        let inst = Inst::Alu { op: AluOp::Add, rd: Reg(3), rs1: Reg(4), rs2: Reg(5) };
        assert_eq!(inst.mnemonic(), "add r3, r4, r5");
        assert_eq!(Inst::Halt.mnemonic(), "halt");
        assert_eq!(Inst::Lw { rd: Reg(2), base: Reg::SP, offset: 8 }.mnemonic(), "lw r2, 8(r29)");
        assert_eq!(Inst::CRecv { rd: Reg(2), chan: 3 }.mnemonic(), "crecv r2, ch3");
    }

    #[test]
    fn classification() {
        assert!(Inst::Lw { rd: Reg(1), base: Reg(2), offset: 0 }.is_memory());
        assert!(!Inst::Halt.is_memory());
        assert!(
            Inst::Branch { cond: BrCond::Eq, rs1: Reg(0), rs2: Reg(0), target: 0 }.is_cond_branch()
        );
    }
}
