//! The coarse "vendor ISS" timing model of Table 2.
//!
//! The paper found that the MicroBlaze vendor ISS, although instruction-
//! accurate, "did not model memory access accurately enough" — its cycle
//! estimates were *worse* than the generated TLM's. This layer reproduces
//! that baseline honestly: per-instruction base costs are right, but the
//! memory system is modelled by a fixed assumed hit-rate curve and a wrong
//! (optimistic) memory latency instead of simulating caches.

use crate::cpu::{Cpu, CpuExec, Step, StepInfo};
use crate::isa::{AluOp, Inst};

/// Configuration of the coarse timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssTimingConfig {
    /// The latency the vendor model *assumes* for external memory
    /// (optimistically wrong; the board's real latency is higher).
    pub assumed_mem_latency: u32,
    /// Configured i-cache size (bytes; 0 = none).
    pub icache_bytes: u32,
    /// Configured d-cache size (bytes; 0 = none).
    pub dcache_bytes: u32,
    /// Cycles charged for a taken control transfer.
    pub taken_branch_cost: u32,
}

impl IssTimingConfig {
    /// The vendor-style defaults for a given cache configuration.
    pub fn for_caches(icache_bytes: u32, dcache_bytes: u32) -> IssTimingConfig {
        IssTimingConfig { assumed_mem_latency: 8, icache_bytes, dcache_bytes, taken_branch_cost: 2 }
    }

    /// The fixed hit rate the vendor model assumes for a cache of `size`
    /// bytes — a generic curve applied regardless of the application, which
    /// is exactly why this model loses to characterized TLM estimates.
    pub fn assumed_hit_rate(size: u32) -> f64 {
        if size == 0 {
            0.0
        } else {
            let kib = f64::from(size) / 1024.0;
            (0.93 + 0.012 * kib.log2()).clamp(0.0, 0.995)
        }
    }
}

/// The coarse instruction-set simulator: functional core + approximate
/// per-instruction timing.
#[derive(Debug, Clone)]
pub struct IssSim {
    cpu: Cpu,
    config: IssTimingConfig,
    cycles: f64,
}

impl IssSim {
    /// Wraps a functional core with the coarse timing model.
    pub fn new(cpu: Cpu, config: IssTimingConfig) -> IssSim {
        IssSim { cpu, config, cycles: 0.0 }
    }

    /// Estimated cycles so far (rounded).
    pub fn cycles(&self) -> u64 {
        self.cycles.round() as u64
    }

    /// The wrapped core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the wrapped core (for channel completion).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Runs until halt, suspension, trap or fuel exhaustion, accumulating
    /// the coarse cycle estimate.
    pub fn run(&mut self, mut fuel: u64) -> CpuExec {
        let ihit = IssTimingConfig::assumed_hit_rate(self.config.icache_bytes);
        let dhit = IssTimingConfig::assumed_hit_rate(self.config.dcache_bytes);
        let mem_lat = f64::from(self.config.assumed_mem_latency);
        let fetch_cost = (1.0 - ihit) * mem_lat;
        let data_cost = (1.0 - dhit) * mem_lat;
        loop {
            if fuel == 0 {
                return CpuExec::OutOfFuel;
            }
            fuel -= 1;
            match self.cpu.step_info() {
                Step::Retired(info) => {
                    self.cycles += f64::from(base_cost(&info, self.config.taken_branch_cost));
                    self.cycles += fetch_cost;
                    if info.mem.is_some() {
                        self.cycles += data_cost;
                    }
                }
                Step::Stopped(exec) => return exec,
            }
        }
    }

    /// Delivers a pending receive (counts one transfer cycle).
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a receive.
    pub fn complete_recv(&mut self, value: i32) {
        self.cycles += 1.0;
        self.cpu.complete_recv(value);
    }

    /// Completes a pending send (counts one transfer cycle).
    ///
    /// # Panics
    ///
    /// Panics if the core is not awaiting a send.
    pub fn complete_send(&mut self) {
        self.cycles += 1.0;
        self.cpu.complete_send();
    }
}

/// Base per-instruction cost, matching the PE's documented latencies.
fn base_cost(info: &StepInfo, taken_branch_cost: u32) -> u32 {
    match info.inst {
        Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 32,
            _ => 1,
        },
        Inst::Branch { .. } if info.taken == Some(true) => taken_branch_cost,
        Inst::Jump { .. } | Inst::Jal { .. } | Inst::Jr { .. } => 1,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build_program;
    use std::sync::Arc;

    fn sim_for(src: &str, icache: u32, dcache: u32) -> IssSim {
        let module =
            tlm_cdfg::lower::lower(&tlm_minic::parse(src).expect("parses")).expect("lowers");
        let id = module.function_id("main").expect("main");
        let cpu = Cpu::new(Arc::new(build_program(&module, id, &[]).expect("compiles")));
        IssSim::new(cpu, IssTimingConfig::for_caches(icache, dcache))
    }

    const LOOP: &str = "int t[256];
        void main() {
            for (int i = 0; i < 256; i++) { t[i] = i * 3; }
            int s = 0;
            for (int i = 0; i < 256; i++) { s += t[i]; }
            out(s);
        }";

    #[test]
    fn functional_result_is_unchanged() {
        let mut sim = sim_for(LOOP, 8 << 10, 4 << 10);
        assert_eq!(sim.run(u64::MAX), CpuExec::Done);
        let expect: i64 = (0..256).map(|i| i * 3).sum();
        assert_eq!(sim.cpu().outputs(), [expect]);
    }

    #[test]
    fn cycles_exceed_instruction_count() {
        let mut sim = sim_for(LOOP, 8 << 10, 4 << 10);
        sim.run(u64::MAX);
        assert!(sim.cycles() >= sim.cpu().stats().instructions);
    }

    #[test]
    fn cacheless_config_is_much_slower() {
        let mut cached = sim_for(LOOP, 8 << 10, 4 << 10);
        cached.run(u64::MAX);
        let mut bare = sim_for(LOOP, 0, 0);
        bare.run(u64::MAX);
        assert!(
            bare.cycles() > cached.cycles() * 3,
            "bare {} vs cached {}",
            bare.cycles(),
            cached.cycles()
        );
    }

    #[test]
    fn assumed_curve_is_monotone_and_bounded() {
        assert_eq!(IssTimingConfig::assumed_hit_rate(0), 0.0);
        let mut last = 0.0;
        for kb in [1u32, 2, 8, 32, 128] {
            let r = IssTimingConfig::assumed_hit_rate(kb << 10);
            assert!(r >= last && r <= 0.995);
            last = r;
        }
    }
}
