//! MIPS-like instruction-set architecture, code generation and simulators.
//!
//! This crate provides the reference execution engines the paper compares
//! its timed TLMs against:
//!
//! - [`isa`] — a 32-register RISC instruction set with channel extensions,
//!   and [`encode`], its lossless binary image format;
//! - [`codegen`] — a back-end from the CDFG IR to the ISA, with linear-scan
//!   register allocation, so instruction counts resemble compiled code;
//! - [`cpu`] — a functional (untimed) core, resumable at channel ops just
//!   like the CDFG interpreter;
//! - [`cache`] — a set-associative cache simulator;
//! - [`branch`] — static and bimodal branch predictors;
//! - [`timing`] — a deliberately coarse per-instruction timing layer that
//!   reproduces the *vendor ISS* of the paper's Table 2 (the one whose
//!   memory modelling loses to the TLM estimates);
//! - [`microarch`] — a cycle-accurate in-order 5-stage timing model with
//!   real caches and a real predictor: the "board measurement" stand-in.
//!
//! # Example
//!
//! ```
//! use tlm_iss::codegen::build_program;
//! use tlm_iss::cpu::{Cpu, CpuExec};
//!
//! let program = tlm_minic::parse("void main() { out(6 * 7); }")?;
//! let module = tlm_cdfg::lower::lower(&program)?;
//! let main = module.function_id("main").expect("main exists");
//! let image = build_program(&module, main, &[])?;
//! let mut cpu = Cpu::new(std::sync::Arc::new(image));
//! assert_eq!(cpu.run(u64::MAX), CpuExec::Done);
//! assert_eq!(cpu.outputs(), [42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod branch;
pub mod cache;
pub mod codegen;
pub mod cpu;
pub mod encode;
pub mod isa;
pub mod microarch;
pub mod timing;
