//! A set-associative cache simulator with LRU replacement.
//!
//! Used by the cycle-accurate board model for *actual* hit/miss behaviour —
//! the ground truth the estimator's statistical memory model is measured
//! against — and by characterization to produce the per-size hit-rate
//! tables of the PUM.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (0 = no cache; every access misses).
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
}

impl CacheConfig {
    /// A direct-mapped cache with 16-byte lines, the MicroBlaze-ish default.
    pub fn direct_mapped(size_bytes: u32) -> CacheConfig {
        CacheConfig { size_bytes, line_bytes: 16, assoc: 1 }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        if self.size_bytes == 0 {
            0
        } else {
            (self.size_bytes / self.line_bytes / self.assoc).max(1)
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses that hit; 1.0 with no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    stamp: u64,
}

/// The cache simulator (write-allocate; replacement is true LRU).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>, // sets × assoc
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// zero associativity with a non-zero size).
    pub fn new(config: CacheConfig) -> Cache {
        if config.size_bytes > 0 {
            assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
            assert!(config.assoc >= 1, "associativity must be at least 1");
        }
        let n_lines = (config.n_sets() * config.assoc.max(1)) as usize;
        Cache {
            config,
            lines: vec![Line { tag: 0, valid: false, stamp: 0 }; n_lines],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Performs one access; returns `true` on a hit. Misses allocate.
    pub fn access(&mut self, addr: u32) -> bool {
        self.stats.accesses += 1;
        if self.config.size_bytes == 0 {
            self.stats.misses += 1;
            return false;
        }
        self.clock += 1;
        let n_sets = self.config.n_sets();
        let line_addr = addr / self.config.line_bytes;
        let set = (line_addr % n_sets) as usize;
        let tag = line_addr / n_sets;
        let assoc = self.config.assoc as usize;
        let ways = &mut self.lines[set * assoc..(set + 1) * assoc];

        for way in ways.iter_mut() {
            if way.valid && way.tag == tag {
                way.stamp = self.clock;
                return true;
            }
        }
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp } else { 0 })
            .expect("associativity >= 1");
        *victim = Line { tag, valid: true, stamp: self.clock };
        false
    }

    /// Invalidates all lines and resets the LRU clock (counters are kept).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::direct_mapped(1024));
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104), "same line");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn zero_size_always_misses() {
        let mut c = Cache::new(CacheConfig::direct_mapped(0));
        for i in 0..10 {
            assert!(!c.access(i * 4));
        }
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn direct_mapped_conflict() {
        let cfg = CacheConfig::direct_mapped(256); // 16 sets × 16B
        let mut c = Cache::new(cfg);
        assert!(!c.access(0));
        assert!(!c.access(256), "same set, different tag evicts");
        assert!(!c.access(0), "original line was evicted");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let cfg = CacheConfig { size_bytes: 256, line_bytes: 16, assoc: 2 };
        let mut c = Cache::new(cfg);
        assert!(!c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0), "both lines fit in a 2-way set");
        assert!(c.access(256));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig { size_bytes: 32, line_bytes: 16, assoc: 2 }; // 1 set
        let mut c = Cache::new(cfg);
        c.access(0); // A
        c.access(16); // B
        c.access(0); // touch A
        c.access(32); // C evicts B (LRU)
        assert!(c.access(0), "A survived");
        assert!(!c.access(16), "B was evicted");
    }

    #[test]
    fn bigger_cache_hits_more_on_a_sweep() {
        let working_set = 4096u32;
        let rate = |size: u32| {
            let mut c = Cache::new(CacheConfig::direct_mapped(size));
            for _pass in 0..8 {
                for addr in (0..working_set).step_by(4) {
                    c.access(addr);
                }
            }
            c.stats().hit_rate()
        };
        let small = rate(1024);
        let large = rate(8192);
        assert!(large > small, "large {large} vs small {small}");
        assert!(large > 0.95, "working set fits: {large}");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(CacheConfig::direct_mapped(1024));
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
    }
}
