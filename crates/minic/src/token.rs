//! Token definitions for the MiniC lexer.

use std::fmt;

use crate::diag::Span;

/// One lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// The kinds of token MiniC knows about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier such as `filter_core`.
    Ident(String),
    /// An integer literal, already decoded (decimal or `0x` hex).
    Int(i64),

    // Keywords.
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `do`
    KwDo,
    /// `switch`
    KwSwitch,
    /// `case`
    KwCase,
    /// `default`
    KwDefault,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `&=`
    AndAssign,
    /// `|=`
    OrAssign,
    /// `^=`
    XorAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Maps an identifier spelling to a keyword, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "do" => TokenKind::KwDo,
            "switch" => TokenKind::KwSwitch,
            "case" => TokenKind::KwCase,
            "default" => TokenKind::KwDefault,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TokenKind::Ident(name) => return write!(f, "identifier `{name}`"),
            TokenKind::Int(v) => return write!(f, "integer `{v}`"),
            TokenKind::KwInt => "`int`",
            TokenKind::KwVoid => "`void`",
            TokenKind::KwIf => "`if`",
            TokenKind::KwElse => "`else`",
            TokenKind::KwWhile => "`while`",
            TokenKind::KwFor => "`for`",
            TokenKind::KwReturn => "`return`",
            TokenKind::KwBreak => "`break`",
            TokenKind::KwContinue => "`continue`",
            TokenKind::KwDo => "`do`",
            TokenKind::KwSwitch => "`switch`",
            TokenKind::KwCase => "`case`",
            TokenKind::KwDefault => "`default`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Semi => "`;`",
            TokenKind::Comma => "`,`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Assign => "`=`",
            TokenKind::PlusAssign => "`+=`",
            TokenKind::MinusAssign => "`-=`",
            TokenKind::StarAssign => "`*=`",
            TokenKind::SlashAssign => "`/=`",
            TokenKind::PercentAssign => "`%=`",
            TokenKind::ShlAssign => "`<<=`",
            TokenKind::ShrAssign => "`>>=`",
            TokenKind::AndAssign => "`&=`",
            TokenKind::OrAssign => "`|=`",
            TokenKind::XorAssign => "`^=`",
            TokenKind::PlusPlus => "`++`",
            TokenKind::MinusMinus => "`--`",
            TokenKind::Eq => "`==`",
            TokenKind::Ne => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Not => "`!`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Tilde => "`~`",
            TokenKind::Question => "`?`",
            TokenKind::Colon => "`:`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::Eof => "end of input",
        };
        f.write_str(text)
    }
}
