//! Recursive-descent parser for MiniC.

use crate::ast::{BinOp, UnOp};
use crate::ast::{
    Block, Expr, Function, GlobalVar, Init, LValue, Param, Program, Stmt, SwitchCase, Type,
};
use crate::diag::{ParseError, Span};
use crate::token::{Token, TokenKind};

/// Parses a token stream (from [`crate::lex`]) into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error with its source location.
pub fn parse_tokens(source: &str, tokens: &[Token]) -> Result<Program, ParseError> {
    let mut parser = Parser { source, tokens, pos: 0 };
    parser.program()
}

struct Parser<'a> {
    source: &'a str,
    tokens: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, ParseError> {
        let span = self.peek_span();
        if self.peek() == kind {
            self.bump();
            Ok(span)
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.peek_span(), self.source)
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            let start = self.peek_span();
            let ret = match self.bump() {
                TokenKind::KwInt => Type::Int,
                TokenKind::KwVoid => Type::Void,
                other => {
                    return Err(ParseError::new(
                        format!("expected `int` or `void` at top level, found {other}"),
                        start,
                        self.source,
                    ))
                }
            };
            let (name, name_span) = self.ident()?;
            if matches!(self.peek(), TokenKind::LParen) {
                functions.push(self.function(ret, name, start)?);
            } else {
                if ret == Type::Void {
                    return Err(ParseError::new(
                        "global variables must have type `int`",
                        name_span,
                        self.source,
                    ));
                }
                globals.push(self.global(name, start)?);
            }
        }
        Ok(Program { globals, functions })
    }

    fn global(&mut self, name: String, start: Span) -> Result<GlobalVar, ParseError> {
        let (size, init) = self.declarator_tail()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(GlobalVar { name, size, init, span: start.merge(end) })
    }

    /// Parses the `[size]? (= init)?` tail shared by globals and locals.
    fn declarator_tail(&mut self) -> Result<(Option<Expr>, Init), ParseError> {
        let size = if self.eat(&TokenKind::LBracket) {
            let e = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Some(e)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                let mut items = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    if matches!(self.peek(), TokenKind::RBrace) {
                        break; // trailing comma
                    }
                    items.push(self.expr()?);
                }
                self.expect(&TokenKind::RBrace)?;
                Init::List(items)
            } else {
                Init::Scalar(self.expr()?)
            }
        } else {
            Init::None
        };
        Ok((size, init))
    }

    fn function(&mut self, ret: Type, name: String, start: Span) -> Result<Function, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                self.expect(&TokenKind::KwInt)?;
                let (pname, pspan) = self.ident()?;
                params.push(Param { name: pname, span: pspan });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.merge(self.tokens[self.pos.saturating_sub(1)].span);
        Ok(Function { name, ret, params, body, span })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    /// A block, or a single statement wrapped in a block (`if (c) x = 1;`).
    fn block_or_stmt(&mut self) -> Result<Block, ParseError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                let (name, _) = self.ident()?;
                let (size, init) = self.declarator_tail()?;
                let end = self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Local { name, size, init, span: start.merge(end) })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_blk = self.block_or_stmt()?;
                let else_blk =
                    if self.eat(&TokenKind::KwElse) { Some(self.block_or_stmt()?) } else { None };
                Ok(Stmt::If { cond, then_blk, else_blk, span: start })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body, span: start })
            }
            TokenKind::KwSwitch => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::LBrace)?;
                let mut cases: Vec<SwitchCase> = Vec::new();
                while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
                    let case_span = self.peek_span();
                    let mut labels = Vec::new();
                    let mut is_default = false;
                    // One arm may stack several labels.
                    loop {
                        match self.peek() {
                            TokenKind::KwCase => {
                                self.bump();
                                labels.push(self.expr()?);
                                self.expect(&TokenKind::Colon)?;
                            }
                            TokenKind::KwDefault => {
                                self.bump();
                                self.expect(&TokenKind::Colon)?;
                                is_default = true;
                            }
                            _ => break,
                        }
                    }
                    if labels.is_empty() && !is_default {
                        return Err(self.error(format!(
                            "expected `case` or `default`, found {}",
                            self.peek()
                        )));
                    }
                    let mut body = Vec::new();
                    while !matches!(
                        self.peek(),
                        TokenKind::KwCase
                            | TokenKind::KwDefault
                            | TokenKind::RBrace
                            | TokenKind::Eof
                    ) {
                        body.push(self.stmt()?);
                    }
                    cases.push(SwitchCase { labels, is_default, body, span: case_span });
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Stmt::Switch { scrutinee, cases, span: start })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.block_or_stmt()?;
                self.expect(&TokenKind::KwWhile)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::DoWhile { body, cond, span: start })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else if matches!(self.peek(), TokenKind::KwInt) {
                    self.bump();
                    let (name, _) = self.ident()?;
                    let (size, linit) = self.declarator_tail()?;
                    Some(Box::new(Stmt::Local { name, size, init: linit, span: start }))
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::Semi)?;
                let cond =
                    if matches!(self.peek(), TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                let step = if matches!(self.peek(), TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For { init, cond, step, body, span: start })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value =
                    if matches!(self.peek(), TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span: start })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break(start))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue(start))
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(stmt)
            }
        }
    }

    /// Assignment, increment/decrement or expression statement — the forms
    /// allowed without a trailing semicolon inside `for (...)` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek_span();
        // Prefix increment/decrement.
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let op = if self.bump() == TokenKind::PlusPlus { BinOp::Add } else { BinOp::Sub };
            let target = self.lvalue()?;
            return Ok(Stmt::Assign {
                target,
                op: Some(op),
                value: Expr::Int(1, start),
                span: start,
            });
        }
        let expr = self.expr()?;
        let compound = |kind: &TokenKind| -> Option<BinOp> {
            Some(match kind {
                TokenKind::PlusAssign => BinOp::Add,
                TokenKind::MinusAssign => BinOp::Sub,
                TokenKind::StarAssign => BinOp::Mul,
                TokenKind::SlashAssign => BinOp::Div,
                TokenKind::PercentAssign => BinOp::Rem,
                TokenKind::ShlAssign => BinOp::Shl,
                TokenKind::ShrAssign => BinOp::Shr,
                TokenKind::AndAssign => BinOp::BitAnd,
                TokenKind::OrAssign => BinOp::BitOr,
                TokenKind::XorAssign => BinOp::BitXor,
                _ => return None,
            })
        };
        match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let target = self.expr_to_lvalue(expr)?;
                let value = self.expr()?;
                let span = start.merge(value.span());
                Ok(Stmt::Assign { target, op: None, value, span })
            }
            ref k if compound(k).is_some() => {
                let op = compound(k);
                self.bump();
                let target = self.expr_to_lvalue(expr)?;
                let value = self.expr()?;
                let span = start.merge(value.span());
                Ok(Stmt::Assign { target, op, value, span })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let op = if self.bump() == TokenKind::PlusPlus { BinOp::Add } else { BinOp::Sub };
                let target = self.expr_to_lvalue(expr)?;
                Ok(Stmt::Assign { target, op: Some(op), value: Expr::Int(1, start), span: start })
            }
            _ => Ok(Stmt::Expr(expr)),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let (name, span) = self.ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            let end = self.expect(&TokenKind::RBracket)?;
            Ok(LValue::Index(name, Box::new(index), span.merge(end)))
        } else {
            Ok(LValue::Var(name, span))
        }
    }

    fn expr_to_lvalue(&self, expr: Expr) -> Result<LValue, ParseError> {
        match expr {
            Expr::Var(name, span) => Ok(LValue::Var(name, span)),
            Expr::Index(name, index, span) => Ok(LValue::Index(name, index, span)),
            other => Err(ParseError::new(
                "assignment target must be a variable or array element",
                other.span(),
                self.source,
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        // C conditional expression; right-associative.
        let then = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let otherwise = self.expr()?;
        let span = cond.span().merge(otherwise.span());
        Ok(Expr::Cond(Box::new(cond), Box::new(then), Box::new(otherwise), span))
    }

    /// Precedence-climbing binary expression parser. Level 0 is `||`.
    fn binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, level)) = binop_of(self.peek()) {
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let start = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary()?;
            let span = start.merge(inner.span());
            return Ok(Expr::Unary(op, Box::new(inner), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        let end = self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Call(name, args, span.merge(end)))
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        let end = self.expect(&TokenKind::RBracket)?;
                        Ok(Expr::Index(name, Box::new(index), span.merge(end)))
                    }
                    _ => Ok(Expr::Var(name, span)),
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Operator and precedence level; higher binds tighter.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinOp::LogOr, 0),
        TokenKind::AndAnd => (BinOp::LogAnd, 1),
        TokenKind::Pipe => (BinOp::BitOr, 2),
        TokenKind::Caret => (BinOp::BitXor, 3),
        TokenKind::Amp => (BinOp::BitAnd, 4),
        TokenKind::Eq => (BinOp::Eq, 5),
        TokenKind::Ne => (BinOp::Ne, 5),
        TokenKind::Lt => (BinOp::Lt, 6),
        TokenKind::Le => (BinOp::Le, 6),
        TokenKind::Gt => (BinOp::Gt, 6),
        TokenKind::Ge => (BinOp::Ge, 6),
        TokenKind::Shl => (BinOp::Shl, 7),
        TokenKind::Shr => (BinOp::Shr, 7),
        TokenKind::Plus => (BinOp::Add, 8),
        TokenKind::Minus => (BinOp::Sub, 8),
        TokenKind::Star => (BinOp::Mul, 9),
        TokenKind::Slash => (BinOp::Div, 9),
        TokenKind::Percent => (BinOp::Rem, 9),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        parse_tokens(src, &lex(src).expect("lexes")).expect("parses")
    }

    fn parse_err(src: &str) -> ParseError {
        parse_tokens(src, &lex(src).expect("lexes")).expect_err("should fail")
    }

    #[test]
    fn globals_and_functions() {
        let p = parse("int x = 3; int tab[4] = {1, 2, 3, 4}; void main() { x = 1; }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.globals[0].name, "x");
        assert!(matches!(p.globals[1].init, Init::List(ref v) if v.len() == 4));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int x = 1 + 2 * 3;");
        let Init::Scalar(e) = &p.globals[0].init else { panic!("scalar init") };
        assert_eq!(crate::ast::const_eval(e), Some(7));
    }

    #[test]
    fn precedence_comparison_vs_logical() {
        let p = parse("int x = 1 < 2 && 3 == 3 || 0;");
        let Init::Scalar(e) = &p.globals[0].init else { panic!("scalar init") };
        assert_eq!(crate::ast::const_eval(e), Some(1));
    }

    #[test]
    fn left_associativity_of_subtraction() {
        let p = parse("int x = 10 - 3 - 2;");
        let Init::Scalar(e) = &p.globals[0].init else { panic!("scalar init") };
        assert_eq!(crate::ast::const_eval(e), Some(5));
    }

    #[test]
    fn full_statement_zoo() {
        let p = parse(
            r#"
            void main() {
                int acc = 0;
                int buf[8];
                for (int i = 0; i < 8; i++) {
                    buf[i] = i * i;
                }
                int j = 0;
                while (j < 8) {
                    if (buf[j] % 2 == 0) {
                        acc += buf[j];
                    } else {
                        acc -= 1;
                    }
                    j++;
                }
                { acc <<= 1; }
                if (acc > 100) return;
                out(acc);
            }
        "#,
        );
        let f = p.function("main").expect("main exists");
        assert!(f.body.stmts.len() >= 7);
    }

    #[test]
    fn for_without_init_or_step() {
        let p = parse("void f() { for (;;) { break; } }");
        let Stmt::For { init, cond, step, .. } = &p.functions[0].body.stmts[0] else {
            panic!("for stmt")
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn prefix_and_postfix_increment() {
        let p = parse("void f() { int i = 0; ++i; i--; }");
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(&stmts[1], Stmt::Assign { op: Some(BinOp::Add), .. }));
        assert!(matches!(&stmts[2], Stmt::Assign { op: Some(BinOp::Sub), .. }));
    }

    #[test]
    fn single_statement_bodies_are_wrapped() {
        let p = parse("void f() { if (1) out(1); else out(2); while (0) out(3); }");
        let Stmt::If { then_blk, else_blk, .. } = &p.functions[0].body.stmts[0] else {
            panic!("if stmt")
        };
        assert_eq!(then_blk.stmts.len(), 1);
        assert_eq!(else_blk.as_ref().map(|b| b.stmts.len()), Some(1));
    }

    #[test]
    fn calls_with_arguments() {
        let p = parse("int add(int a, int b) { return a + b; } void f() { out(add(1, 2)); }");
        assert_eq!(p.functions[0].params.len(), 2);
    }

    #[test]
    fn error_on_bad_assignment_target() {
        let err = parse_err("void f() { 1 + 2 = 3; }");
        assert!(err.message.contains("assignment target"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_err("void f() { int x = 1 }");
        assert!(err.message.contains("`;`"), "{}", err.message);
    }

    #[test]
    fn error_on_void_global() {
        let err = parse_err("void x;");
        assert!(err.message.contains("int"));
    }

    #[test]
    fn do_while_parses() {
        let p = parse("void f() { int i = 0; do { i++; } while (i < 4); }");
        assert!(matches!(&p.functions[0].body.stmts[1], Stmt::DoWhile { .. }));
    }

    #[test]
    fn ternary_parses_and_folds() {
        let p = parse("int x = 1 < 2 ? 10 : 20;");
        let Init::Scalar(e) = &p.globals[0].init else { panic!("scalar init") };
        assert_eq!(crate::ast::const_eval(e), Some(10));
    }

    #[test]
    fn ternary_is_right_associative() {
        let p = parse("int x = 0 ? 1 : 0 ? 2 : 3;");
        let Init::Scalar(e) = &p.globals[0].init else { panic!("scalar init") };
        assert_eq!(crate::ast::const_eval(e), Some(3));
    }

    #[test]
    fn switch_parses_with_stacked_labels_and_default() {
        let p = parse(
            "void f(int x) {
                switch (x) {
                    case 1:
                    case 2: out(12); break;
                    case 3: out(3);
                    default: out(0);
                }
            }",
        );
        let Stmt::Switch { cases, .. } = &p.functions[0].body.stmts[0] else {
            panic!("switch stmt")
        };
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].labels.len(), 2);
        assert!(cases[2].is_default);
    }

    #[test]
    fn switch_requires_labels() {
        let err = parse_err("void f(int x) { switch (x) { out(1); } }");
        assert!(err.message.contains("case"), "{}", err.message);
    }

    #[test]
    fn trailing_comma_in_initializer() {
        let p = parse("int t[2] = {1, 2,};");
        assert!(matches!(p.globals[0].init, Init::List(ref v) if v.len() == 2));
    }
}
