//! Hand-written lexer for MiniC.

use crate::diag::{ParseError, Span};
use crate::token::{Token, TokenKind};

/// Tokenizes MiniC source text.
///
/// Handles `//` line comments, `/* */` block comments, decimal and `0x`
/// hexadecimal integer literals and all operators in [`TokenKind`].
///
/// # Errors
///
/// Returns an error for unterminated block comments, malformed literals and
/// characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer { source, bytes: source.as_bytes(), pos: 0 }.run()
}

struct Lexer<'src> {
    source: &'src str,
    bytes: &'src [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                tokens.push(Token { kind: TokenKind::Eof, span: Span::new(start, start) });
                return Ok(tokens);
            };
            let kind = match b {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.operator()?,
            };
            tokens.push(Token { kind, span: Span::new(start, self.pos) });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn error(&self, message: impl Into<String>, start: usize) -> ParseError {
        ParseError::new(message, Span::new(start, self.pos.max(start + 1)), self.source)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.error("unterminated block comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        let (radix, digits_start) =
            if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
                self.pos += 2;
                (16, self.pos)
            } else {
                (10, self.pos)
            };
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String =
            self.source[digits_start..self.pos].chars().filter(|&c| c != '_').collect();
        if text.is_empty() {
            return Err(self.error("missing digits after `0x`", start));
        }
        let value = i64::from_str_radix(&text, radix)
            .map_err(|_| self.error(format!("invalid integer literal `{text}`"), start))?;
        Ok(TokenKind::Int(value))
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.source[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn operator(&mut self) -> Result<TokenKind, ParseError> {
        use TokenKind::*;
        let start = self.pos;
        let b = self.bump().expect("operator called at end of input");
        let two = |lexer: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.pos += 1;
                yes
            } else {
                no
            }
        };
        Ok(match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'~' => Tilde,
            b'?' => Question,
            b':' => Colon,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    PlusPlus
                }
                Some(b'=') => {
                    self.pos += 1;
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.pos += 1;
                    MinusMinus
                }
                Some(b'=') => {
                    self.pos += 1;
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => two(self, b'=', StarAssign, Star),
            b'/' => two(self, b'=', SlashAssign, Slash),
            b'%' => two(self, b'=', PercentAssign, Percent),
            b'=' => two(self, b'=', Eq, Assign),
            b'!' => two(self, b'=', Ne, Not),
            b'^' => two(self, b'=', XorAssign, Caret),
            b'&' => match self.peek() {
                Some(b'&') => {
                    self.pos += 1;
                    AndAnd
                }
                Some(b'=') => {
                    self.pos += 1;
                    AndAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => {
                    self.pos += 1;
                    OrOr
                }
                Some(b'=') => {
                    self.pos += 1;
                    OrAssign
                }
                _ => Pipe,
            },
            b'<' => match self.peek() {
                Some(b'<') => {
                    self.pos += 1;
                    two(self, b'=', ShlAssign, Shl)
                }
                Some(b'=') => {
                    self.pos += 1;
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    two(self, b'=', ShrAssign, Shr)
                }
                Some(b'=') => {
                    self.pos += 1;
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(
                    self.error(format!("unexpected character `{}`", char::from(other)), start)
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("int foo void _bar2"),
            vec![KwInt, Ident("foo".into()), KwVoid, Ident("_bar2".into()), Eof]
        );
    }

    #[test]
    fn integer_literals() {
        assert_eq!(kinds("0 42 0x1F 1_000"), vec![Int(0), Int(42), Int(31), Int(1000), Eof]);
    }

    #[test]
    fn all_multibyte_operators() {
        assert_eq!(
            kinds("<<= >>= << >> <= >= == != && || ++ -- += -= *= /= %= &= |= ^="),
            vec![
                ShlAssign,
                ShrAssign,
                Shl,
                Shr,
                Le,
                Ge,
                Eq,
                Ne,
                AndAnd,
                OrOr,
                PlusPlus,
                MinusMinus,
                PlusAssign,
                MinusAssign,
                StarAssign,
                SlashAssign,
                PercentAssign,
                AndAssign,
                OrAssign,
                XorAssign,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n over lines */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let err = lex("x /* nope").expect_err("should fail");
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn bad_character_is_error() {
        let err = lex("a @ b").expect_err("should fail");
        assert!(err.message.contains('@'));
        assert_eq!((err.line, err.column), (1, 3));
    }

    #[test]
    fn missing_hex_digits_is_error() {
        let err = lex("0x").expect_err("should fail");
        assert!(err.message.contains("0x"));
    }

    #[test]
    fn spans_cover_tokens() {
        let tokens = lex("ab + cd").expect("lexes");
        assert_eq!(tokens[0].span, crate::Span::new(0, 2));
        assert_eq!(tokens[1].span, crate::Span::new(3, 4));
        assert_eq!(tokens[2].span, crate::Span::new(5, 7));
    }
}
