//! Semantic analysis: name resolution, kind checking, constant validation.

use std::collections::HashMap;

use crate::ast::{const_eval, Block, Expr, Function, Init, LValue, Program, Stmt, Type};
use crate::diag::{ParseError, Span};
use std::collections::HashSet;

/// Names with built-in meaning; they cannot be redefined.
pub(crate) const INTRINSICS: [(&str, usize, bool); 3] = [
    // (name, arg count, returns a value)
    ("ch_recv", 1, true),
    ("ch_send", 2, false),
    ("out", 1, false),
];

/// Largest array size MiniC accepts (guards against absurd constants).
const MAX_ARRAY_LEN: i64 = 1 << 22;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Scalar,
    Array,
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns the first semantic error: unknown names, scalar/array misuse,
/// bad argument counts, non-constant array sizes or initializers, `break`
/// outside a loop, and similar.
pub fn check(program: &Program) -> Result<(), ParseError> {
    Checker::new(program).run()
}

struct Checker<'a> {
    program: &'a Program,
    functions: HashMap<&'a str, &'a Function>,
    globals: HashMap<&'a str, VarKind>,
    scopes: Vec<HashMap<String, VarKind>>,
    /// Nesting depth of constructs `continue` may target (loops).
    loop_depth: usize,
    /// Nesting depth of constructs `break` may target (loops + switches).
    break_depth: usize,
    current_ret: Type,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program) -> Self {
        Checker {
            program,
            functions: HashMap::new(),
            globals: HashMap::new(),
            scopes: Vec::new(),
            loop_depth: 0,
            break_depth: 0,
            current_ret: Type::Void,
        }
    }

    fn err(message: impl Into<String>, span: Span) -> ParseError {
        // Sema works on the AST; spans were resolved by the parser, so
        // line/column are recomputed lazily against an empty source. The
        // public `parse` entry point re-resolves them.
        ParseError { message: message.into(), span, line: 0, column: 0 }
    }

    fn run(mut self) -> Result<(), ParseError> {
        // Collect and validate globals.
        for g in &self.program.globals {
            if self.globals.contains_key(g.name.as_str()) {
                return Err(Self::err(format!("duplicate global `{}`", g.name), g.span));
            }
            let kind = match &g.size {
                Some(size_expr) => {
                    let len = const_eval(size_expr).ok_or_else(|| {
                        Self::err("array size must be a constant expression", size_expr.span())
                    })?;
                    if !(1..=MAX_ARRAY_LEN).contains(&len) {
                        return Err(Self::err(
                            format!("array size {len} out of range 1..={MAX_ARRAY_LEN}"),
                            size_expr.span(),
                        ));
                    }
                    self.check_init(&g.init, Some(len), g.span)?;
                    VarKind::Array
                }
                None => {
                    self.check_init(&g.init, None, g.span)?;
                    VarKind::Scalar
                }
            };
            // Global initializers must be compile-time constants.
            match &g.init {
                Init::None => {}
                Init::Scalar(e) => {
                    const_eval(e).ok_or_else(|| {
                        Self::err("global initializer must be constant", e.span())
                    })?;
                }
                Init::List(items) => {
                    for e in items {
                        const_eval(e).ok_or_else(|| {
                            Self::err("global initializer must be constant", e.span())
                        })?;
                    }
                }
            }
            self.globals.insert(&g.name, kind);
        }

        // Collect functions.
        for f in &self.program.functions {
            if INTRINSICS.iter().any(|(n, _, _)| *n == f.name) {
                return Err(Self::err(
                    format!("`{}` is a built-in intrinsic and cannot be defined", f.name),
                    f.span,
                ));
            }
            if self.functions.insert(&f.name, f).is_some() {
                return Err(Self::err(format!("duplicate function `{}`", f.name), f.span));
            }
        }

        // Check bodies.
        for f in &self.program.functions {
            self.current_ret = f.ret;
            self.scopes.clear();
            self.scopes.push(HashMap::new());
            for p in &f.params {
                if self
                    .scopes
                    .last_mut()
                    .expect("scope pushed above")
                    .insert(p.name.clone(), VarKind::Scalar)
                    .is_some()
                {
                    return Err(Self::err(format!("duplicate parameter `{}`", p.name), p.span));
                }
            }
            self.block(&f.body)?;
            self.scopes.pop();
        }
        Ok(())
    }

    fn check_init(
        &self,
        init: &Init,
        array_len: Option<i64>,
        span: Span,
    ) -> Result<(), ParseError> {
        match (init, array_len) {
            (Init::List(items), Some(len)) if items.len() as i64 > len => Err(Self::err(
                format!("initializer has {} elements but array size is {len}", items.len()),
                span,
            )),
            (Init::List(_), None) => {
                Err(Self::err("brace initializer requires an array declaration", span))
            }
            (Init::Scalar(_), Some(_)) => {
                Err(Self::err("array initializer must be a brace list", span))
            }
            _ => Ok(()),
        }
    }

    fn lookup(&self, name: &str) -> Option<VarKind> {
        for scope in self.scopes.iter().rev() {
            if let Some(&k) = scope.get(name) {
                return Some(k);
            }
        }
        self.globals.get(name).copied()
    }

    fn block(&mut self, block: &Block) -> Result<(), ParseError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn declare_local(
        &mut self,
        name: &str,
        size: &Option<Expr>,
        init: &Init,
        span: Span,
    ) -> Result<(), ParseError> {
        let kind = match size {
            Some(size_expr) => {
                let len = const_eval(size_expr).ok_or_else(|| {
                    Self::err("array size must be a constant expression", size_expr.span())
                })?;
                if !(1..=MAX_ARRAY_LEN).contains(&len) {
                    return Err(Self::err(
                        format!("array size {len} out of range 1..={MAX_ARRAY_LEN}"),
                        size_expr.span(),
                    ));
                }
                self.check_init(init, Some(len), span)?;
                VarKind::Array
            }
            None => {
                self.check_init(init, None, span)?;
                VarKind::Scalar
            }
        };
        match init {
            Init::None => {}
            Init::Scalar(e) => self.expr(e)?,
            Init::List(items) => {
                for e in items {
                    // Local array initializers must also be constant so that
                    // they lower to a data section rather than element stores.
                    const_eval(e).ok_or_else(|| {
                        Self::err("array initializer elements must be constant", e.span())
                    })?;
                }
            }
        }
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.insert(name.to_string(), kind).is_some() {
            return Err(Self::err(format!("duplicate local `{name}` in this scope"), span));
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), ParseError> {
        match stmt {
            Stmt::Local { name, size, init, span } => self.declare_local(name, size, init, *span),
            Stmt::Expr(e) => {
                if !matches!(e, Expr::Call(..)) {
                    return Err(Self::err("expression statement has no effect", e.span()));
                }
                self.call_expr(e, true)
            }
            Stmt::Assign { target, value, .. } => {
                self.lvalue(target)?;
                self.expr(value)
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                self.expr(cond)?;
                self.block(then_blk)?;
                if let Some(b) = else_blk {
                    self.block(b)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                self.break_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.break_depth -= 1;
                r
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.loop_depth += 1;
                self.break_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.break_depth -= 1;
                r?;
                self.expr(cond)
            }
            Stmt::Switch { scrutinee, cases, span } => {
                self.expr(scrutinee)?;
                let mut seen: HashSet<i64> = HashSet::new();
                let mut defaults = 0usize;
                for case in cases {
                    for label in &case.labels {
                        let value = const_eval(label).ok_or_else(|| {
                            Self::err("case label must be a constant expression", label.span())
                        })?;
                        if !seen.insert(value) {
                            return Err(Self::err(
                                format!("duplicate case label {value}"),
                                label.span(),
                            ));
                        }
                    }
                    defaults += usize::from(case.is_default);
                }
                if defaults > 1 {
                    return Err(Self::err("multiple `default` labels", *span));
                }
                self.break_depth += 1;
                for case in cases {
                    self.scopes.push(HashMap::new());
                    for stmt in &case.body {
                        if let Err(e) = self.stmt(stmt) {
                            self.scopes.pop();
                            self.break_depth -= 1;
                            return Err(e);
                        }
                    }
                    self.scopes.pop();
                }
                self.break_depth -= 1;
                Ok(())
            }
            Stmt::For { init, cond, step, body, .. } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.expr(cond)?;
                }
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.loop_depth += 1;
                self.break_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.break_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return { value, span } => match (self.current_ret, value) {
                (Type::Void, Some(e)) => {
                    Err(Self::err("void function cannot return a value", e.span()))
                }
                (Type::Int, None) => Err(Self::err("int function must return a value", *span)),
                (_, Some(e)) => self.expr(e),
                (_, None) => Ok(()),
            },
            Stmt::Break(span) => {
                if self.break_depth == 0 {
                    Err(Self::err("`break` outside of a loop or switch", *span))
                } else {
                    Ok(())
                }
            }
            Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    Err(Self::err("`continue` outside of a loop", *span))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    fn lvalue(&mut self, target: &LValue) -> Result<(), ParseError> {
        match target {
            LValue::Var(name, span) => match self.lookup(name) {
                Some(VarKind::Scalar) => Ok(()),
                Some(VarKind::Array) => {
                    Err(Self::err(format!("cannot assign to array `{name}` as a whole"), *span))
                }
                None => Err(Self::err(format!("unknown variable `{name}`"), *span)),
            },
            LValue::Index(name, index, span) => {
                match self.lookup(name) {
                    Some(VarKind::Array) => {}
                    Some(VarKind::Scalar) => {
                        return Err(Self::err(format!("`{name}` is not an array"), *span))
                    }
                    None => return Err(Self::err(format!("unknown variable `{name}`"), *span)),
                }
                self.expr(index)
            }
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), ParseError> {
        match expr {
            Expr::Int(..) => Ok(()),
            Expr::Var(name, span) => match self.lookup(name) {
                Some(VarKind::Scalar) => Ok(()),
                Some(VarKind::Array) => Err(Self::err(
                    format!("array `{name}` must be indexed (no pointer decay in MiniC)"),
                    *span,
                )),
                None => Err(Self::err(format!("unknown variable `{name}`"), *span)),
            },
            Expr::Index(name, index, span) => {
                match self.lookup(name) {
                    Some(VarKind::Array) => {}
                    Some(VarKind::Scalar) => {
                        return Err(Self::err(format!("`{name}` is not an array"), *span))
                    }
                    None => return Err(Self::err(format!("unknown variable `{name}`"), *span)),
                }
                self.expr(index)
            }
            Expr::Unary(_, inner, _) => self.expr(inner),
            Expr::Binary(_, lhs, rhs, _) => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Call(..) => self.call_expr(expr, false),
            Expr::Cond(cond, then, otherwise, _) => {
                self.expr(cond)?;
                self.expr(then)?;
                self.expr(otherwise)
            }
        }
    }

    fn call_expr(&mut self, expr: &Expr, as_statement: bool) -> Result<(), ParseError> {
        let Expr::Call(name, args, span) = expr else {
            unreachable!("call_expr invoked on non-call");
        };
        for a in args {
            self.expr(a)?;
        }
        if let Some(&(_, arity, returns)) = INTRINSICS.iter().find(|(n, _, _)| n == name) {
            if args.len() != arity {
                return Err(Self::err(
                    format!("intrinsic `{name}` takes {arity} argument(s), got {}", args.len()),
                    *span,
                ));
            }
            // Channel ids must be compile-time constants so the platform can
            // wire processes to channels statically.
            if name.starts_with("ch_") {
                const_eval(&args[0]).ok_or_else(|| {
                    Self::err("channel id must be a constant expression", args[0].span())
                })?;
            }
            if !returns && !as_statement {
                return Err(Self::err(format!("intrinsic `{name}` returns no value"), *span));
            }
            return Ok(());
        }
        let Some(f) = self.functions.get(name.as_str()) else {
            return Err(Self::err(format!("unknown function `{name}`"), *span));
        };
        if f.params.len() != args.len() {
            return Err(Self::err(
                format!(
                    "function `{name}` takes {} argument(s), got {}",
                    f.params.len(),
                    args.len()
                ),
                *span,
            ));
        }
        if f.ret == Type::Void && !as_statement {
            return Err(Self::err(
                format!("void function `{name}` used where a value is required"),
                *span,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn err(src: &str) -> String {
        parse(src).expect_err("should fail").message
    }

    #[test]
    fn accepts_valid_program() {
        parse(
            r#"
            int gain = 4;
            int window[4] = {1, 2, 3, 4};
            int scale(int x) { return x * gain; }
            void main() {
                int acc = 0;
                for (int i = 0; i < 4; i++) { acc += scale(window[i]); }
                out(acc);
            }
        "#,
        )
        .expect("valid program");
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(err("void f() { out(nope); }").contains("unknown variable"));
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(err("void f() { missing(); }").contains("unknown function"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(err("int g(int a) { return a; } void f() { out(g(1, 2)); }")
            .contains("takes 1 argument"));
    }

    #[test]
    fn rejects_void_in_expression() {
        assert!(err("void g() { } void f() { out(g()); }").contains("void function"));
    }

    #[test]
    fn rejects_array_without_index() {
        assert!(err("int t[2]; void f() { out(t); }").contains("must be indexed"));
    }

    #[test]
    fn rejects_indexing_scalar() {
        assert!(err("int x; void f() { out(x[0]); }").contains("not an array"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(err("void f() { break; }").contains("outside of a loop"));
    }

    #[test]
    fn rejects_nonconstant_array_size() {
        assert!(err("void f(int n) { int t[n]; }").contains("constant"));
    }

    #[test]
    fn rejects_oversized_initializer() {
        assert!(err("int t[2] = {1, 2, 3};").contains("3 elements"));
    }

    #[test]
    fn rejects_return_value_from_void() {
        assert!(err("void f() { return 1; }").contains("cannot return"));
    }

    #[test]
    fn rejects_bare_return_from_int() {
        assert!(err("int f() { return; }").contains("must return"));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        assert!(err("int x; int x;").contains("duplicate global"));
        assert!(err("void f() {} void f() {}").contains("duplicate function"));
        assert!(err("void f(int a, int a) {}").contains("duplicate parameter"));
        assert!(err("void f() { int a; int a; }").contains("duplicate local"));
    }

    #[test]
    fn allows_shadowing_in_nested_scope() {
        parse("int x; void f() { int x = 1; { int x = 2; out(x); } out(x); }")
            .expect("shadowing in nested scopes is allowed");
    }

    #[test]
    fn rejects_redefining_intrinsic() {
        assert!(err("void out(int v) {}").contains("intrinsic"));
    }

    #[test]
    fn rejects_nonconstant_channel_id() {
        assert!(err("void f(int c) { ch_send(c, 1); }").contains("constant"));
    }

    #[test]
    fn rejects_useless_expression_statement() {
        assert!(err("void f() { 1 + 2; }").contains("no effect"));
    }

    #[test]
    fn switch_label_rules() {
        assert!(err("void f(int x) { switch (x) { case x: out(1); } }").contains("constant"));
        assert!(err("void f(int x) { switch (x) { case 1: out(1); case 1: out(2); } }")
            .contains("duplicate case"));
        assert!(err("void f(int x) { switch (x) { default: out(1); default: out(2); } }")
            .contains("multiple `default`"));
        parse("void f(int x) { switch (x) { case 1: break; default: out(0); } }")
            .expect("valid switch");
    }

    #[test]
    fn break_binds_to_switch_but_continue_does_not() {
        parse(
            "void f(int x) {
                for (int i = 0; i < 3; i++) {
                    switch (x) { case 1: continue; default: break; }
                }
            }",
        )
        .expect("continue reaches the loop through the switch");
        assert!(err("void f(int x) { switch (x) { case 1: continue; } }").contains("continue"));
    }

    #[test]
    fn intrinsic_usage_checks() {
        assert!(err("void f() { out(ch_send(0, 1)); }").contains("returns no value"));
        assert!(err("void f() { out(1, 2); }").contains("takes 1 argument"));
        parse("void f() { int v = ch_recv(3); ch_send(1, v + 1); out(v); }")
            .expect("intrinsics used correctly");
    }
}
