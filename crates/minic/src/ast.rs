//! Abstract syntax tree for MiniC.

use crate::diag::Span;

/// A parsed translation unit: globals plus functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Global variable declarations, in source order.
    pub globals: Vec<GlobalVar>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// A global `int` scalar or array with optional constant initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalVar {
    /// Variable name.
    pub name: String,
    /// Array length expression; `None` for scalars. Must be constant.
    pub size: Option<Expr>,
    /// Initializer.
    pub init: Init,
    /// Source span of the declaration.
    pub span: Span,
}

/// Initializer of a global or local declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Init {
    /// No initializer; zero-filled.
    None,
    /// Scalar initializer, e.g. `int x = 3 * 4;`.
    Scalar(Expr),
    /// Brace list, e.g. `int t[3] = {1, 2, 3};`.
    List(Vec<Expr>),
}

/// Return type of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer with C wrapping semantics.
    Int,
    /// No value.
    Void,
}

/// One function parameter (always `int`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// The body block.
    pub body: Block,
    /// Source span of the whole definition.
    pub span: Span,
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration: `int x;`, `int x = e;`, `int t[N] = {..};`.
    Local {
        /// Variable name.
        name: String,
        /// Array length expression; `None` for scalars.
        size: Option<Expr>,
        /// Initializer.
        init: Init,
        /// Source span.
        span: Span,
    },
    /// An expression evaluated for its effect (a call).
    Expr(Expr),
    /// Assignment, optionally compound: `x = e`, `a[i] += e`, `x++`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// `Some(op)` for compound assignment (`+=` carries [`BinOp::Add`]).
        op: Option<BinOp>,
        /// Right-hand side (for `x++` this is the literal 1).
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch, if present.
        else_blk: Option<Block>,
        /// Source span of the `if` keyword.
        span: Span,
    },
    /// `switch (scrutinee) { case N: ... default: ... }` with C
    /// fallthrough semantics; `break` leaves the switch.
    Switch {
        /// The switched-on expression (evaluated once).
        scrutinee: Expr,
        /// Cases in source order.
        cases: Vec<SwitchCase>,
        /// Source span of the `switch` keyword.
        span: Span,
    },
    /// `do { .. } while (cond);`.
    DoWhile {
        /// Loop body (always runs at least once).
        body: Block,
        /// Loop condition, evaluated after the body.
        cond: Expr,
        /// Source span of the `do` keyword.
        span: Span,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source span of the `while` keyword.
        span: Span,
    },
    /// `for (init; cond; step) { .. }`.
    For {
        /// Optional init statement (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Optional condition; absent means always true.
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
        /// Source span of the `for` keyword.
        span: Span,
    },
    /// `return;` or `return e;`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// A nested block.
    Block(Block),
}

/// One arm of a `switch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCase {
    /// Constant labels selecting this arm (`case 1: case 2:`); empty for a
    /// pure `default:`.
    pub labels: Vec<Expr>,
    /// Whether the arm also carries `default:`.
    pub is_default: bool,
    /// Statements until the next label (falls through to the next arm).
    pub body: Vec<Stmt>,
    /// Source span of the first label.
    pub span: Span,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A scalar variable.
    Var(String, Span),
    /// An array element `name[index]`.
    Index(String, Box<Expr>, Span),
}

impl LValue {
    /// The variable name being assigned.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(name, _) | LValue::Index(name, _, _) => name,
        }
    }

    /// The source span of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, span) | LValue::Index(_, _, span) => *span,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Scalar variable reference.
    Var(String, Span),
    /// Array element read `name[index]`.
    Index(String, Box<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation (including short-circuit `&&`/`||`).
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Function or intrinsic call.
    Call(String, Vec<Expr>, Span),
    /// C conditional `cond ? then : else` (short-circuit: only the chosen
    /// arm is evaluated).
    Cond(Box<Expr>, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Var(_, s)
            | Expr::Index(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call(_, _, s)
            | Expr::Cond(_, _, _, s) => *s,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (produces 0 or 1).
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (C semantics: truncating; division by zero is a checked error)
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>` (arithmetic shift)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Wraps a value to C `int` (32-bit two's-complement) semantics.
pub fn wrap_i32(v: i64) -> i64 {
    i64::from(v as i32)
}

/// Evaluates a constant expression (literals, unary/binary operators over
/// constants). Used for array sizes and global initializers.
///
/// Returns `None` if the expression references variables, makes calls, or
/// divides by zero.
pub fn const_eval(expr: &Expr) -> Option<i64> {
    Some(match expr {
        Expr::Int(v, _) => wrap_i32(*v),
        Expr::Var(..) | Expr::Index(..) | Expr::Call(..) => return None,
        Expr::Unary(op, inner, _) => {
            let v = const_eval(inner)?;
            match op {
                UnOp::Neg => wrap_i32(v.wrapping_neg()),
                UnOp::Not => i64::from(v == 0),
                UnOp::BitNot => wrap_i32(!v),
            }
        }
        Expr::Binary(op, lhs, rhs, _) => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            eval_binop(*op, l, r)?
        }
        Expr::Cond(cond, then, otherwise, _) => {
            if const_eval(cond)? != 0 {
                const_eval(then)?
            } else {
                const_eval(otherwise)?
            }
        }
    })
}

/// Applies a binary operator with C `int` semantics.
///
/// Returns `None` for division/remainder by zero (callers report it as the
/// appropriate error kind).
pub fn eval_binop(op: BinOp, l: i64, r: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => wrap_i32(l.wrapping_add(r)),
        BinOp::Sub => wrap_i32(l.wrapping_sub(r)),
        BinOp::Mul => wrap_i32(l.wrapping_mul(r)),
        BinOp::Div => {
            if r == 0 {
                return None;
            }
            wrap_i32((l as i32).wrapping_div(r as i32).into())
        }
        BinOp::Rem => {
            if r == 0 {
                return None;
            }
            wrap_i32((l as i32).wrapping_rem(r as i32).into())
        }
        BinOp::Shl => wrap_i32((l as i32).wrapping_shl(r as u32).into()),
        BinOp::Shr => wrap_i32((l as i32).wrapping_shr(r as u32).into()),
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
        BinOp::Eq => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
        BinOp::BitAnd => wrap_i32(l & r),
        BinOp::BitOr => wrap_i32(l | r),
        BinOp::BitXor => wrap_i32(l ^ r),
        BinOp::LogAnd => i64::from(l != 0 && r != 0),
        BinOp::LogOr => i64::from(l != 0 || r != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Expr {
        Expr::Int(v, Span::default())
    }

    #[test]
    fn const_eval_folds_arithmetic() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(int(2)),
            Box::new(Expr::Binary(BinOp::Mul, Box::new(int(3)), Box::new(int(4)), Span::default())),
            Span::default(),
        );
        assert_eq!(const_eval(&e), Some(14));
    }

    #[test]
    fn const_eval_rejects_variables() {
        let e = Expr::Var("x".into(), Span::default());
        assert_eq!(const_eval(&e), None);
    }

    #[test]
    fn division_semantics_truncate_toward_zero() {
        assert_eq!(eval_binop(BinOp::Div, -7, 2), Some(-3));
        assert_eq!(eval_binop(BinOp::Rem, -7, 2), Some(-1));
        assert_eq!(eval_binop(BinOp::Div, 1, 0), None);
    }

    #[test]
    fn int_wrapping_is_32_bit() {
        assert_eq!(eval_binop(BinOp::Add, i64::from(i32::MAX), 1), Some(i64::from(i32::MIN)));
        assert_eq!(eval_binop(BinOp::Mul, 0x10000, 0x10000), Some(0));
        assert_eq!(wrap_i32(0x1_0000_0001), 1);
    }

    #[test]
    fn shifts_are_arithmetic_and_masked() {
        assert_eq!(eval_binop(BinOp::Shr, -8, 1), Some(-4));
        assert_eq!(eval_binop(BinOp::Shl, 1, 33), Some(2), "shift count masked mod 32");
    }

    #[test]
    fn logical_ops_produce_bool_ints() {
        assert_eq!(eval_binop(BinOp::LogAnd, 5, 0), Some(0));
        assert_eq!(eval_binop(BinOp::LogOr, 0, 9), Some(1));
        assert_eq!(const_eval(&Expr::Unary(UnOp::Not, Box::new(int(3)), Span::default())), Some(0));
    }
}
