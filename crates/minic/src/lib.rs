//! Front-end for **MiniC**, the C subset used as application input.
//!
//! The paper parses application C processes with LLVM; this crate is the
//! equivalent front-end for the reproduction. It turns source text into a
//! type-checked AST that `tlm-cdfg` lowers into the control/data flow graph
//! the estimation engine works on.
//!
//! MiniC keeps C's surface syntax for the subset it supports:
//!
//! - `int` scalars and one-dimensional `int` arrays (globals and locals),
//!   with constant initializers;
//! - functions with `int`/`void` return types and `int` parameters;
//! - `if`/`else`, `while`, `do`/`while`, `for`, `switch` (with C
//!   fallthrough), `break`, `continue`, `return`, blocks;
//! - the usual C operators, including short-circuit `&&`/`||`, the ternary
//!   conditional `?:`, compound assignment and `++`/`--`;
//! - platform intrinsics: `ch_recv(ch)`, `ch_send(ch, v)` for transaction-
//!   level channel I/O and `out(v)` for observable output.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     int square(int x) { return x * x; }
//!     void main() { out(square(7)); }
//! "#;
//! let program = tlm_minic::parse(source)?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), tlm_minic::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
mod lexer;
mod parser;
mod sema;
mod token;

pub use ast::Program;
pub use diag::{ParseError, Span};
pub use lexer::lex;
pub use token::{Token, TokenKind};

/// Parses and type-checks a MiniC translation unit.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error encountered, with
/// its source location.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse_tokens(source, &tokens)?;
    // Sema works purely on the AST, so its errors carry spans but no resolved
    // line/column; re-resolve against the source here.
    sema::check(&program).map_err(|e| ParseError::new(e.message, e.span, source))?;
    Ok(program)
}
