//! Source locations and front-end errors.

use std::error::Error;
use std::fmt;

/// A byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes the 1-based line and column of the span start in `source`.
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.rfind('\n').map_or(self.start + 1, |nl| self.start - nl);
        (line, col)
    }
}

/// An error produced while lexing, parsing or type-checking MiniC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Where in the source the error was detected.
    pub span: Span,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
}

impl ParseError {
    /// Creates an error at `span`, resolving line/column against `source`.
    pub fn new(message: impl Into<String>, span: Span, source: &str) -> Self {
        let (line, column) = span.line_col(source);
        ParseError { message: message.into(), span, line, column }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn display_includes_location() {
        let src = "x\nyy error";
        let err = ParseError::new("bad thing", Span::new(5, 6), src);
        assert_eq!(err.to_string(), "2:4: bad thing");
    }
}
