//! Resumable simulation processes.

use std::fmt;

use crate::kernel::Ctx;
use crate::time::SimTime;
use crate::EventId;

/// Handle to a process registered with a [`Kernel`](crate::Kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The raw index of this process inside its kernel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// What a process asks the kernel to do when it yields.
///
/// A process is a cooperative coroutine: the kernel calls
/// [`Process::resume`], the process runs until it needs simulated time to
/// pass or data to arrive, and returns one of these requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// Suspend for a span of simulated time, then resume.
    ///
    /// A zero span yields for one delta cycle (the process re-runs at the
    /// same timestamp, after all currently-runnable processes).
    WaitTime(SimTime),
    /// Suspend until the given event is notified.
    WaitEvent(EventId),
    /// The process is done and will never be resumed again.
    Finish,
}

/// A cooperative simulation process.
///
/// Implementations typically keep their own explicit state machine (the CDFG
/// interpreter in `tlm-cdfg` is one) so that `resume` can pick up where the
/// previous call left off.
///
/// # Example
///
/// ```
/// use tlm_desim::{Ctx, Kernel, Process, Resume, SimTime};
///
/// struct Ticker {
///     remaining: u32,
/// }
///
/// impl Process for Ticker {
///     fn resume(&mut self, _ctx: &mut Ctx<'_>) -> Resume {
///         if self.remaining == 0 {
///             return Resume::Finish;
///         }
///         self.remaining -= 1;
///         Resume::WaitTime(SimTime::from_ns(1))
///     }
/// }
///
/// let mut kernel = Kernel::new();
/// kernel.spawn("ticker", Ticker { remaining: 4 });
/// assert_eq!(kernel.run().end_time, SimTime::from_ns(4));
/// ```
pub trait Process {
    /// Runs the process until it next needs to yield.
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Resume;
}

impl<F> Process for F
where
    F: FnMut(&mut Ctx<'_>) -> Resume,
{
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Resume {
        self(ctx)
    }
}

/// Book-keeping for one process inside the kernel.
pub(crate) struct ProcessEntry {
    pub(crate) name: String,
    pub(crate) body: Box<dyn Process>,
    pub(crate) state: ProcState,
    pub(crate) resumes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Queued to run in the current or next delta.
    Runnable,
    /// Blocked on a timeout in the kernel's timer wheel.
    WaitingTime,
    /// Blocked on an event.
    WaitingEvent(EventId),
    /// Finished; never resumed again.
    Done,
}

impl fmt::Debug for ProcessEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessEntry")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("resumes", &self.resumes)
            .finish_non_exhaustive()
    }
}
