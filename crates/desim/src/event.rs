//! Events: the kernel's wake-up primitive.

use std::fmt;

/// Handle to a kernel event.
///
/// Events are allocated by [`Kernel::event`](crate::Kernel::event) and carry
/// no payload; processes block on them with
/// [`Resume::WaitEvent`](crate::Resume::WaitEvent) and other processes fire
/// them through [`Ctx::notify`](crate::Ctx::notify). They are the foundation
/// channels are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// The raw index of this event inside its kernel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// Book-keeping for one event inside the kernel.
#[derive(Debug, Default)]
pub(crate) struct EventState {
    /// Processes currently blocked on this event.
    pub(crate) waiters: Vec<crate::ProcessId>,
    /// Number of times the event has been fired (for diagnostics).
    pub(crate) fired: u64,
}
